//! E4/E5: the cost tables of Section 4.
//!
//! The paper determines each dispatcher constant "either analytically or by
//! running worst-case scenario benchmarks" and characterises the kernel's
//! background activities by `(w, pseudo-period)` pairs. Here the constants
//! are *inputs* to the simulated platform, so the meaningful experiment is
//! a **fidelity check**: targeted micro-scenarios whose virtual-time
//! responses isolate each constant, verifying that the executed charge
//! matches the configured value exactly — the property the whole
//! cost-integration methodology rests on. (Host-time microbenchmarks of
//! the dispatcher primitives live in `benches/dispatcher.rs`.)

use hades_dispatch::{CostModel, DispatchSim, SimConfig};
use hades_sim::KernelModel;
use hades_task::prelude::*;
use std::fmt::Write;

fn us(n: u64) -> Duration {
    Duration::from_micros(n)
}

fn single_run(
    tasks: Vec<Task>,
    costs: CostModel,
    activations: &[(TaskId, Time)],
) -> hades_dispatch::RunReport {
    let set = TaskSet::new(tasks).expect("valid set");
    let mut cfg = SimConfig::ideal(Duration::from_millis(5));
    cfg.costs = costs;
    cfg.auto_activate = false;
    let mut sim = DispatchSim::new(set, cfg);
    for (t, at) in activations {
        sim.activate_at(*t, *at);
    }
    sim.run()
}

/// E4: dispatcher activity constants — configured vs observed charge.
pub fn dispatcher_cost_table() -> String {
    let mut out = String::new();
    let costs = CostModel::measured_default();
    let _ = writeln!(out, "E4 / Section 4.1 — dispatcher activity costs");
    let _ = writeln!(out, "============================================");
    let _ = writeln!(
        out,
        "{:<14} {:>11} {:>11} {:>7}",
        "constant", "configured", "observed", "match"
    );

    let mut row = |name: &str, configured: Duration, observed: Duration| {
        let _ = writeln!(
            out,
            "{:<14} {:>11} {:>11} {:>7}",
            name,
            configured.to_string(),
            observed.to_string(),
            if configured == observed { "yes" } else { "NO" }
        );
    };

    // C_act_start + C_act_end + C_ctx: response of a lone 100 µs action.
    let t = Task::new(
        TaskId(0),
        Heug::single(CodeEu::new("lone", us(100), ProcessorId(0))).expect("valid"),
        ArrivalLaw::Aperiodic,
        us(2_000),
    );
    let r = single_run(vec![t], costs, &[(TaskId(0), Time::ZERO)]);
    let observed = r.worst_response_times()[&TaskId(0)] - us(100);
    row(
        "act_start+end",
        costs.act_start + costs.act_end + costs.ctx_switch,
        observed,
    );

    // C_loc_prec: two-unit chain adds one local precedence + one extra
    // action overhead + one extra context switch.
    let mut b = HeugBuilder::new("chain");
    let a = b.code_eu(CodeEu::new("a", us(100), ProcessorId(0)));
    let c = b.code_eu(CodeEu::new("b", us(100), ProcessorId(0)));
    b.precede(a, c);
    let t = Task::new(
        TaskId(0),
        b.build().expect("valid"),
        ArrivalLaw::Aperiodic,
        us(2_000),
    );
    let r = single_run(vec![t], costs, &[(TaskId(0), Time::ZERO)]);
    let chain_overhead = r.worst_response_times()[&TaskId(0)] - us(200);
    let loc_prec_observed =
        chain_overhead - (costs.act_start + costs.act_end + costs.ctx_switch).saturating_mul(2);
    row("loc_prec", costs.loc_prec, loc_prec_observed);

    // C_rem_prec: remote edge on a zero-delay link.
    let mut b = HeugBuilder::new("remote");
    let a = b.code_eu(CodeEu::new("a", us(100), ProcessorId(0)));
    let c = b.code_eu(CodeEu::new("b", us(100), ProcessorId(1)));
    b.precede(a, c);
    let t = Task::new(
        TaskId(0),
        b.build().expect("valid"),
        ArrivalLaw::Aperiodic,
        us(2_000),
    );
    let set = TaskSet::new(vec![t]).expect("valid");
    let mut cfg = SimConfig::ideal(Duration::from_millis(5));
    cfg.costs = costs;
    cfg.auto_activate = false;
    cfg.link = hades_sim::LinkConfig::reliable(us(50), us(50)); // exact transit
    let mut sim = DispatchSim::new(set, cfg);
    sim.activate_at(TaskId(0), Time::ZERO);
    let r = sim.run();
    let rem_overhead = r.worst_response_times()[&TaskId(0)] - us(200) - us(50);
    let rem_prec_observed =
        rem_overhead - (costs.act_start + costs.act_end + costs.ctx_switch).saturating_mul(2);
    row("rem_prec", costs.rem_prec, rem_prec_observed);

    // C_inv_start + C_inv_end: synchronous invocation wrapper.
    let callee = Task::new(
        TaskId(1),
        Heug::single(CodeEu::new("callee", us(100), ProcessorId(0))).expect("valid"),
        ArrivalLaw::Aperiodic,
        us(2_000),
    );
    let mut b = HeugBuilder::new("caller");
    b.inv_eu(InvEu::sync("call", TaskId(1), ProcessorId(0)));
    let caller = Task::new(
        TaskId(0),
        b.build().expect("valid"),
        ArrivalLaw::Aperiodic,
        us(2_000),
    );
    let r = single_run(vec![caller, callee], costs, &[(TaskId(0), Time::ZERO)]);
    // Caller response = inv_start + (callee: ctx+start+100+end) + inv_end
    // + 2 ctx for the inv thread's two dispatches.
    let caller_rt = r.worst_response_times()[&TaskId(0)];
    let callee_cost = us(100) + costs.act_start + costs.act_end + costs.ctx_switch;
    let inv_observed = caller_rt - callee_cost - costs.ctx_switch.saturating_mul(2);
    row(
        "inv_start+end",
        costs.inv_start + costs.inv_end,
        inv_observed,
    );

    // sched_notif: EDF scheduler charged per notification.
    let t = Task::new(
        TaskId(0),
        Heug::single(CodeEu::new("job", us(100), ProcessorId(0))).expect("valid"),
        ArrivalLaw::Aperiodic,
        us(2_000),
    );
    let set = TaskSet::new(vec![t]).expect("valid");
    let mut cfg = SimConfig::ideal(Duration::from_millis(5));
    cfg.costs = costs;
    cfg.auto_activate = false;
    let mut sim = DispatchSim::new(set, cfg);
    sim.set_policy(0, Box::new(hades_sched::EdfPolicy::new()));
    sim.activate_at(TaskId(0), Time::ZERO);
    let r = sim.run();
    // One Atv + one Trm notification.
    row(
        "sched_notif x2",
        costs.sched_notif.saturating_mul(2),
        r.scheduler_cpu,
    );
    out
}

/// E5: the kernel activity characterisation table of Section 4.2.
pub fn kernel_activity_table() -> String {
    let mut out = String::new();
    let kernel = KernelModel::chorus_like();
    let _ = writeln!(out, "E5 / Section 4.2 — background kernel activities");
    let _ = writeln!(out, "===============================================");
    let _ = writeln!(
        out,
        "{:<12} {:>8} {:>14} {:>12}",
        "activity", "wcet", "pseudo-period", "utilisation"
    );
    for a in kernel.activities() {
        let _ = writeln!(
            out,
            "{:<12} {:>8} {:>14} {:>11.4}%",
            a.name,
            a.wcet.to_string(),
            a.pseudo_period.to_string(),
            a.utilization() * 100.0
        );
    }
    let _ = writeln!(
        out,
        "total background utilisation: {:.4}%",
        kernel.utilization() * 100.0
    );
    // Fidelity: a measured run charges exactly K(horizon) in the
    // worst-case (back-to-back) arrival pattern.
    let horizon = Duration::from_millis(10);
    let t = Task::new(
        TaskId(0),
        Heug::single(CodeEu::new("bg", us(10), ProcessorId(0))).expect("valid"),
        ArrivalLaw::Periodic(Duration::from_millis(1)),
        Duration::from_millis(1),
    );
    let set = TaskSet::new(vec![t]).expect("valid");
    let mut cfg = SimConfig::ideal(horizon);
    cfg.kernel = kernel.clone();
    let mut sim = DispatchSim::new(set, cfg);
    let r = sim.run();
    let _ = writeln!(
        out,
        "demand K({horizon}) analytic: {}   charged in simulation: {}",
        kernel.demand(horizon),
        r.kernel_cpu
    );
    out
}
