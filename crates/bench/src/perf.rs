//! The machine-readable performance snapshot (`BENCH_cluster.json`).
//!
//! Where every other experiment renders a human-readable table, this one
//! emits a JSON document CI archives on every commit, so the engine's
//! performance trajectory — events/sec, ns/event, heartbeat throughput,
//! queue-depth high-water, response-latency percentiles — is a diffable
//! artifact instead of a number somebody once pasted into a PR. The
//! document is produced from the same telemetry registry users attach
//! via [`ClusterSpec::telemetry`]; the snapshot pipeline is therefore
//! also an end-to-end test of the instrumentation.
//!
//! Schema (`hades.bench.cluster.v1`):
//!
//! ```text
//! {
//!   "schema": "hades.bench.cluster.v1",
//!   "scenarios": [ { "name", "nodes", "events", "wall_ns",
//!                    "ns_per_event", "events_per_sec",
//!                    "heartbeats_sent", "heartbeats_per_sec",
//!                    "peak_queue_depth", "ctx_switches", "abandoned",
//!                    "spans_dropped",
//!                    "response_ns": { "count", "p50", "p99", "p999" } } ],
//!   "overhead": { "nodes", "instrumented_wall_ns", "baseline_wall_ns",
//!                 "overhead_pct" },
//!   "peak_rss_bytes": N
//! }
//! ```
//!
//! [`validate_snapshot`] checks that shape; the `perf_snapshot` binary
//! refuses to write a document that fails it, so CI fails loudly on a
//! schema drift instead of archiving garbage.

use hades_cluster::{ClosedLoop, ClusterSpec, GroupLoad, ScenarioPlan, ServiceSpec};
use hades_dispatch::CostModel;
use hades_fabric::{Arrival, FabricSpec, LoadClass};
use hades_sched::Policy;
use hades_services::ReplicaStyle;
use hades_sim::NodeId;
use hades_telemetry::json::{escape, Json};
use hades_telemetry::{ProfileReport, Profiler, Registry};
use hades_time::{Duration, Time};
use std::fmt::Write;

fn us(n: u64) -> Duration {
    Duration::from_micros(n)
}

fn ms(n: u64) -> Duration {
    Duration::from_millis(n)
}

/// The standard snapshot scenario: `nodes` nodes under EDF with measured
/// costs, two periodic services per node, and one replicated group on
/// nodes 0–2 serving a live closed-loop client (with a request timeout,
/// so the client survives blackouts). Both group leaders crash mid-run
/// — *mid-request*, at 10.25 ms and 15.45 ms, so the in-flight request
/// straddles each failover and is answered only at takeover — and the
/// first crashed node rejoins at 20 ms. The `group.response_ns`
/// histogram therefore measures real dispersion: the p50 is the
/// steady-state Δ-multicast latency, the tail is the failover stall.
pub fn perf_scenario(nodes: u32, seed: u64, horizon: Duration) -> ClusterSpec {
    let start = Time::ZERO + ms(2);
    let mut spec = ClusterSpec::new(nodes)
        .policy(Policy::Edf)
        .costs(CostModel::measured_default())
        .horizon(horizon)
        .seed(seed)
        .scenario(
            ScenarioPlan::new()
                .crash(NodeId(0), Time::ZERO + us(10_250))
                .crash(NodeId(1), Time::ZERO + us(15_450))
                .restart(NodeId(0), Time::ZERO + ms(20)),
        )
        .service(
            ServiceSpec::replicated(
                "store",
                ReplicaStyle::SemiActive,
                vec![0, 1, 2],
                GroupLoad::default(),
            )
            .workload(Box::new(
                ClosedLoop::new(us(500), ms(1), start).with_timeout(ms(4)),
            )),
        );
    for node in 0..nodes {
        spec = spec
            .service(ServiceSpec::periodic("control", node, us(200), ms(2)))
            .service(ServiceSpec::periodic("logging", node, us(500), ms(10)));
    }
    spec
}

/// The population-scale fabric scenario (`fabric_1m`): one million
/// simulated clients in three load classes (steady browse, bursty
/// checkout, ramping api) over 64 consistent-hash shards on 24 nodes,
/// with a mid-run follower crash at 10 ms so the measured window
/// includes a `FabricDirector` rebalance of the crashed placement's
/// shards. Client counts are pure rate multipliers — the engine sees
/// only the aggregate per-shard streams.
pub fn fabric_scenario(seed: u64, horizon: Duration) -> FabricSpec {
    FabricSpec::new(24, 64)
        .class(LoadClass::new("browse", 700_000, Duration::from_secs(15)))
        .class(
            LoadClass::new("checkout", 200_000, Duration::from_secs(8)).arrival(Arrival::Bursty {
                on: ms(4),
                off: ms(6),
            }),
        )
        .class(
            LoadClass::new("api", 100_000, Duration::from_secs(2))
                .arrival(Arrival::Ramp { from_permille: 300 }),
        )
        .horizon(horizon)
        .seed(seed)
        .scenario(ScenarioPlan::new().crash(NodeId(4), Time::ZERO + ms(10)))
}

/// Runs a fabric spec and folds its telemetry into the same scenario
/// record as the scaling runs, with the `fabric.response_ns` family as
/// the latency source (the fabric report merges every shard's group
/// responses).
fn run_fabric(name: &str, nodes: u32, spec: FabricSpec) -> ScenarioPerf {
    let registry = Registry::enabled();
    let run = spec
        .telemetry(registry.clone())
        .run()
        .expect("valid fabric spec");
    let metrics = &run.metrics;
    let response = metrics.histogram("fabric.response_ns");
    ScenarioPerf {
        name: name.to_string(),
        nodes,
        events: metrics.counter("engine.events").unwrap_or(0),
        wall_ns: registry.volatile("engine.wall_ns").unwrap_or(0),
        heartbeats_sent: metrics.counter("agents.heartbeats_sent").unwrap_or(0),
        peak_queue_depth: metrics.gauge("engine.queue_depth_peak").unwrap_or(0),
        ctx_switches: metrics.counter("dispatch.ctx_switches").unwrap_or(0),
        abandoned: metrics.counter("group.requests_abandoned").unwrap_or(0),
        spans_dropped: metrics.counter("telemetry.spans_dropped").unwrap_or(0),
        response_count: response.map_or(0, |h| h.count),
        response_p50: response.map_or(0, |h| h.p50),
        response_p99: response.map_or(0, |h| h.p99),
        response_p999: response.map_or(0, |h| h.p999),
    }
}

/// One scenario's measurements, straight out of the telemetry snapshot.
struct ScenarioPerf {
    name: String,
    nodes: u32,
    events: u64,
    wall_ns: u64,
    heartbeats_sent: u64,
    peak_queue_depth: u64,
    ctx_switches: u64,
    abandoned: u64,
    spans_dropped: u64,
    response_count: u64,
    response_p50: u64,
    response_p99: u64,
    response_p999: u64,
}

/// One scenario's profile artifacts from a `--profile` run: the
/// schema-checked JSONL document (deterministic records plus the
/// nondeterministic `"wall"` share lines) and the folded-stacks
/// flamegraph text.
pub struct ProfileArtifacts {
    /// Scenario name, e.g. `cluster96`.
    pub name: String,
    /// `hades.profile.v1` JSONL, validated before return.
    pub jsonl: String,
    /// `flamegraph.pl`-compatible folded stacks.
    pub folded: String,
}

fn run_scenario(
    name: &str,
    nodes: u32,
    horizon: Duration,
    profile: bool,
) -> (ScenarioPerf, Option<ProfileArtifacts>) {
    let registry = Registry::enabled();
    let profiler = if profile {
        Profiler::enabled()
    } else {
        Profiler::disabled()
    };
    let run = perf_scenario(nodes, 7, horizon)
        .telemetry(registry.clone())
        .profile(profiler.clone())
        .run()
        .expect("valid snapshot spec");
    let metrics = &run.telemetry().metrics;
    let response = metrics.histogram("group.response_ns");
    let perf = ScenarioPerf {
        name: name.to_string(),
        nodes,
        events: metrics.counter("engine.events").unwrap_or(0),
        wall_ns: registry.volatile("engine.wall_ns").unwrap_or(0),
        heartbeats_sent: metrics.counter("agents.heartbeats_sent").unwrap_or(0),
        peak_queue_depth: metrics.gauge("engine.queue_depth_peak").unwrap_or(0),
        ctx_switches: metrics.counter("dispatch.ctx_switches").unwrap_or(0),
        abandoned: metrics.counter("group.requests_abandoned").unwrap_or(0),
        spans_dropped: metrics.counter("telemetry.spans_dropped").unwrap_or(0),
        response_count: response.map_or(0, |h| h.count),
        response_p50: response.map_or(0, |h| h.p50),
        response_p99: response.map_or(0, |h| h.p99),
        response_p999: response.map_or(0, |h| h.p999),
    };
    let artifacts = profile.then(|| {
        let report = run.profile().expect("profiler was attached");
        let mut jsonl = report.to_jsonl();
        jsonl.push_str(&ProfileReport::wall_records(&profiler.wall_totals()));
        ProfileReport::validate_jsonl(&jsonl).expect("profile doc must match its schema");
        ProfileArtifacts {
            name: name.to_string(),
            jsonl,
            folded: report.to_folded(),
        }
    });
    (perf, artifacts)
}

impl ScenarioPerf {
    fn to_json(&self) -> String {
        let wall = self.wall_ns.max(1);
        let ns_per_event = self.wall_ns as f64 / self.events.max(1) as f64;
        let events_per_sec = self.events as f64 * 1e9 / wall as f64;
        let heartbeats_per_sec = self.heartbeats_sent as f64 * 1e9 / wall as f64;
        format!(
            "{{\"name\":{},\"nodes\":{},\"events\":{},\"wall_ns\":{},\
             \"ns_per_event\":{:.1},\"events_per_sec\":{:.0},\
             \"heartbeats_sent\":{},\"heartbeats_per_sec\":{:.0},\
             \"peak_queue_depth\":{},\"ctx_switches\":{},\"abandoned\":{},\
             \"spans_dropped\":{},\
             \"response_ns\":{{\"count\":{},\"p50\":{},\"p99\":{},\"p999\":{}}}}}",
            escape(&self.name),
            self.nodes,
            self.events,
            self.wall_ns,
            ns_per_event,
            events_per_sec,
            self.heartbeats_sent,
            heartbeats_per_sec,
            self.peak_queue_depth,
            self.ctx_switches,
            self.abandoned,
            self.spans_dropped,
            self.response_count,
            self.response_p50,
            self.response_p99,
            self.response_p999,
        )
    }
}

/// Peak resident set of this process in bytes (`VmHWM` from
/// `/proc/self/status`), or 0 where procfs is unavailable.
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|kb| kb.parse::<u64>().ok())
        .map_or(0, |kb| kb * 1024)
}

/// Builds the full snapshot document: the 24/48/96-node scaling
/// scenarios, the `fabric_1m` population-scale fabric scenario (10⁶
/// clients over 64 shards with a mid-run rebalance), the
/// instrumented-vs-disabled overhead measurement at 24 nodes, and the
/// process's peak RSS.
pub fn build_snapshot() -> String {
    build_snapshot_profiled(false).0
}

/// [`build_snapshot`], optionally with the deterministic profiler
/// attached to every scaling scenario: the returned
/// [`ProfileArtifacts`] carry one schema-checked profile document and
/// one folded-stacks flamegraph per scenario. The profiler rides the
/// *measured* runs — profiling is pure observation, so the snapshot
/// numbers are the same either way (the wall-clock cost of the hooks is
/// visible in `wall_ns`, which is the point of measuring it).
pub fn build_snapshot_profiled(profile: bool) -> (String, Vec<ProfileArtifacts>) {
    let horizon = ms(30);
    let mut artifacts = Vec::new();
    let mut scenarios: Vec<ScenarioPerf> = [24u32, 48, 96]
        .iter()
        .map(|&nodes| {
            let (perf, art) = run_scenario(&format!("cluster{nodes}"), nodes, horizon, profile);
            artifacts.extend(art);
            perf
        })
        .collect();
    // The fabric scenario rides the same gate but not the profiler (CI
    // asserts exactly the three cluster* profile docs).
    scenarios.push(run_fabric("fabric_1m", 24, fabric_scenario(7, horizon)));

    // Instrumented-vs-disabled overhead: the same 24-node run, once with
    // an enabled registry and once with the default disabled one, both
    // timed from the outside so the comparison includes every hook.
    let instrumented_wall_ns = {
        let start = std::time::Instant::now();
        let _ = perf_scenario(24, 7, horizon)
            .telemetry(Registry::enabled())
            .run()
            .expect("valid snapshot spec");
        start.elapsed().as_nanos() as u64
    };
    let baseline_wall_ns = {
        let start = std::time::Instant::now();
        let _ = perf_scenario(24, 7, horizon)
            .run()
            .expect("valid snapshot spec");
        start.elapsed().as_nanos() as u64
    };
    let overhead_pct = (instrumented_wall_ns as f64 - baseline_wall_ns as f64) * 100.0
        / baseline_wall_ns.max(1) as f64;

    let mut out = String::new();
    out.push_str("{\"schema\":\"hades.bench.cluster.v1\",\"scenarios\":[");
    for (i, s) in scenarios.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&s.to_json());
    }
    let _ = write!(
        out,
        "],\"overhead\":{{\"nodes\":24,\"instrumented_wall_ns\":{instrumented_wall_ns},\
         \"baseline_wall_ns\":{baseline_wall_ns},\"overhead_pct\":{overhead_pct:.2}}},\
         \"peak_rss_bytes\":{}}}",
        peak_rss_bytes()
    );
    (out, artifacts)
}

/// Validates a snapshot document against `hades.bench.cluster.v1`.
///
/// # Errors
///
/// A message naming the first missing or mistyped field.
pub fn validate_snapshot(text: &str) -> Result<(), String> {
    let doc = Json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    if doc.get("schema").and_then(Json::as_str) != Some("hades.bench.cluster.v1") {
        return Err("schema must be \"hades.bench.cluster.v1\"".into());
    }
    let scenarios = doc
        .get("scenarios")
        .and_then(Json::as_array)
        .ok_or("missing scenarios array")?;
    if scenarios.is_empty() {
        return Err("scenarios array is empty".into());
    }
    for (i, s) in scenarios.iter().enumerate() {
        if s.get("name").and_then(Json::as_str).is_none() {
            return Err(format!("scenario {i}: missing name"));
        }
        for field in [
            "nodes",
            "events",
            "wall_ns",
            "ns_per_event",
            "events_per_sec",
            "heartbeats_sent",
            "heartbeats_per_sec",
            "peak_queue_depth",
            "ctx_switches",
            "abandoned",
            "spans_dropped",
        ] {
            if s.get(field).and_then(Json::as_f64).is_none() {
                return Err(format!("scenario {i}: missing numeric field {field}"));
            }
        }
        let response = s
            .get("response_ns")
            .ok_or_else(|| format!("scenario {i}: missing response_ns"))?;
        for field in ["count", "p50", "p99", "p999"] {
            if response.get(field).and_then(Json::as_f64).is_none() {
                return Err(format!("scenario {i}: response_ns missing {field}"));
            }
        }
    }
    let overhead = doc.get("overhead").ok_or("missing overhead object")?;
    for field in [
        "nodes",
        "instrumented_wall_ns",
        "baseline_wall_ns",
        "overhead_pct",
    ] {
        if overhead.get(field).and_then(Json::as_f64).is_none() {
            return Err(format!("overhead missing numeric field {field}"));
        }
    }
    if doc.get("peak_rss_bytes").and_then(Json::as_f64).is_none() {
        return Err("missing peak_rss_bytes".into());
    }
    Ok(())
}

/// The `perf_snapshot` experiment: the JSON document itself (already
/// validated), so `experiments perf_snapshot` prints exactly what the
/// binary would write to `BENCH_cluster.json`.
pub fn perf_snapshot() -> String {
    let doc = build_snapshot();
    validate_snapshot(&doc).expect("snapshot must match its own schema");
    doc
}

/// Gates `current` against the committed `baseline`: for every scenario
/// the two documents share by name, `events_per_sec` and `ns_per_event`
/// must sit within `±tolerance_pct` of the baseline value. A scenario
/// present on one side only also fails — a silently dropped scenario is
/// how a gate rots.
///
/// The band is symmetric on purpose: a run 30% *faster* than the
/// committed numbers is not a failure of the engine, but it is a stale
/// baseline, and the fix (re-run `perf_snapshot` and commit the result)
/// is the same either way.
///
/// # Errors
///
/// One message per out-of-band metric or unmatched scenario, joined by
/// newlines; parse/schema failures of either document report alone.
pub fn compare_snapshots(current: &str, baseline: &str, tolerance_pct: f64) -> Result<(), String> {
    fn scenario_metrics(doc: &str, which: &str) -> Result<Vec<(String, f64, f64)>, String> {
        validate_snapshot(doc).map_err(|e| format!("{which} snapshot invalid: {e}"))?;
        let parsed = Json::parse(doc).map_err(|e| format!("{which} snapshot unreadable: {e}"))?;
        let scenarios = parsed
            .get("scenarios")
            .and_then(Json::as_array)
            .ok_or_else(|| format!("{which} snapshot has no scenarios"))?;
        scenarios
            .iter()
            .map(|s| {
                let name = s
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("{which} snapshot: unnamed scenario"))?
                    .to_string();
                let eps = s
                    .get("events_per_sec")
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0);
                let nspe = s.get("ns_per_event").and_then(Json::as_f64).unwrap_or(0.0);
                Ok((name, eps, nspe))
            })
            .collect()
    }
    let current = scenario_metrics(current, "current")?;
    let baseline = scenario_metrics(baseline, "baseline")?;

    let mut failures = Vec::new();
    fn check(
        failures: &mut Vec<String>,
        tolerance_pct: f64,
        name: &str,
        metric: &str,
        cur: f64,
        base: f64,
    ) {
        if base <= 0.0 {
            failures.push(format!("{name}: baseline {metric} is {base}, cannot gate"));
            return;
        }
        let drift_pct = (cur - base) * 100.0 / base;
        if drift_pct.abs() > tolerance_pct {
            failures.push(format!(
                "{name}: {metric} drifted {drift_pct:+.1}% \
                 (current {cur:.0}, baseline {base:.0}, tolerance ±{tolerance_pct:.0}%)"
            ));
        }
    }
    for (name, eps, nspe) in &current {
        match baseline.iter().find(|(b, _, _)| b == name) {
            Some((_, base_eps, base_nspe)) => {
                check(
                    &mut failures,
                    tolerance_pct,
                    name,
                    "events_per_sec",
                    *eps,
                    *base_eps,
                );
                check(
                    &mut failures,
                    tolerance_pct,
                    name,
                    "ns_per_event",
                    *nspe,
                    *base_nspe,
                );
            }
            None => failures.push(format!("{name}: present in current, missing from baseline")),
        }
    }
    for (name, _, _) in &baseline {
        if !current.iter().any(|(c, _, _)| c == name) {
            failures.push(format!("{name}: present in baseline, missing from current"));
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_validates_against_its_schema() {
        // One small scenario keeps the debug-mode test affordable; the
        // full 24/48/96 sweep runs in the release-mode binary.
        let (s, none) = run_scenario("small", 4, ms(10), false);
        assert!(none.is_none());
        assert!(s.events > 0, "engine events must be counted");
        assert!(s.heartbeats_sent > 0, "heartbeats must be counted");
        let mut doc = String::from("{\"schema\":\"hades.bench.cluster.v1\",\"scenarios\":[");
        doc.push_str(&s.to_json());
        doc.push_str(
            "],\"overhead\":{\"nodes\":4,\"instrumented_wall_ns\":1,\
             \"baseline_wall_ns\":1,\"overhead_pct\":0.0},\"peak_rss_bytes\":0}",
        );
        validate_snapshot(&doc).expect("well-formed snapshot");
    }

    fn doc_with(scenarios: &[(&str, f64, f64)]) -> String {
        let mut doc = String::from("{\"schema\":\"hades.bench.cluster.v1\",\"scenarios\":[");
        for (i, (name, eps, nspe)) in scenarios.iter().enumerate() {
            if i > 0 {
                doc.push(',');
            }
            let _ = write!(
                doc,
                "{{\"name\":\"{name}\",\"nodes\":4,\"events\":1000,\"wall_ns\":1000,\
                 \"ns_per_event\":{nspe},\"events_per_sec\":{eps},\
                 \"heartbeats_sent\":1,\"heartbeats_per_sec\":1,\
                 \"peak_queue_depth\":1,\"ctx_switches\":1,\"abandoned\":0,\
                 \"spans_dropped\":0,\
                 \"response_ns\":{{\"count\":0,\"p50\":0,\"p99\":0,\"p999\":0}}}}"
            );
        }
        doc.push_str(
            "],\"overhead\":{\"nodes\":4,\"instrumented_wall_ns\":1,\
             \"baseline_wall_ns\":1,\"overhead_pct\":0.0},\"peak_rss_bytes\":0}",
        );
        doc
    }

    #[test]
    fn gate_passes_within_tolerance() {
        let base = doc_with(&[("a", 1000.0, 100.0), ("b", 2000.0, 50.0)]);
        let cur = doc_with(&[("a", 1200.0, 90.0), ("b", 1800.0, 55.0)]);
        compare_snapshots(&cur, &base, 25.0).expect("within ±25%");
    }

    #[test]
    fn gate_fails_on_regression_speedup_and_drift() {
        let base = doc_with(&[("a", 1000.0, 100.0)]);
        // 50% slower: both metrics out of band.
        let err = compare_snapshots(&doc_with(&[("a", 500.0, 200.0)]), &base, 25.0)
            .expect_err("regression must fail the gate");
        assert!(err.contains("events_per_sec"), "{err}");
        assert!(err.contains("ns_per_event"), "{err}");
        // 2x faster: a stale baseline also fails (symmetric band).
        assert!(compare_snapshots(&doc_with(&[("a", 2000.0, 50.0)]), &base, 25.0).is_err());
        // Scenario sets must match exactly.
        let err = compare_snapshots(
            &doc_with(&[("a", 1000.0, 100.0), ("x", 1.0, 1.0)]),
            &base,
            25.0,
        )
        .expect_err("extra scenario must fail");
        assert!(err.contains("missing from baseline"), "{err}");
        let err =
            compare_snapshots(&doc_with(&[]), &base, 25.0).expect_err("empty current must fail");
        assert!(err.contains("invalid"), "{err}");
    }

    #[test]
    fn validator_rejects_drifted_documents() {
        assert!(validate_snapshot("not json").is_err());
        assert!(validate_snapshot("{\"schema\":\"other\"}").is_err());
        assert!(
            validate_snapshot("{\"schema\":\"hades.bench.cluster.v1\",\"scenarios\":[]}").is_err()
        );
        let no_overhead = "{\"schema\":\"hades.bench.cluster.v1\",\"scenarios\":[{\
            \"name\":\"x\",\"nodes\":1,\"events\":1,\"wall_ns\":1,\"ns_per_event\":1,\
            \"events_per_sec\":1,\"heartbeats_sent\":1,\"heartbeats_per_sec\":1,\
            \"peak_queue_depth\":1,\"ctx_switches\":1,\"abandoned\":0,\"spans_dropped\":0,\
            \"response_ns\":{\"count\":0,\"p50\":0,\"p99\":0,\"p999\":0}}]}";
        assert!(validate_snapshot(no_overhead).is_err());
        // A document without the spans_dropped field is pre-v1-profiler
        // and must be rejected, so capped runs stay detectable.
        let no_spans = doc_with(&[("a", 1.0, 1.0)]).replace("\"spans_dropped\":0,", "");
        assert!(validate_snapshot(&no_spans)
            .unwrap_err()
            .contains("spans_dropped"));
    }

    #[test]
    fn fabric_scenario_produces_a_gateable_record() {
        // A scaled-down fabric keeps the debug-mode test affordable;
        // the full 1M-client sweep runs in the release-mode binary.
        let small = FabricSpec::new(6, 8)
            .class(LoadClass::new("web", 60_000, Duration::from_secs(5)))
            .horizon(ms(10))
            .seed(7)
            .scenario(ScenarioPlan::new().crash(NodeId(1), Time::ZERO + ms(4)));
        let s = run_fabric("fabric_small", 6, small);
        assert!(s.events > 0, "engine events must be counted");
        assert!(s.response_count > 0, "fabric responses must be graded");
        assert!(s.response_p50 <= s.response_p999);
        let mut doc = String::from("{\"schema\":\"hades.bench.cluster.v1\",\"scenarios\":[");
        doc.push_str(&s.to_json());
        doc.push_str(
            "],\"overhead\":{\"nodes\":6,\"instrumented_wall_ns\":1,\
             \"baseline_wall_ns\":1,\"overhead_pct\":0.0},\"peak_rss_bytes\":0}",
        );
        validate_snapshot(&doc).expect("well-formed snapshot");
    }

    #[test]
    fn profiled_snapshot_scenario_emits_valid_artifacts() {
        let (_, art) = run_scenario("small", 4, ms(10), true);
        let art = art.expect("profile artifacts");
        ProfileReport::validate_jsonl(&art.jsonl).expect("schema-valid");
        assert!(art.jsonl.contains("\"record\":\"wall\""));
        assert!(art.jsonl.contains("heartbeat_msg_share_permille"));
        assert!(art.folded.contains("hades;engine;"));
    }
}
