//! Extension experiments beyond the paper's figures: ablations of the
//! design choices DESIGN.md calls out.
//!
//! * `ablation` — which overhead component costs the most acceptance?
//! * `overload` — planning-based admission (Spring) vs EDF under overload.
//! * `modes` — mode-change transition analysis (carry-over vs safe offset).
//! * `latency` — response-time distributions, RM vs EDF, same task set.

use hades_dispatch::{CostModel, DispatchSim, SimConfig};
use hades_sched::{edf_feasible, EdfAnalysisConfig, ModeChange, SpringPolicy};
use hades_sim::{KernelModel, Summary};
use hades_task::prelude::*;
use hades_task::spuri::SpuriTask;
use std::fmt::Write;

fn us(n: u64) -> Duration {
    Duration::from_micros(n)
}

/// Cost-component ablation: acceptance ratio at fixed load with each
/// overhead source removed in turn.
pub fn cost_ablation() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "EXT-A — overhead-component ablation (acceptance at 80% load)"
    );
    let _ = writeln!(
        out,
        "============================================================="
    );
    let _ = writeln!(out, "{:<22} {:>12}", "configuration", "acceptance");
    let full = CostModel::measured_default();
    let variants: Vec<(&str, CostModel, KernelModel)> = vec![
        (
            "naive (no overheads)",
            CostModel::zero(),
            KernelModel::none(),
        ),
        ("full platform", full, KernelModel::chorus_like()),
        ("no kernel IRQs", full, KernelModel::none()),
        (
            "no scheduler cost",
            CostModel {
                sched_notif: Duration::ZERO,
                ..full
            },
            KernelModel::chorus_like(),
        ),
        (
            "no action overheads",
            CostModel {
                act_start: Duration::ZERO,
                act_end: Duration::ZERO,
                ..full
            },
            KernelModel::chorus_like(),
        ),
        (
            "no context switches",
            CostModel {
                ctx_switch: Duration::ZERO,
                ..full
            },
            KernelModel::chorus_like(),
        ),
    ];
    let trials = 300u64;
    for (name, costs, kernel) in variants {
        let cfg = EdfAnalysisConfig::with_platform(costs, kernel);
        let accepted = (0..trials)
            .filter(|t| {
                let tasks = crate::sweep::random_set(555_000 + t, 4, 800);
                edf_feasible(&tasks, &cfg).feasible
            })
            .count();
        let _ = writeln!(
            out,
            "{:<22} {:>11.1}%",
            name,
            100.0 * accepted as f64 / trials as f64
        );
    }
    let _ = writeln!(
        out,
        "\nexpected shape: kernel IRQs (5.2% standing load) and per-unit\n\
         action overheads dominate the acceptance loss; removing any single\n\
         component recovers part of the naive headroom."
    );
    out
}

/// Spring admission control vs EDF under increasing overload.
pub fn spring_overload() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "EXT-B — overload behaviour: Spring admission vs EDF");
    let _ = writeln!(out, "===================================================");
    let _ = writeln!(
        out,
        "{:>6} {:>10} {:>12} {:>12}",
        "load", "jobs", "EDF misses", "Spring misses"
    );
    for load in [80u64, 100, 120, 150, 200] {
        // Six jobs with staggered deadlines (1 ms, 1.4 ms, ..., 3 ms);
        // each job's work scales with the offered load.
        let n_jobs = 6u32;
        let horizon = us(10_000);
        let wcet = us(500 * load / 100);
        let run = |spring: bool| {
            let tasks: Vec<Task> = (0..n_jobs)
                .map(|i| {
                    Task::new(
                        TaskId(i),
                        Heug::single(CodeEu::new(format!("j{i}"), wcet, ProcessorId(0)))
                            .expect("valid"),
                        ArrivalLaw::Aperiodic,
                        us(1_000 + 400 * i as u64),
                    )
                })
                .collect();
            let set = TaskSet::new(tasks).expect("valid");
            let mut cfg = SimConfig::ideal(horizon);
            cfg.auto_activate = false;
            let mut sim = DispatchSim::new(set, cfg);
            if spring {
                sim.set_policy(0, Box::new(SpringPolicy::new()));
            } else {
                sim.set_policy(0, Box::new(hades_sched::EdfPolicy::new()));
            }
            for i in 0..n_jobs {
                sim.activate_at(TaskId(i), Time::ZERO + us(10 * i as u64));
            }
            sim.run().misses()
        };
        let _ = writeln!(
            out,
            "{:>5}% {:>10} {:>12} {:>12}",
            load,
            n_jobs,
            run(false),
            run(true)
        );
    }
    let _ = writeln!(
        out,
        "\nexpected shape: below 100% both are clean; past it EDF's domino\n\
         effect misses many deadlines while Spring sheds only the jobs that\n\
         do not fit."
    );
    out
}

/// Mode-change transition analysis table.
pub fn mode_change_table() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "EXT-C — mode-change transitions ([Mos94])");
    let _ = writeln!(out, "=========================================");
    let _ = writeln!(
        out,
        "{:>12} {:>10} {:>11} {:>12}",
        "carry-over", "steady ok", "immediate", "safe offset"
    );
    let cfg =
        EdfAnalysisConfig::with_platform(CostModel::measured_default(), KernelModel::chorus_like());
    let new_mode = vec![
        SpuriTask::independent(TaskId(10), "recover", us(3_000), us(5_000), us(5_000)),
        SpuriTask::independent(TaskId(11), "monitor", us(200), us(2_000), us(2_000)),
    ];
    for old_c in [500u64, 2_000, 4_000, 8_000] {
        let old_mode = vec![SpuriTask::independent(
            TaskId(0),
            "normal",
            us(old_c),
            us(20_000),
            us(20_000),
        )];
        let report = ModeChange::new(old_mode, new_mode.clone()).analyze(&cfg);
        let _ = writeln!(
            out,
            "{:>12} {:>10} {:>11} {:>12}",
            report.carryover.to_string(),
            if report.steady_state.feasible {
                "yes"
            } else {
                "no"
            },
            if report.immediate_feasible {
                "yes"
            } else {
                "no"
            },
            if report.safe_offset == Duration::MAX {
                String::from("n/a")
            } else {
                report.safe_offset.to_string()
            }
        );
    }
    let _ = writeln!(
        out,
        "\nexpected shape: small carry-overs switch immediately; large ones\n\
         need a drain offset that grows with the carried work."
    );
    out
}

/// Response-time distributions, RM vs EDF on the same periodic set.
pub fn latency_distribution() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "EXT-D — response-time distribution, RM vs EDF (same set)"
    );
    let _ = writeln!(
        out,
        "========================================================"
    );
    // U ≈ 0.93: above the RM utilisation region, below EDF's U = 1 bound.
    let build = || -> Vec<Task> {
        vec![
            Task::new(
                TaskId(0),
                Heug::single(CodeEu::new("fast", us(300), ProcessorId(0))).expect("valid"),
                ArrivalLaw::Periodic(us(1_000)),
                us(1_000),
            ),
            Task::new(
                TaskId(1),
                Heug::single(CodeEu::new("mid", us(900), ProcessorId(0))).expect("valid"),
                ArrivalLaw::Periodic(us(3_100)),
                us(3_100),
            ),
            Task::new(
                TaskId(2),
                Heug::single(CodeEu::new("slow", us(3_200), ProcessorId(0))).expect("valid"),
                ArrivalLaw::Periodic(us(9_700)),
                us(9_700),
            ),
        ]
    };
    for policy in ["RM", "EDF"] {
        let mut tasks = build();
        if policy == "RM" {
            hades_sched::assign_rm(&mut tasks);
        }
        let set = TaskSet::new(tasks).expect("valid");
        let mut cfg = SimConfig::ideal(Duration::from_millis(200));
        cfg.trace = false;
        let mut sim = DispatchSim::new(set, cfg);
        if policy == "EDF" {
            sim.set_policy(0, Box::new(hades_sched::EdfPolicy::new()));
        }
        let report = sim.run();
        let _ = writeln!(out, "\n{policy} (misses: {}):", report.misses());
        for id in 0..3u32 {
            let samples: Vec<Duration> = report
                .of_task(TaskId(id))
                .iter()
                .filter_map(|i| i.response_time())
                .collect();
            if let Some(s) = Summary::of(&samples) {
                let _ = writeln!(out, "  T{id}: {}", s.render());
            }
        }
    }
    let _ = writeln!(
        out,
        "\nexpected shape: at U ≈ 0.93 (past the RM region, within EDF's\n\
         U ≤ 1 bound) RM lets the slowest task absorb all interference —\n\
         and miss — while EDF meets every deadline with higher but bounded\n\
         tail latencies on the fast tasks."
    );
    out
}
