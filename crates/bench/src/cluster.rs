//! Cluster-level experiments on the integrated multi-node runtime:
//! end-to-end failover behaviour, the middleware overhead / failover
//! latency trend as the cluster grows, the crash→restart→rejoin
//! lifecycle (rejoin latency and state-transfer overhead vs checkpoint
//! interval and cluster size), and the replication-group workload
//! (three styles over Δ-atomic multicast across a leader crash, plus
//! the flood-vs-Δ-multicast view-change message complexity).

use hades_cluster::{ClusterSpec, GroupLoad, MiddlewareConfig, ScenarioPlan, ServiceSpec};
use hades_dispatch::CostModel;
use hades_sched::Policy;
use hades_services::{RecoveryConfig, ReplicaStyle};
use hades_sim::NodeId;
use hades_time::{Duration, Time};
use std::fmt::Write;

fn us(n: u64) -> Duration {
    Duration::from_micros(n)
}

fn ms(n: u64) -> Duration {
    Duration::from_millis(n)
}

/// A standard failover scenario: `nodes` nodes under EDF with measured
/// costs, two app services per node, primary killed mid-run.
pub fn failover_scenario(nodes: u32, seed: u64, horizon: Duration) -> ClusterSpec {
    let mut spec = ClusterSpec::new(nodes)
        .policy(Policy::Edf)
        .costs(CostModel::measured_default())
        .horizon(horizon)
        .seed(seed)
        .scenario(ScenarioPlan::new().crash(NodeId(0), Time::ZERO + ms(20)));
    for node in 0..nodes {
        spec = spec
            .service(ServiceSpec::periodic("control", node, us(200), ms(2)))
            .service(ServiceSpec::periodic("logging", node, us(500), ms(10)));
    }
    spec
}

/// The end-to-end failover experiment: one annotated 4-node run.
pub fn cluster_failover() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "## Cluster failover (4 nodes, EDF + measured costs, primary killed at 20 ms)\n"
    );
    let spec = failover_scenario(4, 42, ms(60));
    let bound = spec.detection_bound();
    let report = spec.run().expect("valid spec").into_report();
    out.push_str(&report.summary());
    let _ = writeln!(out, "  detection bound: {bound}");
    let _ = writeln!(
        out,
        "  bounds held: detection={} views_agree={} app_deadlines={}",
        report.detection_within_bound(),
        report.views_agree,
        report.all_app_deadlines_met()
    );
    out
}

/// Failover latency and per-node middleware/dispatcher overhead vs.
/// cluster size — through the 96-node mark the packed-u64 membership
/// masks could never reach (their ceiling was 48).
pub fn cluster_scaling() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## Cluster scaling (failover + overhead vs size)\n");
    let _ = writeln!(
        out,
        "{:>5} {:>14} {:>14} {:>16} {:>14} {:>12}",
        "nodes", "detect_worst", "failover", "sched_cpu/node", "net_msgs", "hb_seen"
    );
    for nodes in [3u32, 4, 6, 8, 12, 16, 24, 48, 96] {
        // The big sizes are a smoke check of the variable-length
        // membership path, not a latency sweep: a shorter horizon keeps
        // the O(n²) heartbeat traffic affordable.
        let horizon = if nodes > 16 { ms(30) } else { ms(60) };
        let report = failover_scenario(nodes, 7, horizon)
            .run()
            .expect("valid spec")
            .into_report();
        assert!(report.views_agree, "agreement must hold at size {nodes}");
        assert!(
            report.detection_within_bound(),
            "detection bound must hold at size {nodes}"
        );
        let _ = writeln!(
            out,
            "{:>5} {:>14} {:>14} {:>16} {:>14} {:>12}",
            nodes,
            report
                .worst_detection_latency()
                .map_or_else(|| "-".into(), |d| d.to_string()),
            report
                .worst_failover_latency()
                .map_or_else(|| "-".into(), |d| d.to_string()),
            (report.scheduler_cpu / nodes as u64).to_string(),
            report.network.sent,
            report.heartbeats_seen,
        );
    }
    out
}

/// A standard recovery scenario: `nodes` nodes under EDF with measured
/// costs, two app tasks per node, node 1 crashed at 15 ms and restarted
/// at 35 ms, with the given checkpoint cadence.
pub fn recovery_scenario(
    nodes: u32,
    seed: u64,
    horizon: Duration,
    checkpoint_period: Duration,
) -> ClusterSpec {
    let mw = MiddlewareConfig {
        recovery: RecoveryConfig {
            checkpoint_period,
            ..RecoveryConfig::default()
        },
        ..MiddlewareConfig::default()
    };
    let mut spec = ClusterSpec::new(nodes)
        .policy(Policy::Edf)
        .costs(CostModel::measured_default())
        .horizon(horizon)
        .seed(seed)
        .middleware(mw)
        .scenario(
            ScenarioPlan::new()
                .crash(NodeId(1), Time::ZERO + ms(15))
                .restart(NodeId(1), Time::ZERO + ms(35)),
        );
    for node in 0..nodes {
        spec = spec
            .service(ServiceSpec::periodic("control", node, us(200), ms(2)))
            .service(ServiceSpec::periodic("logging", node, us(500), ms(10)));
    }
    spec
}

/// The recovery experiment: rejoin latency and state-transfer overhead vs
/// checkpoint interval (longer intervals grow the replayed log tail), and
/// the rejoin latency decomposition vs cluster size.
pub fn cluster_recovery() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "## Cluster recovery (crash at 15 ms, restart at 35 ms, EDF + measured costs)\n"
    );
    let _ = writeln!(out, "### Rejoin vs checkpoint interval (4 nodes)\n");
    let _ = writeln!(
        out,
        "{:>9} {:>12} {:>10} {:>8} {:>14} {:>14} {:>12}",
        "ckpt", "log_replay", "bytes", "chunks", "transfer", "rejoin", "bound_ok"
    );
    for ckpt_ms in [5u64, 10, 20, 40] {
        let report = recovery_scenario(4, 11, ms(80), ms(ckpt_ms))
            .run()
            .expect("valid spec")
            .into_report();
        assert_eq!(report.recoveries.len(), 1, "rejoin must complete");
        let r = report.recoveries[0];
        let _ = writeln!(
            out,
            "{:>9} {:>12} {:>10} {:>8} {:>14} {:>14} {:>12}",
            format!("{ckpt_ms}ms"),
            r.log_entries_replayed,
            r.bytes_transferred,
            r.chunks,
            r.transfer_latency.to_string(),
            r.rejoin_latency.to_string(),
            report.rejoin_within_bound(),
        );
    }
    let _ = writeln!(out, "\n### Rejoin decomposition vs cluster size\n");
    let _ = writeln!(
        out,
        "{:>5} {:>12} {:>12} {:>12} {:>12} {:>12} {:>10} {:>12}",
        "nodes", "detect", "announce", "transfer", "readmit", "rejoin", "views", "net_msgs"
    );
    for nodes in [3u32, 4, 6, 8, 12, 16] {
        let report = recovery_scenario(nodes, 23, ms(80), ms(20))
            .run()
            .expect("valid spec")
            .into_report();
        assert_eq!(report.recoveries.len(), 1, "rejoin at size {nodes}");
        assert!(report.views_agree, "agreement must hold at size {nodes}");
        let r = report.recoveries[0];
        let _ = writeln!(
            out,
            "{:>5} {:>12} {:>12} {:>12} {:>12} {:>12} {:>10} {:>12}",
            nodes,
            r.detect_latency
                .map_or_else(|| "-".into(), |d| d.to_string()),
            r.announce_latency.to_string(),
            r.transfer_latency.to_string(),
            r.readmit_latency.to_string(),
            r.rejoin_latency.to_string(),
            r.views_traversed,
            report.network.sent,
        );
    }
    out
}

/// A standard replication-group scenario: 5 nodes under EDF with
/// measured costs, one group per style, node 0 (leader + gateway of two
/// of them) crashed at 20 ms and restarted at 40 ms.
pub fn groups_scenario(seed: u64, horizon: Duration, delta_multicast_vc: bool) -> ClusterSpec {
    let mw = MiddlewareConfig {
        delta_multicast_vc,
        ..MiddlewareConfig::default()
    };
    let mut spec = ClusterSpec::new(5)
        .policy(Policy::Edf)
        .costs(CostModel::measured_default())
        .horizon(horizon)
        .seed(seed)
        .middleware(mw)
        .scenario(
            ScenarioPlan::new()
                .crash(NodeId(0), Time::ZERO + ms(20))
                .restart(NodeId(0), Time::ZERO + ms(40)),
        )
        .service(ServiceSpec::replicated(
            "active-store",
            ReplicaStyle::Active,
            vec![0, 1, 2],
            GroupLoad::default(),
        ))
        .service(ServiceSpec::replicated(
            "semi-active-store",
            ReplicaStyle::SemiActive,
            vec![0, 3, 4],
            GroupLoad::default(),
        ))
        .service(ServiceSpec::replicated(
            "passive-store",
            ReplicaStyle::Passive {
                checkpoint_every: 5,
            },
            vec![1, 2, 3],
            GroupLoad::default(),
        ));
    for node in 0..5 {
        spec = spec.service(ServiceSpec::periodic("control", node, us(200), ms(2)));
    }
    spec
}

/// The replication-group experiment: per-style outcome of the same
/// client request stream across a leader crash + restart, and the
/// view-change transport comparison.
pub fn cluster_groups() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "## Replication groups over Δ-atomic multicast (5 nodes, leader crash at 20 ms, restart at 40 ms)\n"
    );
    let spec = groups_scenario(42, ms(100), true);
    let delta = spec.group_delta();
    let report = spec.run().expect("valid spec").into_report();
    let _ = writeln!(out, "Δ = δmax + γ = {delta}\n");
    let _ = writeln!(
        out,
        "{:<12} {:>8} {:>8} {:>8} {:>11} {:>8} {:>9} {:>9} {:>9}",
        "style",
        "outputs",
        "on_time",
        "delayed",
        "worst_lat",
        "dup_out",
        "suppr",
        "handoffs",
        "msgs"
    );
    for g in &report.groups {
        assert!(g.order_agreement, "order must agree for {}", g.style_name);
        let _ = writeln!(
            out,
            "{:<12} {:>8} {:>8} {:>8} {:>11} {:>8} {:>9} {:>9} {:>9}",
            g.style_name,
            g.outputs,
            g.on_time_outputs,
            g.delayed_outputs,
            g.worst_latency
                .map_or_else(|| "-".into(), |d| d.to_string()),
            g.duplicate_outputs,
            g.duplicates_suppressed,
            g.handoffs.len(),
            g.messages,
        );
    }
    let _ = writeln!(
        out,
        "\nbounds held: order_agreement=true delta_bound={} dup_outputs={}",
        report.groups.iter().all(|g| g.within_delta_bound()),
        report
            .groups
            .iter()
            .map(|g| g.duplicate_outputs)
            .sum::<u64>(),
    );

    let _ = writeln!(out, "\n### View-change transport message complexity\n");
    let _ = writeln!(
        out,
        "{:<16} {:>9} {:>13} {:>12} {:>12}",
        "transport", "vc_msgs", "view_changes", "flood_eq", "mcast_eq"
    );
    // The multicast row reuses the run above; only the flood variant
    // needs a second simulation.
    let flood = groups_scenario(42, ms(100), false)
        .run()
        .expect("valid spec")
        .into_report();
    assert!(flood.views_agree, "agreement under either transport");
    for vc in [&report.view_change, &flood.view_change] {
        let _ = writeln!(
            out,
            "{:<16} {:>9} {:>13} {:>12} {:>12}",
            vc.transport,
            vc.messages,
            vc.view_changes,
            vc.flood_equivalent,
            vc.multicast_equivalent,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failover_experiment_reports_bounds_held() {
        let out = cluster_failover();
        assert!(out.contains("bounds held: detection=true views_agree=true app_deadlines=true"));
    }

    #[test]
    fn scaling_covers_3_to_96_nodes() {
        let out = cluster_scaling();
        for nodes in ["    3", "    4", "   16", "   48", "   96"] {
            assert!(out.contains(nodes), "missing row {nodes:?}:\n{out}");
        }
    }

    #[test]
    fn recovery_experiment_sweeps_intervals_and_sizes() {
        let out = cluster_recovery();
        for token in ["5ms", "40ms", "   16", "bound_ok"] {
            assert!(out.contains(token), "missing {token:?}:\n{out}");
        }
        assert!(
            !out.contains("false"),
            "a rejoin exceeded its bound:\n{out}"
        );
    }

    #[test]
    fn groups_experiment_covers_all_styles_and_transports() {
        let out = cluster_groups();
        for token in [
            "active",
            "semi-active",
            "passive",
            "delta-multicast",
            "flood",
            "bounds held: order_agreement=true delta_bound=true dup_outputs=0",
        ] {
            assert!(out.contains(token), "missing {token:?}:\n{out}");
        }
    }

    #[test]
    fn longer_checkpoint_interval_means_longer_replay() {
        let short = recovery_scenario(4, 5, ms(80), ms(5))
            .run()
            .unwrap()
            .into_report();
        let long = recovery_scenario(4, 5, ms(80), ms(40))
            .run()
            .unwrap()
            .into_report();
        assert!(
            long.recoveries[0].log_entries_replayed > short.recoveries[0].log_entries_replayed,
            "the log tail grows with the checkpoint interval"
        );
        assert!(long.recoveries[0].bytes_transferred > short.recoveries[0].bytes_transferred);
    }
}
