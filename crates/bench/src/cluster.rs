//! Cluster-level experiments on the integrated multi-node runtime:
//! end-to-end failover behaviour and the middleware overhead / failover
//! latency trend as the cluster grows.

use hades_cluster::{HadesCluster, ScenarioPlan};
use hades_dispatch::CostModel;
use hades_sched::Policy;
use hades_sim::NodeId;
use hades_time::{Duration, Time};
use std::fmt::Write;

fn us(n: u64) -> Duration {
    Duration::from_micros(n)
}

fn ms(n: u64) -> Duration {
    Duration::from_millis(n)
}

/// A standard failover scenario: `nodes` nodes under EDF with measured
/// costs, two app tasks per node, primary killed mid-run.
pub fn failover_scenario(nodes: u32, seed: u64, horizon: Duration) -> HadesCluster {
    let mut cluster = HadesCluster::new(nodes)
        .policy(Policy::Edf)
        .costs(CostModel::measured_default())
        .horizon(horizon)
        .seed(seed)
        .scenario(ScenarioPlan::new().crash(NodeId(0), Time::ZERO + ms(20)));
    for node in 0..nodes {
        cluster = cluster
            .periodic_app(node, "control", us(200), ms(2))
            .periodic_app(node, "logging", us(500), ms(10));
    }
    cluster
}

/// The end-to-end failover experiment: one annotated 4-node run.
pub fn cluster_failover() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "## Cluster failover (4 nodes, EDF + measured costs, primary killed at 20 ms)\n"
    );
    let cluster = failover_scenario(4, 42, ms(60));
    let bound = cluster.detection_bound();
    let report = cluster.run().expect("valid cluster");
    out.push_str(&report.summary());
    let _ = writeln!(out, "  detection bound: {bound}");
    let _ = writeln!(
        out,
        "  bounds held: detection={} views_agree={} app_deadlines={}",
        report.detection_within_bound(),
        report.views_agree,
        report.all_app_deadlines_met()
    );
    out
}

/// Failover latency and per-node middleware/dispatcher overhead vs.
/// cluster size.
pub fn cluster_scaling() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## Cluster scaling (failover + overhead vs size)\n");
    let _ = writeln!(
        out,
        "{:>5} {:>14} {:>14} {:>16} {:>14} {:>12}",
        "nodes", "detect_worst", "failover", "sched_cpu/node", "net_msgs", "hb_seen"
    );
    for nodes in [3u32, 4, 6, 8, 12, 16] {
        let report = failover_scenario(nodes, 7, ms(60))
            .run()
            .expect("valid cluster");
        assert!(report.views_agree, "agreement must hold at size {nodes}");
        let _ = writeln!(
            out,
            "{:>5} {:>14} {:>14} {:>16} {:>14} {:>12}",
            nodes,
            report
                .worst_detection_latency()
                .map_or_else(|| "-".into(), |d| d.to_string()),
            report
                .worst_failover_latency()
                .map_or_else(|| "-".into(), |d| d.to_string()),
            (report.scheduler_cpu / nodes as u64).to_string(),
            report.network.sent,
            report.heartbeats_seen,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failover_experiment_reports_bounds_held() {
        let out = cluster_failover();
        assert!(out.contains("bounds held: detection=true views_agree=true app_deadlines=true"));
    }

    #[test]
    fn scaling_covers_3_to_16_nodes() {
        let out = cluster_scaling();
        for nodes in ["    3", "    4", "   16"] {
            assert!(out.contains(nodes), "missing row {nodes:?}:\n{out}");
        }
    }
}
