//! Experiment harness regenerating every figure- and table-shaped result
//! of the paper (see `DESIGN.md`, experiment index E1–E14).
//!
//! Each experiment is a pure function returning a printable report, so the
//! `experiments` binary, the integration tests and `EXPERIMENTS.md` all
//! draw from the same code.

pub mod cluster;
pub mod costs;
pub mod extensions;
pub mod figures;
pub mod perf;
pub mod policies;
pub mod services;
pub mod sweep;

/// Runs the experiment with the given name; `None` if unknown.
pub fn run_experiment(name: &str) -> Option<String> {
    Some(match name {
        "fig1" => figures::fig1_architecture(),
        "fig2" => figures::fig2_edf_cooperation(),
        "fig3" => figures::fig3_spuri_translation(),
        "costs" => costs::dispatcher_cost_table(),
        "kernel" => costs::kernel_activity_table(),
        "feasibility" => sweep::feasibility_acceptance_sweep(),
        "validation" => sweep::validation_miss_rates(),
        "clocksync" => services::clocksync_precision(),
        "broadcast" => services::broadcast_latency(),
        "replication" => services::replication_comparison(),
        "srp_pcp" => policies::srp_vs_pcp(),
        "rm_vs_edf" => policies::rm_vs_edf_schedulability(),
        "spring" => policies::spring_success_ratio(),
        "monitoring" => figures::monitoring_coverage(),
        "ablation" => extensions::cost_ablation(),
        "overload" => extensions::spring_overload(),
        "modes" => extensions::mode_change_table(),
        "latency" => extensions::latency_distribution(),
        "cluster" => cluster::cluster_failover(),
        "cluster_scaling" => cluster::cluster_scaling(),
        "cluster_recovery" => cluster::cluster_recovery(),
        "cluster_groups" => cluster::cluster_groups(),
        "perf_snapshot" => perf::perf_snapshot(),
        _ => return None,
    })
}

/// All experiment names, in presentation order.
pub const ALL_EXPERIMENTS: &[&str] = &[
    "fig1",
    "fig2",
    "fig3",
    "costs",
    "kernel",
    "feasibility",
    "validation",
    "clocksync",
    "broadcast",
    "replication",
    "srp_pcp",
    "rm_vs_edf",
    "spring",
    "monitoring",
    "ablation",
    "overload",
    "modes",
    "latency",
    "cluster",
    "cluster_scaling",
    "cluster_recovery",
    "cluster_groups",
    "perf_snapshot",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_experiment_runs_and_produces_output() {
        for name in ALL_EXPERIMENTS {
            let out = run_experiment(name).unwrap_or_else(|| panic!("{name} missing"));
            assert!(out.len() > 40, "{name} produced almost no output");
        }
    }

    #[test]
    fn unknown_experiment_is_none() {
        assert!(run_experiment("nope").is_none());
    }
}
