//! E11–E13: policy experiments — SRP vs PCP blocking, RM vs EDF
//! schedulability, Spring planning success ratios.

use hades_dispatch::{resources, DispatchSim, ResourceProtocol, SimConfig};
use hades_sched::analysis::rta::{rta_feasible, RtaTask};
use hades_sched::spring::{SpringHeuristic, SpringPlanner, SpringRequest};
use hades_sched::{edf_feasible, EdfAnalysisConfig};
use hades_sim::SimRng;
use hades_task::prelude::*;
use hades_task::spuri::SpuriTask;
use hades_time::Time;
use std::fmt::Write;

fn us(n: u64) -> Duration {
    Duration::from_micros(n)
}

/// E11: the canonical priority-inversion scenario under plain locking,
/// PCP and SRP.
///
/// Low-priority τL locks the resource, a medium-priority hog τM preempts
/// it, and high-priority τH then needs the resource. Plain locking lets τM
/// starve τL (unbounded inversion stretching τH); PCP bounds τH's blocking
/// through inheritance; SRP prevents the inversion at dispatch time.
pub fn srp_vs_pcp() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "E11 / [CL90],[Bak91] — priority inversion avoidance");
    let _ = writeln!(out, "===================================================");
    let _ = writeln!(
        out,
        "{:<9} {:>14} {:>14} {:>14}",
        "protocol", "resp(high)", "resp(med)", "resp(low)"
    );
    let r0 = ResourceId(0);
    let build_tasks = || {
        let low = Task::new(
            TaskId(0),
            Heug::single(
                CodeEu::new("low", us(300), ProcessorId(0))
                    .with_resource(ResourceUse::exclusive(r0))
                    .with_priority(Priority::new(1)),
            )
            .expect("valid"),
            ArrivalLaw::Aperiodic,
            us(10_000),
        );
        let med = Task::new(
            TaskId(1),
            Heug::single(
                CodeEu::new("med", us(600), ProcessorId(0)).with_priority(Priority::new(5)),
            )
            .expect("valid"),
            ArrivalLaw::Aperiodic,
            us(10_000),
        );
        let high = Task::new(
            TaskId(2),
            Heug::single(
                CodeEu::new("high", us(100), ProcessorId(0))
                    .with_resource(ResourceUse::exclusive(r0))
                    .with_priority(Priority::new(9)),
            )
            .expect("valid"),
            ArrivalLaw::Aperiodic,
            us(10_000),
        );
        TaskSet::new(vec![low, med, high]).expect("valid")
    };
    type ProtocolFactory = Box<dyn Fn(&TaskSet) -> ResourceProtocol>;
    let protocols: Vec<(&str, ProtocolFactory)> = vec![
        ("none", Box::new(|_| ResourceProtocol::None)),
        (
            "PCP",
            Box::new(|s: &TaskSet| ResourceProtocol::Pcp {
                ceilings: resources::pcp_ceilings(s),
            }),
        ),
        (
            "SRP",
            Box::new(|s: &TaskSet| {
                let (levels, ceilings) = resources::srp_parameters(s);
                ResourceProtocol::Srp { levels, ceilings }
            }),
        ),
    ];
    for (name, proto) in protocols {
        let set = build_tasks();
        let mut cfg = SimConfig::ideal(us(20_000));
        cfg.auto_activate = false;
        cfg.protocol = proto(&set);
        let mut sim = DispatchSim::new(set, cfg);
        sim.activate_at(TaskId(0), Time::ZERO); // low grabs the lock
        sim.activate_at(TaskId(1), Time::ZERO + us(50)); // hog preempts
        sim.activate_at(TaskId(2), Time::ZERO + us(100)); // high needs lock
        let report = sim.run();
        let rt = report.worst_response_times();
        let _ = writeln!(
            out,
            "{:<9} {:>14} {:>14} {:>14}",
            name,
            rt[&TaskId(2)].to_string(),
            rt[&TaskId(1)].to_string(),
            rt[&TaskId(0)].to_string()
        );
    }
    let _ = writeln!(
        out,
        "\nexpected shape: 'none' stretches the high task past the hog's\n\
         whole execution; PCP and SRP bound its blocking by one critical\n\
         section (PCP via inheritance, SRP by gating at dispatch)."
    );
    out
}

/// E12: RM vs EDF schedulability curves (why HADES ships both policies).
pub fn rm_vs_edf_schedulability() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "E12 / [LL73] — RM vs EDF schedulability");
    let _ = writeln!(out, "=======================================");
    let _ = writeln!(
        out,
        "{:>6} {:>8} {:>10} {:>10}",
        "U", "trials", "RM (RTA)", "EDF"
    );
    let trials = 300u64;
    for util in (50u64..=100).step_by(5) {
        let mut rm_ok = 0;
        let mut edf_ok = 0;
        for t in 0..trials {
            let mut rng = SimRng::seed_from(util * 31_337 + t);
            let n = rng.range_inclusive(3, 6) as usize;
            // UUniFast-ish split of the utilisation budget.
            let mut remaining = util as f64 / 100.0;
            let mut utils = Vec::with_capacity(n);
            for i in 0..n {
                let share = if i == n - 1 {
                    remaining
                } else {
                    let frac = rng.next_f64().powf(1.0 / (n - i - 1) as f64);
                    let u = remaining * (1.0 - frac);
                    remaining -= u;
                    u
                };
                utils.push(share);
            }
            let mut rta_tasks: Vec<RtaTask> = Vec::new();
            let mut spuri_tasks: Vec<SpuriTask> = Vec::new();
            for (i, u) in utils.iter().enumerate() {
                let period = us(rng.range_inclusive(1_000, 50_000));
                let c = Duration::from_nanos(((period.as_nanos() as f64) * u).max(1000.0) as u64);
                rta_tasks.push(RtaTask {
                    c,
                    period,
                    deadline: period,
                    blocking: Duration::ZERO,
                });
                spuri_tasks.push(SpuriTask::independent(
                    TaskId(i as u32),
                    format!("t{i}"),
                    c,
                    period,
                    period,
                ));
            }
            // RM: sort by period (highest priority first) and run RTA.
            rta_tasks.sort_by_key(|t| t.period);
            if rta_feasible(
                &rta_tasks,
                &hades_dispatch::CostModel::zero(),
                &hades_sim::KernelModel::none(),
            )
            .feasible
            {
                rm_ok += 1;
            }
            if edf_feasible(&spuri_tasks, &EdfAnalysisConfig::naive()).feasible {
                edf_ok += 1;
            }
        }
        let _ = writeln!(
            out,
            "{:>5}% {:>8} {:>9.1}% {:>9.1}%",
            util,
            trials,
            100.0 * rm_ok as f64 / trials as f64,
            100.0 * edf_ok as f64 / trials as f64
        );
    }
    let _ = writeln!(
        out,
        "\nexpected shape: EDF accepts essentially everything below U = 100%;\n\
         RM acceptance degrades beyond the Liu-Layland region (~69-88%)."
    );
    out
}

/// E13: Spring planning success ratio vs load, per heuristic.
pub fn spring_success_ratio() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "E13 / [RSS90] — Spring planning success ratio vs load");
    let _ = writeln!(out, "=====================================================");
    let heuristics = [
        ("FCFS", SpringHeuristic::Fcfs),
        ("minD", SpringHeuristic::MinDeadline),
        ("minL", SpringHeuristic::MinLaxity),
        ("D+2E", SpringHeuristic::Weighted(2)),
    ];
    let _ = write!(out, "{:>6} {:>7}", "load", "trials");
    for (name, _) in &heuristics {
        let _ = write!(out, " {name:>7}");
    }
    let _ = writeln!(out);
    let trials = 200u64;
    for load in (40u64..=120).step_by(20) {
        let mut ok = [0u32; 4];
        for t in 0..trials {
            let mut rng = SimRng::seed_from(load * 7_919 + t);
            let n = rng.range_inclusive(4, 10);
            let window = 10_000u64; // µs
            let requests: Vec<SpringRequest> = (0..n)
                .map(|i| {
                    let arrival = rng.range_inclusive(0, window / 2);
                    let wcet = (window * load / 100 / n).max(10);
                    let slack = rng.range_inclusive(wcet / 2, window - arrival - 1);
                    SpringRequest {
                        id: i as u32,
                        arrival: Time::ZERO + us(arrival),
                        wcet: us(wcet),
                        deadline: Time::ZERO + us((arrival + wcet + slack).min(window)),
                    }
                })
                .collect();
            for (k, (_, h)) in heuristics.iter().enumerate() {
                if SpringPlanner::new(*h).plan(&requests).is_some() {
                    ok[k] += 1;
                }
            }
        }
        let _ = write!(out, "{:>5}% {:>7}", load, trials);
        for hits in ok.iter().take(heuristics.len()) {
            let _ = write!(out, " {:>6.1}%", 100.0 * *hits as f64 / trials as f64);
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(
        out,
        "\nexpected shape: deadline/laxity-driven heuristics dominate FCFS;\n\
         success falls as offered load approaches and passes 100%."
    );
    out
}
