//! E8–E10: service experiments — clock sync precision, broadcast latency,
//! replication style comparison.

use hades_services::{BroadcastSim, ClockSyncConfig, ClockSyncRun, ReplicaStyle, ReplicationSim};
use hades_sim::{FaultPlan, LinkConfig, Network, NodeId, SimRng};
use hades_time::{Duration, Time};
use std::fmt::Write;

fn us(n: u64) -> Duration {
    Duration::from_micros(n)
}

fn ms(n: u64) -> Duration {
    Duration::from_millis(n)
}

/// E8: clock-sync precision vs drift, with and without a Byzantine clock.
pub fn clocksync_precision() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "E8 / [LL88] — clock synchronization precision");
    let _ = writeln!(out, "=============================================");
    let _ = writeln!(
        out,
        "{:>10} {:>12} {:>12} {:>12} {:>12} {:>6}",
        "drift", "initial", "final", "final(byz)", "bound", "ok"
    );
    for drift_ppm in [10u64, 50, 100, 500] {
        let base = ClockSyncConfig {
            drift_ppb: (drift_ppm * 1000) as i64,
            rounds: 24,
            ..ClockSyncConfig::default_quad()
        };
        let clean = ClockSyncRun::new(base.clone()).execute();
        let byz = ClockSyncRun::new(ClockSyncConfig {
            byzantine: vec![3],
            ..base
        })
        .execute();
        let ok = clean.converged() && byz.converged();
        let _ = writeln!(
            out,
            "{:>7}ppm {:>12} {:>12} {:>12} {:>12} {:>6}",
            drift_ppm,
            clean.initial_skew.to_string(),
            clean.final_skew().to_string(),
            byz.final_skew().to_string(),
            clean.analytic_bound.to_string(),
            if ok { "yes" } else { "NO" }
        );
    }
    let _ = writeln!(
        out,
        "\nexpected shape: final skew stays within the analytic bound\n\
         γ = 4ε + 4ρP even with f = 1 Byzantine clock among n = 4."
    );
    out
}

/// E9: reliable-broadcast latency and success vs omission rate.
pub fn broadcast_latency() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "E9 — time-bounded reliable broadcast (diffusion)");
    let _ = writeln!(out, "================================================");
    let _ = writeln!(
        out,
        "{:>9} {:>9} {:>10} {:>12} {:>12} {:>10}",
        "loss", "attempts", "complete", "worst lat", "bound", "messages"
    );
    for (loss, attempts) in [(0u32, 1u32), (100, 3), (200, 4), (400, 6)] {
        let mut complete = 0u32;
        let mut worst = Duration::ZERO;
        let mut msgs = 0u64;
        let runs = 50u64;
        let mut bound = Duration::ZERO;
        for seed in 0..runs {
            let link = LinkConfig::reliable(us(5), us(20)).with_omissions(loss);
            let net = Network::homogeneous(5, link, SimRng::seed_from(seed));
            let outc = BroadcastSim::new(net, 1)
                .with_attempts(attempts)
                .broadcast(NodeId(0), Time::ZERO);
            bound = outc.bound;
            msgs += outc.messages;
            if let Some(lat) = outc.max_latency(Time::ZERO) {
                complete += 1;
                worst = worst.max(lat);
            }
        }
        let _ = writeln!(
            out,
            "{:>8}% {:>9} {:>9}% {:>12} {:>12} {:>10.1}",
            loss / 10,
            attempts,
            complete * 100 / runs as u32,
            worst.to_string(),
            bound.to_string(),
            msgs as f64 / runs as f64
        );
    }
    let _ = writeln!(
        out,
        "\nexpected shape: with a retry budget matched to the loss rate the\n\
         broadcast completes everywhere within its (f+1)-hop bound; message\n\
         cost grows with the retry budget."
    );
    out
}

/// E10: failover latency and overhead across replication styles.
pub fn replication_comparison() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "E10 / [Pol96] — replication style comparison");
    let _ = writeln!(out, "============================================");
    let _ = writeln!(
        out,
        "{:<12} {:>8} {:>9} {:>12} {:>8} {:>10}",
        "style", "served", "delayed", "failover", "work", "messages"
    );
    let styles = [
        ReplicaStyle::Active,
        ReplicaStyle::SemiActive,
        ReplicaStyle::Passive {
            checkpoint_every: 4,
        },
    ];
    for style in styles {
        let plan = FaultPlan::new().crash_at(NodeId(0), Time::ZERO + ms(10));
        let net =
            Network::homogeneous(3, LinkConfig::reliable(us(5), us(20)), SimRng::seed_from(1))
                .with_fault_plan(plan);
        let outc = ReplicationSim::new(style, 30, ms(1)).execute(net);
        let _ = writeln!(
            out,
            "{:<12} {:>8} {:>9} {:>12} {:>8} {:>10}",
            outc.style_name,
            outc.served,
            outc.delayed_by_failover,
            outc.failover_latency.to_string(),
            outc.execution_work,
            outc.messages
        );
    }
    let _ = writeln!(
        out,
        "\nexpected shape: active masks the crash (zero failover) at ~n× work;\n\
         semi-active pays one detection latency; passive pays detection +\n\
         replay with the lowest healthy-path overhead."
    );
    out
}
