//! E1–E3 and E14: the paper's figures and the monitoring-coverage table.

use hades_dispatch::{CostModel, MissPolicy, SimConfig};
use hades_sched::EdfPolicy;
use hades_sim::{KernelModel, LinkConfig, NodeId, TraceKind};
use hades_task::prelude::*;
use hades_task::spuri::SpuriTask;
use std::fmt::Write;

fn us(n: u64) -> Duration {
    Duration::from_micros(n)
}

fn ms(n: u64) -> Duration {
    Duration::from_millis(n)
}

fn periodic(id: u32, name: &str, node: u32, wcet: Duration, period: Duration) -> Task {
    Task::new(
        TaskId(id),
        Heug::single(CodeEu::new(name, wcet, ProcessorId(node))).expect("valid"),
        ArrivalLaw::Periodic(period),
        period,
    )
}

/// E1 (Figure 1): two applications under two policies over one dispatcher.
pub fn fig1_architecture() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "E1 / Figure 1 — multi-policy architecture");
    let _ = writeln!(out, "=========================================");
    let mut rm_tasks = vec![
        periodic(0, "rm_fast", 0, us(200), ms(1)),
        periodic(1, "rm_slow", 0, us(500), ms(5)),
    ];
    hades_sched::assign_rm(&mut rm_tasks);
    let mut tasks = rm_tasks;
    tasks.push(periodic(10, "edf_fast", 1, us(300), ms(2)));
    tasks.push(periodic(11, "edf_slow", 1, us(800), ms(10)));
    let set = TaskSet::new(tasks).expect("valid set");
    let mut cfg = SimConfig::realistic(ms(50));
    cfg.trace = false;
    let mut sim = hades_dispatch::DispatchSim::new(set, cfg);
    // EDF scheduler task only on node 1; node 0 runs on static priorities.
    sim.set_policy(1, Box::new(EdfPolicy::new()));
    let report = sim.run();
    let _ = writeln!(out, "nodes               : 2 (RM on n0, EDF on n1)");
    let _ = writeln!(out, "instances activated : {}", report.instances.len());
    let _ = writeln!(out, "deadline misses     : {}", report.misses());
    let _ = writeln!(out, "notifications (n1)  : {}", report.notifications);
    let _ = writeln!(out, "scheduler CPU (n1)  : {}", report.scheduler_cpu);
    let _ = writeln!(out, "kernel CPU          : {}", report.kernel_cpu);
    let mut worst: Vec<_> = report.worst_response_times().into_iter().collect();
    worst.sort();
    for (t, r) in worst {
        let _ = writeln!(out, "worst response {t:>4}: {r}");
    }
    out
}

/// E2 (Figure 2): the EDF cooperation timeline — notifications, priority
/// swap, preemption, resumption.
pub fn fig2_edf_cooperation() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "E2 / Figure 2 — scheduler/dispatcher cooperation (EDF)"
    );
    let _ = writeln!(
        out,
        "======================================================"
    );
    let t1 = Task::new(
        TaskId(1),
        Heug::single(CodeEu::new("t1", us(400), ProcessorId(0))).expect("valid"),
        ArrivalLaw::Aperiodic,
        us(2_000),
    );
    let t2 = Task::new(
        TaskId(2),
        Heug::single(CodeEu::new("t2", us(100), ProcessorId(0))).expect("valid"),
        ArrivalLaw::Aperiodic,
        us(300),
    );
    let set = TaskSet::new(vec![t1, t2]).expect("valid");
    let mut cfg = SimConfig::ideal(us(2_000));
    cfg.costs = CostModel {
        sched_notif: us(10),
        ..CostModel::zero()
    };
    cfg.auto_activate = false;
    let mut sim = hades_dispatch::DispatchSim::new(set, cfg);
    sim.set_policy(0, Box::new(EdfPolicy::new()));
    sim.activate_at(TaskId(1), Time::ZERO);
    sim.activate_at(TaskId(2), Time::ZERO + us(100));
    let report = sim.run();
    let _ = writeln!(out, "\nevent log:");
    let _ = write!(out, "{}", report.trace.render_log());
    let _ = writeln!(out, "\nCPU occupancy (1 char = 10 µs):");
    let _ = write!(out, "{}", report.trace.render_gantt(NodeId(0), us(10)));
    let atv = report
        .trace
        .events()
        .iter()
        .any(|e| matches!(e.kind, TraceKind::Notify) && e.detail.contains("Atv"));
    let swap = report
        .trace
        .events()
        .iter()
        .any(|e| matches!(e.kind, TraceKind::AttrChange));
    let _ = writeln!(
        out,
        "\nAtv notification observed: {atv}; priority change via dispatcher primitive: {swap}"
    );
    out
}

/// E3 (Figure 3): the Spuri-model → HEUG translation.
pub fn fig3_spuri_translation() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "E3 / Figure 3 — Spuri task model to HEUG translation");
    let _ = writeln!(out, "====================================================");
    let task = SpuriTask::with_section(
        TaskId(1),
        "tau_i",
        us(10),
        us(5),
        us(20),
        ResourceId(0),
        us(100),
        us(200),
    );
    let blocking = us(7);
    let heug = task.to_heug(blocking).expect("valid translation");
    let _ = writeln!(
        out,
        "input : c_before={} cs={} c_after={} D={} p={} B'={}",
        task.c_before, task.cs, task.c_after, task.deadline, task.pseudo_period, blocking
    );
    let _ = writeln!(out, "output HEUG '{}':", heug.name());
    for (i, eu) in heug.eus().iter().enumerate() {
        let code = eu.as_code().expect("all code units");
        let res = code
            .resources
            .first()
            .map(|r| format!(" holds {} exclusively", r.id))
            .unwrap_or_default();
        let latest = code
            .timing
            .latest
            .map(|l| format!(" latest={l}"))
            .unwrap_or_default();
        let dl = code
            .timing
            .deadline
            .map(|d| format!(" D={d}"))
            .unwrap_or_default();
        let _ = writeln!(
            out,
            "  eu{i}: {} w={}{res}{latest}{dl}",
            code.name, code.wcet
        );
    }
    let _ = writeln!(
        out,
        "edges: {:?}",
        heug.edges()
            .iter()
            .map(|e| format!("{}->{}", e.from, e.to))
            .collect::<Vec<_>>()
    );
    out
}

/// E14: one scenario per monitored event class; the table shows each class
/// detected exactly where expected.
pub fn monitoring_coverage() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "E14 — monitoring coverage (Section 3.2.1)");
    let _ = writeln!(out, "=========================================");
    let _ = writeln!(out, "{:<28} {:>9}", "event class", "detected");

    let run_single = |wcet: Duration, deadline: Duration, cfg_mut: &dyn Fn(&mut SimConfig)| {
        let t = Task::new(
            TaskId(0),
            Heug::single(CodeEu::new("probe", wcet, ProcessorId(0))).expect("valid"),
            ArrivalLaw::Aperiodic,
            deadline,
        );
        let set = TaskSet::new(vec![t]).expect("valid");
        let mut cfg = SimConfig::ideal(ms(3));
        cfg.auto_activate = false;
        cfg_mut(&mut cfg);
        let mut sim = hades_dispatch::DispatchSim::new(set, cfg);
        sim.activate_at(TaskId(0), Time::ZERO);
        sim.run()
    };

    let miss = run_single(us(900), us(500), &|_| {});
    let _ = writeln!(
        out,
        "{:<28} {:>9}",
        "deadline miss",
        miss.monitor.deadline_misses()
    );

    let early = run_single(us(100), us(500), &|c| {
        c.exec = hades_dispatch::ExecTimeModel::FractionPermille(500)
    });
    let _ = writeln!(
        out,
        "{:<28} {:>9}",
        "early termination",
        early.monitor.early_terminations()
    );

    let orphan = run_single(us(900), us(500), &|c| {
        c.miss_policy = MissPolicy::AbortInstance
    });
    let _ = writeln!(
        out,
        "{:<28} {:>9}",
        "orphan (abort reap)",
        orphan.monitor.orphans()
    );

    // Arrival-law violation.
    let t = Task::new(
        TaskId(0),
        Heug::single(CodeEu::new("s", us(10), ProcessorId(0))).expect("valid"),
        ArrivalLaw::Sporadic(us(1_000)),
        us(1_000),
    );
    let set = TaskSet::new(vec![t]).expect("valid");
    let mut cfg = SimConfig::ideal(ms(3));
    cfg.auto_activate = false;
    let mut sim = hades_dispatch::DispatchSim::new(set, cfg);
    sim.activate_at(TaskId(0), Time::ZERO);
    sim.activate_at(TaskId(0), Time::ZERO + us(100));
    let arrival = sim.run();
    let _ = writeln!(
        out,
        "{:<28} {:>9}",
        "arrival-law violation",
        arrival.monitor.arrival_violations()
    );

    // Network omission via remote precedence.
    let mut b = HeugBuilder::new("dist");
    let a = b.code_eu(CodeEu::new("send", us(10), ProcessorId(0)));
    let c2 = b.code_eu(CodeEu::new("recv", us(10), ProcessorId(1)));
    b.precede(a, c2);
    let t = Task::new(
        TaskId(0),
        b.build().expect("valid"),
        ArrivalLaw::Aperiodic,
        ms(2),
    );
    let set = TaskSet::new(vec![t]).expect("valid");
    let mut cfg = SimConfig::ideal(ms(3));
    cfg.auto_activate = false;
    cfg.link = LinkConfig::reliable(us(10), us(20)).with_omissions(1000);
    cfg.kernel = KernelModel::none();
    let mut sim = hades_dispatch::DispatchSim::new(set, cfg);
    sim.activate_at(TaskId(0), Time::ZERO);
    let omission = sim.run();
    let _ = writeln!(
        out,
        "{:<28} {:>9}",
        "network omission",
        omission.monitor.network_omissions()
    );

    // Stall (deadlock) via a never-set condition variable.
    let t = Task::new(
        TaskId(0),
        Heug::single(CodeEu::new("stuck", us(10), ProcessorId(0)).waiting_on(CondVarId(9)))
            .expect("valid"),
        ArrivalLaw::Aperiodic,
        us(500),
    );
    let set = TaskSet::new(vec![t]).expect("valid");
    let mut cfg = SimConfig::ideal(ms(3));
    cfg.auto_activate = false;
    let mut sim = hades_dispatch::DispatchSim::new(set, cfg);
    sim.activate_at(TaskId(0), Time::ZERO);
    let stall = sim.run();
    let _ = writeln!(
        out,
        "{:<28} {:>9}",
        "deadlock/stall",
        stall.monitor.stalls()
    );
    out
}
