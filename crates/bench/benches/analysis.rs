//! E6 (host side): cost of the feasibility analyses themselves.
//!
//! The paper argues online admission needs cheap tests; these benchmarks
//! measure the EDF processor-demand test (naive vs cost-integrated),
//! response-time analysis and Spring planning on growing task sets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hades_dispatch::CostModel;
use hades_sched::analysis::rta::{rta_feasible, RtaTask};
use hades_sched::spring::{SpringHeuristic, SpringPlanner, SpringRequest};
use hades_sched::{edf_feasible, EdfAnalysisConfig};
use hades_sim::{KernelModel, SimRng};
use hades_task::spuri::SpuriTask;
use hades_task::TaskId;
use hades_time::{Duration, Time};
use std::hint::black_box;

fn us(n: u64) -> Duration {
    Duration::from_micros(n)
}

fn spuri_set(n: u32, seed: u64) -> Vec<SpuriTask> {
    let mut rng = SimRng::seed_from(seed);
    (0..n)
        .map(|i| {
            let p = rng.range_inclusive(2_000, 30_000);
            let c = rng.range_inclusive(50, p / (2 * n as u64).max(4));
            let d = rng.range_inclusive(c * 2, p);
            SpuriTask::independent(TaskId(i), format!("t{i}"), us(c), us(d), us(p))
        })
        .collect()
}

fn bench_edf_demand(c: &mut Criterion) {
    let mut g = c.benchmark_group("edf_demand");
    for n in [4u32, 8, 16] {
        let tasks = spuri_set(n, 42);
        g.bench_with_input(BenchmarkId::new("naive", n), &tasks, |b, tasks| {
            let cfg = EdfAnalysisConfig::naive();
            b.iter(|| black_box(edf_feasible(tasks, &cfg)));
        });
        g.bench_with_input(
            BenchmarkId::new("cost_integrated", n),
            &tasks,
            |b, tasks| {
                let cfg = EdfAnalysisConfig::with_platform(
                    CostModel::measured_default(),
                    KernelModel::chorus_like(),
                );
                b.iter(|| black_box(edf_feasible(tasks, &cfg)));
            },
        );
    }
    g.finish();
}

fn bench_rta(c: &mut Criterion) {
    let mut g = c.benchmark_group("rta");
    for n in [4usize, 16, 64] {
        let tasks: Vec<RtaTask> = (0..n)
            .map(|i| RtaTask {
                c: us(50),
                period: us(2_000 + 100 * i as u64),
                deadline: us(2_000 + 100 * i as u64),
                blocking: Duration::ZERO,
            })
            .collect();
        g.bench_with_input(BenchmarkId::new("fixed_priority", n), &tasks, |b, tasks| {
            b.iter(|| {
                black_box(rta_feasible(
                    tasks,
                    &CostModel::measured_default(),
                    &KernelModel::chorus_like(),
                ))
            });
        });
    }
    g.finish();
}

fn bench_spring(c: &mut Criterion) {
    let mut g = c.benchmark_group("spring_planner");
    for n in [8u32, 32, 128] {
        let mut rng = SimRng::seed_from(7);
        let requests: Vec<SpringRequest> = (0..n)
            .map(|i| {
                let arrival = rng.range_inclusive(0, 5_000);
                let wcet = rng.range_inclusive(10, 100);
                SpringRequest {
                    id: i,
                    arrival: Time::ZERO + us(arrival),
                    wcet: us(wcet),
                    deadline: Time::ZERO + us(arrival + wcet * 20 + 5_000),
                }
            })
            .collect();
        g.bench_with_input(BenchmarkId::new("min_deadline", n), &requests, |b, reqs| {
            let planner = SpringPlanner::new(SpringHeuristic::MinDeadline);
            b.iter(|| black_box(planner.plan(reqs)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_edf_demand, bench_rta, bench_spring);
criterion_main!(benches);
