//! E4 (host side): worst-case-scenario microbenchmarks of the dispatcher
//! primitives, mirroring the paper's methodology for determining the
//! Section 4.1 constants on a concrete platform.
//!
//! `C_loc_prec`-class work ≈ run-queue surgery + precedence bookkeeping;
//! `C_act_start/end`-class work ≈ thread dispatch bookkeeping; the full
//! `DispatchSim` benchmarks measure end-to-end virtual-time execution
//! throughput of the middleware.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hades_dispatch::{DispatchSim, RunQueue, SimConfig, ThreadId};
use hades_task::prelude::*;
use std::hint::black_box;

fn us(n: u64) -> Duration {
    Duration::from_micros(n)
}

fn bench_run_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("run_queue");
    for n in [8u64, 64, 512] {
        g.bench_with_input(BenchmarkId::new("insert_remove", n), &n, |b, &n| {
            b.iter(|| {
                let mut q = RunQueue::new();
                for i in 0..n {
                    q.insert(ThreadId(i), Priority::new((i % 13) as u32), Time::ZERO);
                }
                for i in 0..n {
                    black_box(q.remove(ThreadId(i)));
                }
            });
        });
        g.bench_with_input(BenchmarkId::new("peek_best", n), &n, |b, &n| {
            let mut q = RunQueue::new();
            for i in 0..n {
                q.insert(ThreadId(i), Priority::new((i % 13) as u32), Time::ZERO);
            }
            b.iter(|| black_box(q.peek_best()));
        });
        g.bench_with_input(BenchmarkId::new("preempter", n), &n, |b, &n| {
            let mut q = RunQueue::new();
            for i in 0..n {
                q.insert(ThreadId(i), Priority::new((i % 13) as u32), Time::ZERO);
            }
            b.iter(|| black_box(q.preempter(Priority::new(6))));
        });
    }
    g.finish();
}

fn bench_heug(c: &mut Criterion) {
    let mut g = c.benchmark_group("heug");
    for n in [4u32, 32, 128] {
        g.bench_with_input(BenchmarkId::new("build_chain", n), &n, |b, &n| {
            b.iter(|| {
                let mut bld = HeugBuilder::new("bench");
                let mut prev = None;
                for i in 0..n {
                    let eu = bld.code_eu(CodeEu::new(format!("eu{i}"), us(10), ProcessorId(0)));
                    if let Some(p) = prev {
                        bld.precede(p, eu);
                    }
                    prev = Some(eu);
                }
                black_box(bld.build().expect("chain is a DAG"))
            });
        });
    }
    let mut bld = HeugBuilder::new("cp");
    let mut prev = None;
    for i in 0..128 {
        let eu = bld.code_eu(CodeEu::new(format!("eu{i}"), us(10), ProcessorId(0)));
        if let Some(p) = prev {
            bld.precede(p, eu);
        }
        prev = Some(eu);
    }
    let heug = bld.build().expect("valid");
    g.bench_function("critical_path_128", |b| {
        b.iter(|| black_box(heug.critical_path()))
    });
    g.finish();
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    for n in [1_000u64, 10_000] {
        g.bench_with_input(BenchmarkId::new("post_drain", n), &n, |b, &n| {
            b.iter(|| {
                struct Nop;
                impl hades_sim::Simulation for Nop {
                    type Event = u64;
                    fn handle(&mut self, _now: Time, ev: u64, _s: &mut hades_sim::Scheduler<u64>) {
                        black_box(ev);
                    }
                }
                let mut e = hades_sim::Engine::new();
                for i in 0..n {
                    e.post(Time::from_nanos(i), i);
                }
                e.run_to_completion(&mut Nop)
            });
        });
    }
    g.finish();
}

fn bench_dispatch_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("dispatch_sim");
    g.sample_size(20);
    // Full middleware execution: 5 periodic tasks with overheads and
    // kernel interrupts over 50 ms of virtual time.
    g.bench_function("5tasks_50ms_realistic", |b| {
        b.iter(|| {
            let tasks: Vec<Task> = (0..5)
                .map(|i| {
                    Task::new(
                        TaskId(i),
                        Heug::single(CodeEu::new(
                            format!("t{i}"),
                            us(100 + 40 * i as u64),
                            ProcessorId(0),
                        ))
                        .expect("valid"),
                        ArrivalLaw::Periodic(us(1_000 + 500 * i as u64)),
                        us(1_000 + 500 * i as u64),
                    )
                })
                .collect();
            let mut tasks = tasks;
            hades_sched::assign_rm(&mut tasks);
            let set = TaskSet::new(tasks).expect("valid");
            let mut cfg = SimConfig::realistic(Duration::from_millis(50));
            cfg.trace = false;
            let mut sim = DispatchSim::new(set, cfg);
            black_box(sim.run())
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_run_queue,
    bench_heug,
    bench_engine,
    bench_dispatch_sim
);
criterion_main!(benches);
