//! Host-side throughput of the integrated cluster runtime: wall-clock
//! cost of a full crash→detect→view-change→failover run as the cluster
//! grows, of a crash→restart→rejoin run (state transfer included), of a
//! healthy run for the steady-state baseline, and of the
//! replication-group workload under either view-change transport (the
//! Δ-multicast discipline pushes ~(f+1)× fewer proposal messages than
//! the flood, which also shows up as host-side work).

use bench::cluster::{failover_scenario, groups_scenario, recovery_scenario};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hades_cluster::{ClusterSpec, ServiceSpec};
use hades_time::Duration;
use std::hint::black_box;

fn us(n: u64) -> Duration {
    Duration::from_micros(n)
}

fn ms(n: u64) -> Duration {
    Duration::from_millis(n)
}

fn bench_failover_run(c: &mut Criterion) {
    let mut g = c.benchmark_group("cluster_failover_run");
    g.sample_size(10);
    for nodes in [3u32, 8, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, &nodes| {
            b.iter(|| {
                black_box(
                    failover_scenario(nodes, 1, ms(40))
                        .run()
                        .expect("valid spec"),
                )
            });
        });
    }
    g.finish();
}

fn bench_healthy_run(c: &mut Criterion) {
    let mut g = c.benchmark_group("cluster_healthy_run");
    g.sample_size(10);
    for nodes in [4u32, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, &nodes| {
            b.iter(|| {
                let mut spec = ClusterSpec::new(nodes).horizon(ms(40)).seed(2);
                for node in 0..nodes {
                    spec = spec.service(ServiceSpec::periodic("app", node, us(100), ms(2)));
                }
                black_box(spec.run().expect("valid spec"))
            });
        });
    }
    g.finish();
}

fn bench_recovery_run(c: &mut Criterion) {
    let mut g = c.benchmark_group("cluster_recovery_run");
    g.sample_size(10);
    for nodes in [4u32, 8, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, &nodes| {
            b.iter(|| {
                let report = recovery_scenario(nodes, 3, ms(60), ms(20))
                    .run()
                    .expect("valid spec")
                    .into_report();
                assert_eq!(report.recoveries.len(), 1);
                black_box(report)
            });
        });
    }
    g.finish();
}

fn bench_group_run(c: &mut Criterion) {
    let mut g = c.benchmark_group("cluster_groups_run");
    g.sample_size(10);
    for (label, multicast) in [("delta-multicast", true), ("flood", false)] {
        g.bench_with_input(
            BenchmarkId::from_parameter(label),
            &multicast,
            |b, &multicast| {
                b.iter(|| {
                    let report = groups_scenario(5, ms(60), multicast)
                        .run()
                        .expect("valid spec")
                        .into_report();
                    assert!(report.views_agree);
                    black_box(report)
                });
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_failover_run,
    bench_healthy_run,
    bench_recovery_run,
    bench_group_run
);
criterion_main!(benches);
