//! Host-side throughput of the integrated cluster runtime: wall-clock
//! cost of a full crash→detect→view-change→failover run as the cluster
//! grows, of a crash→restart→rejoin run (state transfer included), and
//! of a healthy run for the steady-state baseline.

use bench::cluster::{failover_scenario, recovery_scenario};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hades_cluster::HadesCluster;
use hades_time::Duration;
use std::hint::black_box;

fn us(n: u64) -> Duration {
    Duration::from_micros(n)
}

fn ms(n: u64) -> Duration {
    Duration::from_millis(n)
}

fn bench_failover_run(c: &mut Criterion) {
    let mut g = c.benchmark_group("cluster_failover_run");
    g.sample_size(10);
    for nodes in [3u32, 8, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, &nodes| {
            b.iter(|| {
                black_box(
                    failover_scenario(nodes, 1, ms(40))
                        .run()
                        .expect("valid cluster"),
                )
            });
        });
    }
    g.finish();
}

fn bench_healthy_run(c: &mut Criterion) {
    let mut g = c.benchmark_group("cluster_healthy_run");
    g.sample_size(10);
    for nodes in [4u32, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, &nodes| {
            b.iter(|| {
                let mut cluster = HadesCluster::new(nodes).horizon(ms(40)).seed(2);
                for node in 0..nodes {
                    cluster = cluster.periodic_app(node, "app", us(100), ms(2));
                }
                black_box(cluster.run().expect("valid cluster"))
            });
        });
    }
    g.finish();
}

fn bench_recovery_run(c: &mut Criterion) {
    let mut g = c.benchmark_group("cluster_recovery_run");
    g.sample_size(10);
    for nodes in [4u32, 8, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, &nodes| {
            b.iter(|| {
                let report = recovery_scenario(nodes, 3, ms(60), ms(20))
                    .run()
                    .expect("valid cluster");
                assert_eq!(report.recoveries.len(), 1);
                black_box(report)
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_failover_run,
    bench_healthy_run,
    bench_recovery_run
);
criterion_main!(benches);
