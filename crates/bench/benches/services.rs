//! E8–E10 (host side): throughput of the service protocols — clock-sync
//! rounds, diffusion broadcast, flooding consensus and the fault-tolerant
//! midpoint primitive.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hades_services::{
    BroadcastSim, ClockSyncConfig, ClockSyncRun, ConsensusConfig, FloodConsensus,
};
use hades_sim::{LinkConfig, Network, NodeId, SimRng};
use hades_time::{fault_tolerant_midpoint, Duration, Time};
use std::hint::black_box;

fn us(n: u64) -> Duration {
    Duration::from_micros(n)
}

fn bench_midpoint(c: &mut Criterion) {
    let mut g = c.benchmark_group("fault_tolerant_midpoint");
    for n in [4usize, 16, 64] {
        let estimates: Vec<i64> = (0..n as i64).map(|i| i * 37 - 1_000).collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &estimates, |b, est| {
            b.iter(|| black_box(fault_tolerant_midpoint(est, est.len() / 4)));
        });
    }
    g.finish();
}

fn bench_clocksync(c: &mut Criterion) {
    let mut g = c.benchmark_group("clocksync");
    g.sample_size(20);
    for nodes in [4u32, 7] {
        g.bench_with_input(BenchmarkId::new("16_rounds", nodes), &nodes, |b, &nodes| {
            b.iter(|| {
                let cfg = ClockSyncConfig {
                    nodes,
                    f: (nodes as usize - 1) / 3,
                    rounds: 16,
                    ..ClockSyncConfig::default_quad()
                };
                black_box(ClockSyncRun::new(cfg).execute())
            });
        });
    }
    g.finish();
}

fn bench_broadcast(c: &mut Criterion) {
    let mut g = c.benchmark_group("broadcast");
    for nodes in [4u32, 16] {
        g.bench_with_input(BenchmarkId::new("diffusion", nodes), &nodes, |b, &nodes| {
            b.iter(|| {
                let net = Network::homogeneous(
                    nodes,
                    LinkConfig::reliable(us(5), us(20)),
                    SimRng::seed_from(1),
                );
                black_box(BroadcastSim::new(net, 1).broadcast(NodeId(0), Time::ZERO))
            });
        });
    }
    g.finish();
}

fn bench_consensus(c: &mut Criterion) {
    let mut g = c.benchmark_group("consensus");
    for nodes in [4u32, 10] {
        g.bench_with_input(
            BenchmarkId::new("floodset_f1", nodes),
            &nodes,
            |b, &nodes| {
                b.iter(|| {
                    let net = Network::homogeneous(
                        nodes,
                        LinkConfig::reliable(us(5), us(20)),
                        SimRng::seed_from(1),
                    );
                    black_box(
                        FloodConsensus::new(ConsensusConfig {
                            f: 1,
                            proposals: (0..nodes as u64).collect(),
                            start: Time::ZERO,
                        })
                        .execute(net),
                    )
                });
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_midpoint,
    bench_clocksync,
    bench_broadcast,
    bench_consensus
);
criterion_main!(benches);
