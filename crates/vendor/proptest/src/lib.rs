//! Minimal, dependency-free stand-in for `proptest`.
//!
//! The build environment of this repository has no network access, so the
//! real crates.io `proptest` cannot be fetched. This crate implements the
//! API subset the workspace's property tests use: the `proptest!` macro
//! with `pattern in strategy` arguments, range and tuple strategies,
//! `prop::collection::vec`, `prop_assert!` / `prop_assert_eq!` /
//! `prop_assume!`, [`test_runner::ProptestConfig`] and
//! [`test_runner::TestCaseError`]. Cases are generated from a
//! deterministic per-test RNG; there is no shrinking — a failing case
//! panics with its case number and message.

/// Strategies: value generators driven by the test RNG.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of test-case values.
    pub trait Strategy {
        /// The type of generated values.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
        type Value = (A::Value, B::Value, C::Value, D::Value);
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.sample(rng),
                self.1.sample(rng),
                self.2.sample(rng),
                self.3.sample(rng),
            )
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification for [`vec()`]: an exact `usize` or a `Range`.
    pub trait SizeRange {
        /// Draws a length.
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for ::std::ops::Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + (rng.next_u64() as usize) % (self.end - self.start)
        }
    }

    /// Strategy producing a `Vec` of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// Generates vectors whose length is drawn from `len`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Test-runner plumbing: configuration, RNG and case outcomes.
pub mod test_runner {
    /// Number of generated cases per property.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// How many cases to generate.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case failed an assertion.
        Fail(String),
        /// The case was rejected by `prop_assume!` (not a failure).
        Reject(String),
    }

    impl TestCaseError {
        /// A failing outcome with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejected (skipped) outcome.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Deterministic splitmix64 RNG, seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates the RNG for a named test.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Asserts a condition inside a property, failing the case (not panicking
/// directly) so the runner can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {:?} != {:?}",
                l, r
            )));
        }
    }};
}

/// Rejects (skips) the current case unless the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Declares property tests: each function runs `cases` times with fresh
/// values drawn from its argument strategies.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl!{
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),* $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(
                            let $pat = $crate::strategy::Strategy::sample(&($strat), &mut rng);
                        )*
                        { $body }
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("property {} failed at case {case}: {msg}", stringify!($name));
                    }
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}
