//! Minimal, dependency-free stand-in for the `criterion` benchmark harness.
//!
//! The build environment of this repository has no network access, so the
//! real crates.io `criterion` cannot be fetched. This crate implements the
//! small API subset the workspace's benches use — `criterion_group!` /
//! `criterion_main!`, [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`] — with a simple
//! wall-clock measurement loop, so `cargo bench` runs and prints one
//! median-time line per benchmark. It intentionally does no statistics,
//! plotting or comparison against saved baselines.

use std::time::{Duration, Instant};

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label)
    }
}

/// Passed to the benchmark closure; runs the measured routine.
#[derive(Debug)]
pub struct Bencher {
    samples: u64,
    /// Median per-iteration time of the last `iter` call.
    last: Option<Duration>,
}

impl Bencher {
    /// Measures `routine`: a few warm-up runs, then `samples` timed batches.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..3 {
            std::hint::black_box(routine());
        }
        // Pick a batch size so one batch takes roughly a millisecond.
        let probe = Instant::now();
        std::hint::black_box(routine());
        let once = probe.elapsed().max(Duration::from_nanos(1));
        let batch = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        let mut per_iter: Vec<Duration> = Vec::with_capacity(self.samples as usize);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            per_iter.push(start.elapsed() / batch as u32);
        }
        per_iter.sort();
        self.last = Some(per_iter[per_iter.len() / 2]);
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = (n as u64).max(1);
        self
    }

    /// Runs one benchmark with an auxiliary input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.samples,
            last: None,
        };
        f(&mut b, input);
        report(&self.name, &id.label, b.last);
        self
    }

    /// Runs one benchmark without input.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.samples,
            last: None,
        };
        f(&mut b);
        report(&self.name, &id.to_string(), b.last);
        self
    }

    /// Ends the group (printing is immediate; nothing to flush).
    pub fn finish(&mut self) {}
}

fn report(group: &str, label: &str, median: Option<Duration>) {
    match median {
        Some(d) => println!("bench {group}/{label}: median {d:?}/iter"),
        None => println!("bench {group}/{label}: no measurement"),
    }
}

/// The harness entry object handed to every benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            _parent: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: 10,
            last: None,
        };
        f(&mut b);
        report("bench", &name.to_string(), b.last);
        self
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
