//! Models of imperfect hardware clocks and adjustable virtual clocks.
//!
//! The HADES fault model (Section 2.1 of the paper) admits *Byzantine*
//! failures for clocks: a faulty clock may return arbitrary values. Correct
//! clocks have bounded drift: if `ρ` is the drift bound, a correct hardware
//! clock `H` satisfies, for real-time spans `Δt`,
//! `Δt · (1 − ρ) ≤ H(t + Δt) − H(t) ≤ Δt · (1 + ρ)`.
//!
//! [`HardwareClock`] models such a clock with an integer drift expressed in
//! parts-per-billion (ppb), an initial offset and an optional injected
//! [`ClockFault`]. [`AdjustableClock`] is the *virtual* clock the
//! clock-synchronization service maintains: hardware time plus a software
//! correction that the synchronization rounds update.

use crate::ticks::{Duration, Time};

/// Fault injected into a hardware clock, for testing the Byzantine-tolerance
/// of the synchronization service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockFault {
    /// The clock stops advancing at the given real time.
    StuckAt(Time),
    /// The clock value jumps by the given signed offset (ns) from the given
    /// real time onward.
    JumpAt(Time, i64),
    /// The clock runs at a wildly wrong rate (factor numerator/denominator)
    /// from time zero — e.g. `Rate(2, 1)` runs twice as fast.
    Rate(u64, u64),
}

/// Stretches a *locally measured* interval into the real time it spans
/// under a clock drift of `drift_ppb`, the inverse of the
/// [`HardwareClock`] rate model: a slow clock (negative drift) counts
/// fewer ticks per real second, so a node waiting a fixed local interval
/// waits *longer* in real time — `real = local · 10⁹ / (10⁹ + drift)`.
///
/// Simulation embeddings use this to run a skewed node's timers off its
/// local clock while the engine itself stays on real time. Drift at or
/// below −10⁹ (a stopped or backwards clock) is clamped so the result
/// stays finite.
///
/// # Examples
///
/// ```
/// use hades_time::{clock::dilate_interval, Duration};
///
/// // A 1% slow clock stretches a 1 ms local wait to ~1.0101 ms real.
/// let real = dilate_interval(Duration::from_millis(1), -10_000_000);
/// assert_eq!(real.as_nanos(), 1_010_101);
/// // A perfect clock leaves the interval untouched.
/// assert_eq!(
///     dilate_interval(Duration::from_millis(1), 0),
///     Duration::from_millis(1)
/// );
/// ```
pub fn dilate_interval(local: Duration, drift_ppb: i64) -> Duration {
    if drift_ppb == 0 {
        return local;
    }
    let rate = (1_000_000_000i64 + drift_ppb).max(1) as u128;
    Duration::from_nanos((local.as_nanos() as u128 * 1_000_000_000 / rate) as u64)
}

/// A drifting hardware clock.
///
/// Reading the clock maps *real* (simulation) time to *clock* time using an
/// exact integer rate model: `H(t) = offset + t + t·drift_ppb/10⁹`.
///
/// # Examples
///
/// ```
/// use hades_time::{Duration, HardwareClock, Time};
///
/// // 100 ppm fast, starts 5 µs ahead.
/// let clk = HardwareClock::new(100_000, 5_000);
/// let real = Time::ZERO + Duration::from_secs(1);
/// let shown = clk.read(real);
/// assert_eq!(shown.as_nanos(), 1_000_000_000 + 100_000 + 5_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HardwareClock {
    /// Signed drift rate in parts-per-billion. Positive runs fast.
    drift_ppb: i64,
    /// Signed initial offset in nanoseconds.
    offset_ns: i64,
    /// Optional injected fault.
    fault: Option<ClockFault>,
}

impl HardwareClock {
    /// Creates a correct clock with the given drift (ppb) and offset (ns).
    pub fn new(drift_ppb: i64, offset_ns: i64) -> Self {
        HardwareClock {
            drift_ppb,
            offset_ns,
            fault: None,
        }
    }

    /// A perfect clock: zero drift, zero offset.
    pub fn perfect() -> Self {
        HardwareClock::new(0, 0)
    }

    /// Returns a copy of this clock with a fault injected.
    pub fn with_fault(mut self, fault: ClockFault) -> Self {
        self.fault = Some(fault);
        self
    }

    /// The configured drift bound of this clock, in ppb (absolute value).
    pub fn drift_ppb(&self) -> i64 {
        self.drift_ppb
    }

    /// Whether a fault has been injected into this clock.
    pub fn is_faulty(&self) -> bool {
        self.fault.is_some()
    }

    /// Reads the clock at real time `real`.
    ///
    /// The result is clamped at zero: a clock can never display a time
    /// before the origin.
    pub fn read(&self, real: Time) -> Time {
        let t = match self.fault {
            Some(ClockFault::StuckAt(at)) if real > at => at,
            _ => real,
        };
        let base = t.as_nanos() as i128;
        let mut v = base + self.offset_ns as i128 + base * self.drift_ppb as i128 / 1_000_000_000;
        match self.fault {
            Some(ClockFault::JumpAt(at, delta)) if real >= at => {
                v += delta as i128;
            }
            Some(ClockFault::Rate(num, den)) => {
                v = base * num as i128 / den.max(1) as i128 + self.offset_ns as i128;
            }
            _ => {}
        }
        Time::from_nanos(v.clamp(0, u64::MAX as i128) as u64)
    }

    /// The worst-case divergence of two correct clocks with drift bound
    /// `rho_ppb` over a real-time span `span`, ignoring initial offsets.
    ///
    /// This is the `2ρΔt` term in the Lundelius–Lynch precision analysis.
    pub fn worst_case_divergence(rho_ppb: u64, span: Duration) -> Duration {
        let d = span.as_nanos() as u128 * 2 * rho_ppb as u128 / 1_000_000_000;
        Duration::from_nanos(d.min(u64::MAX as u128) as u64)
    }
}

/// A software-adjustable virtual clock built on a [`HardwareClock`].
///
/// The clock-synchronization service periodically applies signed
/// *corrections*; the virtual clock value is `H(t) + correction`. Corrections
/// accumulate, matching the amortized-adjustment model of \[LL88\].
///
/// # Examples
///
/// ```
/// use hades_time::{AdjustableClock, Duration, HardwareClock, Time};
///
/// let mut vc = AdjustableClock::new(HardwareClock::perfect());
/// vc.adjust(-250);
/// let t = Time::ZERO + Duration::from_micros(1);
/// assert_eq!(vc.read(t).as_nanos(), 1_000 - 250);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdjustableClock {
    hw: HardwareClock,
    correction_ns: i64,
}

impl AdjustableClock {
    /// Wraps a hardware clock with an initially-zero correction.
    pub fn new(hw: HardwareClock) -> Self {
        AdjustableClock {
            hw,
            correction_ns: 0,
        }
    }

    /// The underlying hardware clock.
    pub fn hardware(&self) -> &HardwareClock {
        &self.hw
    }

    /// The accumulated software correction in nanoseconds.
    pub fn correction_ns(&self) -> i64 {
        self.correction_ns
    }

    /// Applies a signed correction (ns) to the virtual clock.
    pub fn adjust(&mut self, delta_ns: i64) {
        self.correction_ns = self.correction_ns.saturating_add(delta_ns);
    }

    /// Reads the virtual clock at real time `real` (clamped at zero).
    pub fn read(&self, real: Time) -> Time {
        let raw = self.hw.read(real).as_nanos() as i128 + self.correction_ns as i128;
        Time::from_nanos(raw.clamp(0, u64::MAX as i128) as u64)
    }

    /// Signed difference (ns) between this virtual clock and another, read at
    /// the same real instant.
    pub fn skew_to(&self, other: &AdjustableClock, real: Time) -> i64 {
        let a = self.read(real).as_nanos() as i128;
        let b = other.read(real).as_nanos() as i128;
        (a - b).clamp(i64::MIN as i128, i64::MAX as i128) as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: Duration = Duration::from_secs(1);

    #[test]
    fn dilation_inverts_the_drift_rate() {
        // Fast clock: local intervals elapse in less real time.
        let fast = dilate_interval(SEC, 1_000_000);
        assert_eq!(fast.as_nanos(), 999_000_999);
        // Slow clock: stretched.
        let slow = dilate_interval(SEC, -1_000_000);
        assert_eq!(slow.as_nanos(), 1_001_001_001);
        // A stopped clock is clamped, not divided by zero.
        let stopped = dilate_interval(SEC, -2_000_000_000);
        assert!(stopped.as_nanos() > SEC.as_nanos());
    }

    #[test]
    fn perfect_clock_tracks_real_time() {
        let c = HardwareClock::perfect();
        let t = Time::ZERO + SEC;
        assert_eq!(c.read(t), t);
        assert!(!c.is_faulty());
    }

    #[test]
    fn fast_clock_gains_drift() {
        let c = HardwareClock::new(1_000_000, 0); // 1000 ppm fast
        let t = Time::ZERO + SEC;
        assert_eq!(c.read(t).as_nanos(), 1_000_000_000 + 1_000_000);
    }

    #[test]
    fn slow_clock_loses_drift() {
        let c = HardwareClock::new(-500_000, 0); // 500 ppm slow
        let t = Time::ZERO + SEC;
        assert_eq!(c.read(t).as_nanos(), 1_000_000_000 - 500_000);
    }

    #[test]
    fn negative_offset_clamps_at_zero() {
        let c = HardwareClock::new(0, -100);
        assert_eq!(c.read(Time::from_nanos(40)), Time::ZERO);
        assert_eq!(c.read(Time::from_nanos(150)), Time::from_nanos(50));
    }

    #[test]
    fn stuck_fault_freezes_value() {
        let c = HardwareClock::perfect().with_fault(ClockFault::StuckAt(Time::from_nanos(500)));
        assert!(c.is_faulty());
        assert_eq!(c.read(Time::from_nanos(400)), Time::from_nanos(400));
        assert_eq!(c.read(Time::from_nanos(9_999)), Time::from_nanos(500));
    }

    #[test]
    fn jump_fault_applies_after_threshold() {
        let c =
            HardwareClock::perfect().with_fault(ClockFault::JumpAt(Time::from_nanos(100), 1_000));
        assert_eq!(c.read(Time::from_nanos(99)), Time::from_nanos(99));
        assert_eq!(c.read(Time::from_nanos(100)), Time::from_nanos(1_100));
    }

    #[test]
    fn rate_fault_scales_time() {
        let c = HardwareClock::perfect().with_fault(ClockFault::Rate(3, 1));
        assert_eq!(c.read(Time::from_nanos(100)), Time::from_nanos(300));
    }

    #[test]
    fn worst_case_divergence_matches_formula() {
        // 2 clocks at 100 ppm over 1 s diverge by at most 200 µs.
        let d = HardwareClock::worst_case_divergence(100_000, SEC);
        assert_eq!(d, Duration::from_micros(200));
    }

    #[test]
    fn adjustable_clock_accumulates_corrections() {
        let mut vc = AdjustableClock::new(HardwareClock::perfect());
        vc.adjust(100);
        vc.adjust(-40);
        assert_eq!(vc.correction_ns(), 60);
        assert_eq!(vc.read(Time::from_nanos(1_000)), Time::from_nanos(1_060));
    }

    #[test]
    fn skew_between_virtual_clocks() {
        let a = AdjustableClock::new(HardwareClock::new(0, 500));
        let b = AdjustableClock::new(HardwareClock::new(0, -200));
        let t = Time::from_nanos(10_000);
        assert_eq!(a.skew_to(&b, t), 700);
        assert_eq!(b.skew_to(&a, t), -700);
    }
}
