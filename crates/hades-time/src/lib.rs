//! # hades-time — time primitives for the HADES middleware
//!
//! This crate provides the time foundation shared by every other HADES
//! subsystem:
//!
//! * [`Time`] and [`Duration`] — exact, integer nanosecond-tick time points
//!   and spans. Schedulers and feasibility analyses never touch floating
//!   point on the decision path, which keeps every result reproducible.
//! * [`clock`] — models of imperfect *hardware clocks* (bounded drift,
//!   offset, Byzantine fault injection) and of adjustable *virtual clocks*
//!   built on top of them, as assumed by the clock-synchronization service.
//! * [`sync`] — the algorithmic core of the Lundelius–Lynch fault-tolerant
//!   averaging clock-synchronization algorithm used by HADES (\[LL88\] in the
//!   paper), together with its precision bounds.
//! * [`timer`] — a cancellable timer queue used by the simulation kernel and
//!   the dispatcher to trigger task activations and timeouts.
//!
//! # Examples
//!
//! ```
//! use hades_time::{Duration, Time};
//!
//! let start = Time::ZERO + Duration::from_millis(5);
//! let deadline = start + Duration::from_micros(250);
//! assert_eq!(deadline - start, Duration::from_micros(250));
//! ```

#![warn(missing_docs)]

pub mod clock;
pub mod sync;
pub mod ticks;
pub mod timer;

pub use clock::{AdjustableClock, ClockFault, HardwareClock};
pub use sync::{fault_tolerant_midpoint, ConvergenceError, SyncRound};
pub use ticks::{Duration, Time};
pub use timer::{TimerHandle, TimerQueue};
