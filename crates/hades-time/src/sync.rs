//! Algorithmic core of fault-tolerant clock synchronization.
//!
//! HADES adopts the Lundelius–Lynch interactive-convergence algorithm
//! (\[LL88\] in the paper): each node periodically gathers estimates of every
//! other node's clock, discards the `f` lowest and `f` highest estimates and
//! adopts the *midpoint* of the surviving range as its correction target.
//! With `n ≥ 3f + 1` nodes this tolerates `f` arbitrarily faulty (Byzantine)
//! clocks and halves the skew among correct clocks each round.
//!
//! This module contains the pure, network-free part of the algorithm — the
//! fault-tolerant midpoint and the convergence/precision bounds — so it can
//! be unit- and property-tested exhaustively. The protocol machinery (reading
//! remote clocks over the bounded-delay network) lives in
//! `hades-services::clocksync`.

use crate::ticks::Duration;
use std::fmt;

/// Error returned when a synchronization round cannot proceed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConvergenceError {
    /// Fewer than `3f + 1` estimates were supplied for fault bound `f`.
    NotEnoughEstimates {
        /// Number of estimates supplied.
        have: usize,
        /// Minimum required (`3f + 1`).
        need: usize,
    },
}

impl fmt::Display for ConvergenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConvergenceError::NotEnoughEstimates { have, need } => write!(
                f,
                "fault-tolerant midpoint needs at least {need} estimates, got {have}"
            ),
        }
    }
}

impl std::error::Error for ConvergenceError {}

/// Computes the Lundelius–Lynch fault-tolerant midpoint of clock estimates.
///
/// `estimates` are signed skews (in ns) between remote clocks and the local
/// clock; `f` is the maximum number of faulty clocks to tolerate. The `f`
/// smallest and `f` largest estimates are discarded and the midpoint
/// `(min + max) / 2` of the survivors is returned — the correction the local
/// node should apply.
///
/// # Errors
///
/// Returns [`ConvergenceError::NotEnoughEstimates`] when
/// `estimates.len() < 3f + 1`, the resilience threshold of the algorithm.
///
/// # Examples
///
/// ```
/// use hades_time::fault_tolerant_midpoint;
///
/// // One Byzantine reading (+1e9) among four; f = 1 discards it.
/// let skews = vec![-10, 0, 20, 1_000_000_000];
/// let mid = fault_tolerant_midpoint(&skews, 1)?;
/// assert_eq!(mid, 10); // midpoint of {0, 20}
/// # Ok::<(), hades_time::ConvergenceError>(())
/// ```
pub fn fault_tolerant_midpoint(estimates: &[i64], f: usize) -> Result<i64, ConvergenceError> {
    let need = 3 * f + 1;
    if estimates.len() < need {
        return Err(ConvergenceError::NotEnoughEstimates {
            have: estimates.len(),
            need,
        });
    }
    let mut sorted = estimates.to_vec();
    sorted.sort_unstable();
    let survivors = &sorted[f..sorted.len() - f];
    let lo = *survivors.first().expect("survivors nonempty") as i128;
    let hi = *survivors.last().expect("survivors nonempty") as i128;
    // Floor-divide toward negative infinity for stability on negative sums.
    Ok(((lo + hi).div_euclid(2)) as i64)
}

/// Parameters and derived bounds of one synchronization round.
///
/// `SyncRound` captures the environment constants the precision analysis of
/// \[LL88\] needs: reading error `ε` (dominated by message-delay uncertainty),
/// drift bound `ρ` and resynchronization period `P`.
///
/// # Examples
///
/// ```
/// use hades_time::{Duration, SyncRound};
///
/// let round = SyncRound::new(Duration::from_micros(50), 100_000, Duration::from_secs(1));
/// // Steady-state precision: 4ε + 4ρP (conservative closed form).
/// assert!(round.steady_state_precision() > Duration::from_micros(200));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncRound {
    /// Clock-reading error bound ε: half the message-delay uncertainty.
    pub reading_error: Duration,
    /// Drift bound ρ of correct clocks, in parts-per-billion.
    pub drift_ppb: u64,
    /// Resynchronization period P.
    pub period: Duration,
}

impl SyncRound {
    /// Creates round parameters from reading error, drift and period.
    pub fn new(reading_error: Duration, drift_ppb: u64, period: Duration) -> Self {
        SyncRound {
            reading_error,
            drift_ppb,
            period,
        }
    }

    /// Drift accumulated by two correct clocks over one period: `2ρP`.
    pub fn drift_per_period(&self) -> Duration {
        crate::clock::HardwareClock::worst_case_divergence(self.drift_ppb, self.period)
    }

    /// Skew after one round given skew `before` at the start of the round.
    ///
    /// The fault-tolerant midpoint halves the pre-round skew and adds the
    /// reading error and one period of drift:
    /// `after = before/2 + 2ε + 2ρP`.
    pub fn skew_after_round(&self, before: Duration) -> Duration {
        Duration::from_nanos(before.as_nanos() / 2)
            .saturating_add(self.reading_error.saturating_mul(2))
            .saturating_add(self.drift_per_period())
    }

    /// Fixed point of [`Self::skew_after_round`]: the steady-state precision
    /// `γ = 4ε + 4ρP` guaranteed among correct clocks.
    pub fn steady_state_precision(&self) -> Duration {
        self.reading_error
            .saturating_mul(4)
            .saturating_add(self.drift_per_period().saturating_mul(2))
    }

    /// Number of rounds to converge from `initial` skew to within the
    /// steady-state precision (plus one tick of slack).
    pub fn rounds_to_converge(&self, initial: Duration) -> u32 {
        let target = self.steady_state_precision();
        let mut skew = initial;
        let mut rounds = 0;
        while skew > target + Duration::from_nanos(1) {
            skew = self.skew_after_round(skew);
            rounds += 1;
            if rounds > 128 {
                break; // diverging parameters; bound the loop
            }
        }
        rounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn midpoint_discards_byzantine_extremes() {
        // f = 1, n = 4: one absurd value must not influence the result.
        let skews = vec![5, -5, 15, i64::MAX];
        assert_eq!(fault_tolerant_midpoint(&skews, 1).unwrap(), 10);
        let skews = vec![5, -5, 15, i64::MIN];
        assert_eq!(fault_tolerant_midpoint(&skews, 1).unwrap(), 0);
    }

    #[test]
    fn midpoint_zero_f_is_plain_midrange() {
        let skews = vec![-100, 0, 50];
        assert_eq!(fault_tolerant_midpoint(&skews, 0).unwrap(), -25);
    }

    #[test]
    fn midpoint_requires_three_f_plus_one() {
        let err = fault_tolerant_midpoint(&[1, 2, 3], 1).unwrap_err();
        assert_eq!(
            err,
            ConvergenceError::NotEnoughEstimates { have: 3, need: 4 }
        );
        assert!(err.to_string().contains("at least 4"));
    }

    #[test]
    fn midpoint_negative_floor_division_is_stable() {
        // (−3 + 0) / 2 floors to −2 under euclidean division toward −∞.
        assert_eq!(fault_tolerant_midpoint(&[-3, 0], 0).unwrap(), -2);
    }

    #[test]
    fn midpoint_is_within_survivor_range() {
        let skews = vec![-50, -10, 0, 10, 50, 9_000];
        let m = fault_tolerant_midpoint(&skews, 1).unwrap();
        assert!((-10..=50).contains(&m));
    }

    #[test]
    fn skew_halves_each_round() {
        let r = SyncRound::new(Duration::ZERO, 0, Duration::from_secs(1));
        let s0 = Duration::from_micros(800);
        let s1 = r.skew_after_round(s0);
        assert_eq!(s1, Duration::from_micros(400));
    }

    #[test]
    fn steady_state_is_fixed_point() {
        let r = SyncRound::new(
            Duration::from_micros(10),
            50_000,
            Duration::from_millis(500),
        );
        let gamma = r.steady_state_precision();
        let next = r.skew_after_round(gamma);
        // At the fixed point skew does not grow.
        assert!(next <= gamma + Duration::from_nanos(1));
    }

    #[test]
    fn convergence_round_count_is_logarithmic() {
        let r = SyncRound::new(Duration::from_micros(5), 10_000, Duration::from_millis(100));
        let from_1ms = r.rounds_to_converge(Duration::from_millis(1));
        let from_1s = r.rounds_to_converge(Duration::from_secs(1));
        assert!(from_1ms > 0);
        assert!(from_1s > from_1ms);
        assert!(from_1s < 40, "log₂(1e9) ≈ 30 rounds at most, got {from_1s}");
    }

    #[test]
    fn zero_initial_skew_needs_no_rounds() {
        let r = SyncRound::new(Duration::from_micros(5), 10_000, Duration::from_millis(100));
        assert_eq!(r.rounds_to_converge(Duration::ZERO), 0);
    }
}
