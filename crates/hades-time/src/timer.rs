//! Cancellable timer queue.
//!
//! The dispatcher and the simulation kernel both need to schedule work at
//! absolute points in virtual time and, crucially, to *cancel* timers that a
//! preemption or a fault made obsolete. [`TimerQueue`] is a binary-heap timer
//! wheel with O(log n) arm/pop and O(1) logical cancellation (cancelled
//! entries are skipped lazily on pop).

use crate::ticks::Time;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Opaque handle identifying an armed timer; used to cancel it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TimerHandle(u64);

#[derive(Debug, PartialEq, Eq)]
struct Entry<T> {
    deadline: Time,
    seq: u64,
    payload: T,
}

impl<T: Eq> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Earliest deadline first; FIFO among equal deadlines.
        (self.deadline, self.seq).cmp(&(other.deadline, other.seq))
    }
}

impl<T: Eq> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A priority queue of timers ordered by absolute expiry time.
///
/// Ties expire in FIFO arming order, which makes simulation runs
/// deterministic.
///
/// # Examples
///
/// ```
/// use hades_time::{Time, TimerQueue};
///
/// let mut q = TimerQueue::new();
/// let a = q.arm(Time::from_nanos(30), "late");
/// let _b = q.arm(Time::from_nanos(10), "early");
/// q.cancel(a);
/// let (t, v) = q.pop_expired(Time::from_nanos(50)).unwrap();
/// assert_eq!((t, v), (Time::from_nanos(10), "early"));
/// assert!(q.pop_expired(Time::from_nanos(50)).is_none());
/// ```
#[derive(Debug)]
pub struct TimerQueue<T> {
    heap: BinaryHeap<Reverse<Entry<T>>>,
    cancelled: std::collections::HashSet<u64>,
    next_seq: u64,
}

impl<T: Eq> TimerQueue<T> {
    /// Creates an empty timer queue.
    pub fn new() -> Self {
        TimerQueue {
            heap: BinaryHeap::new(),
            cancelled: std::collections::HashSet::new(),
            next_seq: 0,
        }
    }

    /// Arms a timer expiring at `deadline` carrying `payload`.
    pub fn arm(&mut self, deadline: Time, payload: T) -> TimerHandle {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry {
            deadline,
            seq,
            payload,
        }));
        TimerHandle(seq)
    }

    /// Cancels an armed timer. Cancelling an already-fired or unknown handle
    /// is a no-op.
    pub fn cancel(&mut self, handle: TimerHandle) {
        self.cancelled.insert(handle.0);
    }

    /// Expiry time of the earliest live timer, if any.
    pub fn peek_deadline(&mut self) -> Option<Time> {
        self.skip_cancelled();
        self.heap.peek().map(|Reverse(e)| e.deadline)
    }

    /// Pops the earliest timer whose deadline is `<= now`, skipping
    /// cancelled entries. Returns the deadline and payload.
    pub fn pop_expired(&mut self, now: Time) -> Option<(Time, T)> {
        self.skip_cancelled();
        match self.heap.peek() {
            Some(Reverse(e)) if e.deadline <= now => {
                let Reverse(e) = self.heap.pop().expect("peeked entry exists");
                Some((e.deadline, e.payload))
            }
            _ => None,
        }
    }

    /// Number of live (non-cancelled) timers.
    pub fn len(&self) -> usize {
        self.heap
            .iter()
            .filter(|Reverse(e)| !self.cancelled.contains(&e.seq))
            .count()
    }

    /// Whether no live timer is armed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn skip_cancelled(&mut self) {
        while let Some(Reverse(e)) = self.heap.peek() {
            if self.cancelled.remove(&e.seq) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }
}

impl<T: Eq> Default for TimerQueue<T> {
    fn default() -> Self {
        TimerQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_deadline_order() {
        let mut q = TimerQueue::new();
        q.arm(Time::from_nanos(30), 3);
        q.arm(Time::from_nanos(10), 1);
        q.arm(Time::from_nanos(20), 2);
        let now = Time::from_nanos(100);
        assert_eq!(q.pop_expired(now), Some((Time::from_nanos(10), 1)));
        assert_eq!(q.pop_expired(now), Some((Time::from_nanos(20), 2)));
        assert_eq!(q.pop_expired(now), Some((Time::from_nanos(30), 3)));
        assert_eq!(q.pop_expired(now), None);
    }

    #[test]
    fn equal_deadlines_fire_fifo() {
        let mut q = TimerQueue::new();
        let t = Time::from_nanos(5);
        q.arm(t, "first");
        q.arm(t, "second");
        assert_eq!(q.pop_expired(t).unwrap().1, "first");
        assert_eq!(q.pop_expired(t).unwrap().1, "second");
    }

    #[test]
    fn does_not_pop_future_timers() {
        let mut q = TimerQueue::new();
        q.arm(Time::from_nanos(100), ());
        assert_eq!(q.pop_expired(Time::from_nanos(99)), None);
        assert_eq!(q.peek_deadline(), Some(Time::from_nanos(100)));
        assert_eq!(
            q.pop_expired(Time::from_nanos(100)),
            Some((Time::from_nanos(100), ()))
        );
    }

    #[test]
    fn cancellation_skips_entry() {
        let mut q = TimerQueue::new();
        let h = q.arm(Time::from_nanos(1), "dead");
        q.arm(Time::from_nanos(2), "live");
        q.cancel(h);
        assert_eq!(q.len(), 1);
        assert_eq!(
            q.pop_expired(Time::from_nanos(10)),
            Some((Time::from_nanos(2), "live"))
        );
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_unknown_handle_is_noop() {
        let mut q: TimerQueue<()> = TimerQueue::new();
        q.cancel(TimerHandle(999));
        assert!(q.is_empty());
        assert_eq!(q.peek_deadline(), None);
    }

    #[test]
    fn peek_skips_cancelled_head() {
        let mut q = TimerQueue::new();
        let h = q.arm(Time::from_nanos(1), 1);
        q.arm(Time::from_nanos(5), 2);
        q.cancel(h);
        assert_eq!(q.peek_deadline(), Some(Time::from_nanos(5)));
    }

    #[test]
    fn default_is_empty() {
        let q: TimerQueue<u8> = TimerQueue::default();
        assert!(q.is_empty());
    }
}
