//! Integer nanosecond time points and durations.
//!
//! All of HADES runs on *ticks*: a tick is one nanosecond of virtual time.
//! [`Time`] is an absolute point on the simulated timeline, [`Duration`] a
//! non-negative span between two points. Both are thin newtypes over `u64`
//! so that every arithmetic operation is exact; overflow panics in debug
//! builds and is available explicitly through the `checked_*`/`saturating_*`
//! families.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};

/// A non-negative span of virtual time, measured in nanosecond ticks.
///
/// # Examples
///
/// ```
/// use hades_time::Duration;
///
/// let d = Duration::from_micros(3) + Duration::from_nanos(500);
/// assert_eq!(d.as_nanos(), 3_500);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(u64);

impl Duration {
    /// The empty span.
    pub const ZERO: Duration = Duration(0);
    /// The largest representable span.
    pub const MAX: Duration = Duration(u64::MAX);

    /// Creates a duration from raw nanosecond ticks.
    #[inline]
    pub const fn from_nanos(nanos: u64) -> Self {
        Duration(nanos)
    }

    /// Creates a duration from microseconds.
    ///
    /// # Panics
    ///
    /// Panics if the value overflows the tick representation.
    #[inline]
    pub const fn from_micros(micros: u64) -> Self {
        Duration(micros * 1_000)
    }

    /// Creates a duration from milliseconds.
    ///
    /// # Panics
    ///
    /// Panics if the value overflows the tick representation.
    #[inline]
    pub const fn from_millis(millis: u64) -> Self {
        Duration(millis * 1_000_000)
    }

    /// Creates a duration from seconds.
    ///
    /// # Panics
    ///
    /// Panics if the value overflows the tick representation.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        Duration(secs * 1_000_000_000)
    }

    /// Returns the raw number of nanosecond ticks.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the whole number of microseconds in this span.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the whole number of milliseconds in this span.
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Returns this span as (possibly fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns `true` if the span is zero ticks long.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Checked addition; `None` on overflow.
    #[inline]
    pub const fn checked_add(self, rhs: Duration) -> Option<Duration> {
        match self.0.checked_add(rhs.0) {
            Some(v) => Some(Duration(v)),
            None => None,
        }
    }

    /// Checked subtraction; `None` if `rhs > self`.
    #[inline]
    pub const fn checked_sub(self, rhs: Duration) -> Option<Duration> {
        match self.0.checked_sub(rhs.0) {
            Some(v) => Some(Duration(v)),
            None => None,
        }
    }

    /// Checked multiplication by a scalar; `None` on overflow.
    #[inline]
    pub const fn checked_mul(self, rhs: u64) -> Option<Duration> {
        match self.0.checked_mul(rhs) {
            Some(v) => Some(Duration(v)),
            None => None,
        }
    }

    /// Saturating addition.
    #[inline]
    pub const fn saturating_add(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction (clamps at zero).
    #[inline]
    pub const fn saturating_sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }

    /// Saturating multiplication by a scalar.
    #[inline]
    pub const fn saturating_mul(self, rhs: u64) -> Duration {
        Duration(self.0.saturating_mul(rhs))
    }

    /// Ceiling division: the least `k` such that `k * rhs >= self`.
    ///
    /// This is the `⌈t / p⌉` that appears throughout the feasibility tests
    /// of the paper (Sections 4 and 5).
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    #[inline]
    pub const fn div_ceil(self, rhs: Duration) -> u64 {
        assert!(rhs.0 != 0, "division by zero duration");
        self.0.div_ceil(rhs.0)
    }

    /// Floor division: how many whole `rhs` fit in `self`.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    #[inline]
    pub const fn div_floor(self, rhs: Duration) -> u64 {
        assert!(rhs.0 != 0, "division by zero duration");
        self.0 / rhs.0
    }

    /// Returns the larger of two spans.
    #[inline]
    pub fn max(self, other: Duration) -> Duration {
        Duration(self.0.max(other.0))
    }

    /// Returns the smaller of two spans.
    #[inline]
    pub fn min(self, other: Duration) -> Duration {
        Duration(self.0.min(other.0))
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl SubAssign for Duration {
    #[inline]
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0 * rhs)
    }
}

impl Mul<Duration> for u64 {
    type Output = Duration;
    #[inline]
    fn mul(self, rhs: Duration) -> Duration {
        Duration(self * rhs.0)
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    #[inline]
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl Rem<Duration> for Duration {
    type Output = Duration;
    #[inline]
    fn rem(self, rhs: Duration) -> Duration {
        Duration(self.0 % rhs.0)
    }
}

impl Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        iter.fold(Duration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self.0;
        if n == 0 {
            write!(f, "0ns")
        } else if n.is_multiple_of(1_000_000_000) {
            write!(f, "{}s", n / 1_000_000_000)
        } else if n.is_multiple_of(1_000_000) {
            write!(f, "{}ms", n / 1_000_000)
        } else if n.is_multiple_of(1_000) {
            write!(f, "{}us", n / 1_000)
        } else {
            write!(f, "{n}ns")
        }
    }
}

/// An absolute point on the virtual timeline, measured in nanosecond ticks
/// since the simulation origin.
///
/// # Examples
///
/// ```
/// use hades_time::{Duration, Time};
///
/// let t = Time::ZERO + Duration::from_secs(1);
/// assert!(t > Time::ZERO);
/// assert_eq!(t.elapsed_since(Time::ZERO), Duration::from_secs(1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

impl Time {
    /// The simulation origin.
    pub const ZERO: Time = Time(0);
    /// The farthest representable future; used as an "infinite" horizon.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates a time point from raw nanosecond ticks since the origin.
    #[inline]
    pub const fn from_nanos(nanos: u64) -> Self {
        Time(nanos)
    }

    /// Returns raw nanosecond ticks since the origin.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    #[inline]
    pub fn elapsed_since(self, earlier: Time) -> Duration {
        Duration(
            self.0
                .checked_sub(earlier.0)
                .expect("elapsed_since: earlier is in the future"),
        )
    }

    /// Checked point + span; `None` on overflow.
    #[inline]
    pub const fn checked_add(self, d: Duration) -> Option<Time> {
        match self.0.checked_add(d.as_nanos()) {
            Some(v) => Some(Time(v)),
            None => None,
        }
    }

    /// Saturating point + span.
    #[inline]
    pub const fn saturating_add(self, d: Duration) -> Time {
        Time(self.0.saturating_add(d.as_nanos()))
    }

    /// Checked point − span; `None` if the result would precede the origin.
    #[inline]
    pub const fn checked_sub(self, d: Duration) -> Option<Time> {
        match self.0.checked_sub(d.as_nanos()) {
            Some(v) => Some(Time(v)),
            None => None,
        }
    }

    /// Saturating point − span (clamps at the origin).
    #[inline]
    pub const fn saturating_sub(self, d: Duration) -> Time {
        Time(self.0.saturating_sub(d.as_nanos()))
    }

    /// The later of two points.
    #[inline]
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }

    /// The earlier of two points.
    #[inline]
    pub fn min(self, other: Time) -> Time {
        Time(self.0.min(other.0))
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Duration) -> Time {
        Time(self.0 + rhs.as_nanos())
    }
}

impl AddAssign<Duration> for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.as_nanos();
    }
}

impl Sub<Duration> for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: Duration) -> Time {
        Time(self.0 - rhs.as_nanos())
    }
}

impl Sub<Time> for Time {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Time) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", Duration(self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_scale_correctly() {
        assert_eq!(Duration::from_micros(1).as_nanos(), 1_000);
        assert_eq!(Duration::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(Duration::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(Duration::from_secs(2).as_millis(), 2_000);
        assert_eq!(Duration::from_millis(1500).as_micros(), 1_500_000);
    }

    #[test]
    fn duration_arithmetic() {
        let a = Duration::from_nanos(100);
        let b = Duration::from_nanos(30);
        assert_eq!(a + b, Duration::from_nanos(130));
        assert_eq!(a - b, Duration::from_nanos(70));
        assert_eq!(a * 3, Duration::from_nanos(300));
        assert_eq!(3 * a, Duration::from_nanos(300));
        assert_eq!(a / 4, Duration::from_nanos(25));
        assert_eq!(a % b, Duration::from_nanos(10));
    }

    #[test]
    fn duration_div_ceil_and_floor() {
        let t = Duration::from_nanos(10);
        let p = Duration::from_nanos(3);
        assert_eq!(t.div_ceil(p), 4);
        assert_eq!(t.div_floor(p), 3);
        assert_eq!(Duration::from_nanos(9).div_ceil(p), 3);
        assert_eq!(Duration::ZERO.div_ceil(p), 0);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn duration_div_ceil_zero_panics() {
        let _ = Duration::from_nanos(1).div_ceil(Duration::ZERO);
    }

    #[test]
    fn duration_checked_and_saturating() {
        assert_eq!(Duration::MAX.checked_add(Duration::from_nanos(1)), None);
        assert_eq!(
            Duration::MAX.saturating_add(Duration::from_nanos(1)),
            Duration::MAX
        );
        assert_eq!(Duration::ZERO.checked_sub(Duration::from_nanos(1)), None);
        assert_eq!(
            Duration::ZERO.saturating_sub(Duration::from_nanos(1)),
            Duration::ZERO
        );
        assert_eq!(Duration::MAX.checked_mul(2), None);
        assert_eq!(Duration::MAX.saturating_mul(2), Duration::MAX);
    }

    #[test]
    fn duration_sum() {
        let total: Duration = (1..=4).map(Duration::from_nanos).sum();
        assert_eq!(total, Duration::from_nanos(10));
    }

    #[test]
    fn duration_display_picks_best_unit() {
        assert_eq!(Duration::ZERO.to_string(), "0ns");
        assert_eq!(Duration::from_nanos(42).to_string(), "42ns");
        assert_eq!(Duration::from_micros(42).to_string(), "42us");
        assert_eq!(Duration::from_millis(42).to_string(), "42ms");
        assert_eq!(Duration::from_secs(42).to_string(), "42s");
        assert_eq!(Duration::from_nanos(1_000_500).to_string(), "1000500ns");
    }

    #[test]
    fn time_arithmetic() {
        let t = Time::from_nanos(1_000);
        assert_eq!(t + Duration::from_nanos(500), Time::from_nanos(1_500));
        assert_eq!(t - Duration::from_nanos(500), Time::from_nanos(500));
        assert_eq!(
            Time::from_nanos(700) - Time::from_nanos(200),
            Duration::from_nanos(500)
        );
        assert_eq!(
            t.elapsed_since(Time::from_nanos(400)),
            Duration::from_nanos(600)
        );
    }

    #[test]
    fn time_saturating_and_checked() {
        assert_eq!(Time::MAX.checked_add(Duration::from_nanos(1)), None);
        assert_eq!(Time::MAX.saturating_add(Duration::from_nanos(1)), Time::MAX);
        assert_eq!(Time::ZERO.checked_sub(Duration::from_nanos(1)), None);
        assert_eq!(
            Time::ZERO.saturating_sub(Duration::from_nanos(1)),
            Time::ZERO
        );
    }

    #[test]
    #[should_panic(expected = "in the future")]
    fn elapsed_since_panics_when_reversed() {
        let _ = Time::ZERO.elapsed_since(Time::from_nanos(1));
    }

    #[test]
    fn ordering_and_minmax() {
        let a = Time::from_nanos(1);
        let b = Time::from_nanos(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let x = Duration::from_nanos(1);
        let y = Duration::from_nanos(2);
        assert_eq!(x.max(y), y);
        assert_eq!(x.min(y), x);
    }
}
