//! Elementary units: `Code_EU` and `Inv_EU` (Section 3.1 of the paper).

use crate::attrs::{EuTiming, Priority, ProcessorId};
use crate::condvar::CondVarId;
use crate::resource::ResourceUse;
use hades_time::Duration;
use std::fmt;

/// Index of an elementary unit within its HEUG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EuIndex(pub u32);

impl fmt::Display for EuIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "eu{}", self.0)
    }
}

/// Whether an invocation waits for the invoked task to complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InvocationMode {
    /// `Inv_sync(T)` — the unit ends when the invoked task has finished.
    Synchronous,
    /// `Inv_async(T)` — the unit ends immediately.
    Asynchronous,
}

/// A code elementary unit: one *action* with a determinable WCET.
///
/// By construction (Section 3.3) an action contains no synchronization and
/// no resource allocation — resources are acquired before the action starts
/// and released when it ends — so its worst-case execution time `w` can be
/// established offline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodeEu {
    /// Human-readable name.
    pub name: String,
    /// Worst-case execution time `w` of the action.
    pub wcet: Duration,
    /// Processor the action is statically assigned to.
    pub processor: ProcessorId,
    /// Resources acquired for the duration of the action.
    pub resources: Vec<ResourceUse>,
    /// Condition variables that must be set before the action may start.
    pub waits: Vec<CondVarId>,
    /// Condition variables set when the action completes.
    pub sets: Vec<CondVarId>,
    /// Condition variables cleared when the action completes.
    pub clears: Vec<CondVarId>,
    /// Timing attributes.
    pub timing: EuTiming,
}

impl CodeEu {
    /// Creates an action with the given WCET on the given processor, lowest
    /// priority and no synchronization.
    ///
    /// # Panics
    ///
    /// Panics if `wcet` is zero — an empty action is a modelling error (use
    /// a precedence constraint instead).
    pub fn new(name: impl Into<String>, wcet: Duration, processor: ProcessorId) -> Self {
        assert!(!wcet.is_zero(), "Code_EU wcet must be positive");
        CodeEu {
            name: name.into(),
            wcet,
            processor,
            resources: Vec::new(),
            waits: Vec::new(),
            sets: Vec::new(),
            clears: Vec::new(),
            timing: EuTiming::default(),
        }
    }

    /// Returns a copy requiring `use_` for the whole action.
    pub fn with_resource(mut self, use_: ResourceUse) -> Self {
        self.resources.push(use_);
        self
    }

    /// Returns a copy that waits on `cv` before starting.
    pub fn waiting_on(mut self, cv: CondVarId) -> Self {
        self.waits.push(cv);
        self
    }

    /// Returns a copy that sets `cv` at completion.
    pub fn setting(mut self, cv: CondVarId) -> Self {
        self.sets.push(cv);
        self
    }

    /// Returns a copy that clears `cv` at completion.
    pub fn clearing(mut self, cv: CondVarId) -> Self {
        self.clears.push(cv);
        self
    }

    /// Returns a copy with the given timing attributes.
    pub fn with_timing(mut self, timing: EuTiming) -> Self {
        self.timing = timing;
        self
    }

    /// Returns a copy with the given base priority (threshold follows).
    pub fn with_priority(mut self, prio: Priority) -> Self {
        self.timing = EuTiming {
            prio,
            pt: prio.max(self.timing.pt),
            ..self.timing
        };
        self
    }
}

/// An invocation elementary unit: a request to execute another task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvEu {
    /// Name of this invocation site.
    pub name: String,
    /// The invoked task (by id in the owning [`crate::TaskSet`]).
    pub target: crate::task::TaskId,
    /// Synchronous or asynchronous.
    pub mode: InvocationMode,
    /// Processor from which the invocation is issued.
    pub processor: ProcessorId,
}

impl InvEu {
    /// Creates a synchronous invocation of `target` issued from `processor`.
    pub fn sync(
        name: impl Into<String>,
        target: crate::task::TaskId,
        processor: ProcessorId,
    ) -> Self {
        InvEu {
            name: name.into(),
            target,
            mode: InvocationMode::Synchronous,
            processor,
        }
    }

    /// Creates an asynchronous invocation of `target` issued from
    /// `processor`.
    pub fn asynchronous(
        name: impl Into<String>,
        target: crate::task::TaskId,
        processor: ProcessorId,
    ) -> Self {
        InvEu {
            name: name.into(),
            target,
            mode: InvocationMode::Asynchronous,
            processor,
        }
    }
}

/// An elementary unit: either code or an invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Eu {
    /// A code unit.
    Code(CodeEu),
    /// An invocation unit.
    Inv(InvEu),
}

impl Eu {
    /// The unit's name.
    pub fn name(&self) -> &str {
        match self {
            Eu::Code(c) => &c.name,
            Eu::Inv(i) => &i.name,
        }
    }

    /// The processor the unit is assigned to.
    pub fn processor(&self) -> ProcessorId {
        match self {
            Eu::Code(c) => c.processor,
            Eu::Inv(i) => i.processor,
        }
    }

    /// The code unit, if this is one.
    pub fn as_code(&self) -> Option<&CodeEu> {
        match self {
            Eu::Code(c) => Some(c),
            Eu::Inv(_) => None,
        }
    }

    /// The invocation unit, if this is one.
    pub fn as_inv(&self) -> Option<&InvEu> {
        match self {
            Eu::Inv(i) => Some(i),
            Eu::Code(_) => None,
        }
    }
}

impl From<CodeEu> for Eu {
    fn from(c: CodeEu) -> Eu {
        Eu::Code(c)
    }
}

impl From<InvEu> for Eu {
    fn from(i: InvEu) -> Eu {
        Eu::Inv(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::{AccessMode, ResourceId};
    use crate::task::TaskId;

    #[test]
    fn code_eu_builder_chain() {
        let cv = CondVarId(1);
        let eu = CodeEu::new("ctl", Duration::from_micros(10), ProcessorId(0))
            .with_resource(ResourceUse::exclusive(ResourceId(0)))
            .waiting_on(cv)
            .setting(CondVarId(2))
            .clearing(cv)
            .with_priority(Priority::new(4));
        assert_eq!(eu.resources.len(), 1);
        assert_eq!(eu.resources[0].mode, AccessMode::Exclusive);
        assert_eq!(eu.waits, vec![cv]);
        assert_eq!(eu.sets, vec![CondVarId(2)]);
        assert_eq!(eu.clears, vec![cv]);
        assert_eq!(eu.timing.prio, Priority::new(4));
        assert_eq!(eu.timing.pt, Priority::new(4));
    }

    #[test]
    #[should_panic(expected = "wcet must be positive")]
    fn zero_wcet_rejected() {
        let _ = CodeEu::new("bad", Duration::ZERO, ProcessorId(0));
    }

    #[test]
    fn with_priority_keeps_higher_threshold() {
        let eu = CodeEu::new("x", Duration::from_nanos(1), ProcessorId(0))
            .with_timing(EuTiming::with_priority(Priority::new(2)).with_threshold(Priority::new(9)))
            .with_priority(Priority::new(5));
        assert_eq!(eu.timing.prio, Priority::new(5));
        assert_eq!(eu.timing.pt, Priority::new(9));
    }

    #[test]
    fn invocation_modes() {
        let s = InvEu::sync("call", TaskId(7), ProcessorId(1));
        let a = InvEu::asynchronous("spawn", TaskId(7), ProcessorId(1));
        assert_eq!(s.mode, InvocationMode::Synchronous);
        assert_eq!(a.mode, InvocationMode::Asynchronous);
        assert_eq!(s.target, TaskId(7));
    }

    #[test]
    fn eu_accessors() {
        let c: Eu = CodeEu::new("c", Duration::from_nanos(1), ProcessorId(2)).into();
        let i: Eu = InvEu::sync("i", TaskId(0), ProcessorId(3)).into();
        assert_eq!(c.name(), "c");
        assert_eq!(i.name(), "i");
        assert_eq!(c.processor(), ProcessorId(2));
        assert_eq!(i.processor(), ProcessorId(3));
        assert!(c.as_code().is_some() && c.as_inv().is_none());
        assert!(i.as_inv().is_some() && i.as_code().is_none());
    }

    #[test]
    fn eu_index_display() {
        assert_eq!(EuIndex(4).to_string(), "eu4");
    }
}
