//! # hades-task — the HEUG generic task model (Section 3 of the paper)
//!
//! Every activity in HADES — application task, middleware service or
//! scheduler — is expressed in one uniform model: a **H**ades **E**lementary
//! **U**nit **G**raph. A HEUG is a directed acyclic graph of elementary
//! units:
//!
//! * [`CodeEu`] — a sequence of code (*action*) with a known worst-case
//!   execution time `w`, statically assigned to a processor, using only
//!   resources local to that processor. Actions contain no internal
//!   synchronization, which is what makes `w` determinable.
//! * [`InvEu`] — a synchronous or asynchronous invocation of another task.
//!
//! Units are connected by *precedence constraints* (optionally carrying
//! parameters); a constraint is *local* when both ends live on the same
//! processor and *remote* otherwise, in which case it is materialised by the
//! network-management task `msg_task`.
//!
//! Synchronization beyond precedence uses [`resource`]s (shared/exclusive
//! access modes) and [`condvar`] condition variables. Timing attributes
//! (priority, preemption threshold, earliest/latest start, deadline) and
//! [`arrival::ArrivalLaw`]s complete the model.
//!
//! The [`spuri`] module implements the worked example of Section 5: the
//! translation of Spuri's sporadic task model (arbitrary deadlines, one
//! critical section) into HEUGs, reproducing Figure 3.
//!
//! # Examples
//!
//! ```
//! use hades_task::prelude::*;
//!
//! let mut b = HeugBuilder::new("sample");
//! let read = b.code_eu(CodeEu::new("read", Duration::from_micros(40), ProcessorId(0)));
//! let act = b.code_eu(CodeEu::new("act", Duration::from_micros(60), ProcessorId(0)));
//! b.precede(read, act);
//! let heug = b.build()?;
//! assert_eq!(heug.topological_order().len(), 2);
//! # Ok::<(), hades_task::graph::GraphError>(())
//! ```

#![warn(missing_docs)]

pub mod arrival;
pub mod attrs;
pub mod condvar;
pub mod eu;
pub mod graph;
pub mod resource;
pub mod spuri;
pub mod task;

/// Convenient re-exports of the types needed to describe a task set.
pub mod prelude {
    pub use crate::arrival::ArrivalLaw;
    pub use crate::attrs::{EuTiming, Priority, ProcessorId};
    pub use crate::condvar::CondVarId;
    pub use crate::eu::{CodeEu, Eu, EuIndex, InvEu, InvocationMode};
    pub use crate::graph::{Heug, HeugBuilder};
    pub use crate::resource::{AccessMode, ResourceId, ResourceUse};
    pub use crate::task::{Task, TaskId, TaskSet};
    pub use hades_time::{Duration, Time};
}

pub use arrival::ArrivalLaw;
pub use attrs::{EuTiming, Priority, ProcessorId};
pub use condvar::CondVarId;
pub use eu::{CodeEu, Eu, EuIndex, InvEu, InvocationMode};
pub use graph::{Heug, HeugBuilder};
pub use resource::{AccessMode, ResourceId, ResourceUse};
pub use spuri::SpuriTask;
pub use task::{Task, TaskId, TaskSet};
