//! Condition variables (Section 3.1.1 of the paper).
//!
//! A condition variable is a *system-wide boolean* that can be set and
//! cleared. By definition a `Code_EU` can wait for a condition variable only
//! **before** beginning its execution — once running, an action never
//! blocks, preserving the analysability of its WCET. Condition variables are
//! what make producer/consumer schemes and event-triggered activations
//! expressible in the HEUG model (Section 3.3).

use std::collections::HashMap;
use std::fmt;

/// Identifier of a system-wide condition variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CondVarId(pub u32);

impl fmt::Display for CondVarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cv{}", self.0)
    }
}

/// The run-time state of all condition variables on a node.
///
/// Unknown variables read as `false` (cleared), so declaring variables up
/// front is optional.
///
/// # Examples
///
/// ```
/// use hades_task::condvar::{CondVarId, CondVarTable};
///
/// let mut t = CondVarTable::new();
/// let go = CondVarId(0);
/// assert!(!t.is_set(go));
/// t.set(go);
/// assert!(t.is_set(go));
/// t.clear(go);
/// assert!(!t.is_set(go));
/// ```
#[derive(Debug, Clone, Default)]
pub struct CondVarTable {
    state: HashMap<CondVarId, bool>,
}

impl CondVarTable {
    /// Creates an empty table (all variables cleared).
    pub fn new() -> Self {
        CondVarTable::default()
    }

    /// Whether `cv` is currently set.
    pub fn is_set(&self, cv: CondVarId) -> bool {
        self.state.get(&cv).copied().unwrap_or(false)
    }

    /// Sets `cv` to true. Returns `true` if the value changed.
    pub fn set(&mut self, cv: CondVarId) -> bool {
        !std::mem::replace(self.state.entry(cv).or_insert(false), true)
    }

    /// Clears `cv`. Returns `true` if the value changed.
    pub fn clear(&mut self, cv: CondVarId) -> bool {
        match self.state.get_mut(&cv) {
            Some(v) => std::mem::replace(v, false),
            None => false,
        }
    }

    /// Whether every variable in `waits` is set (the wait condition of a
    /// `Code_EU` about to start).
    pub fn all_set(&self, waits: &[CondVarId]) -> bool {
        waits.iter().all(|cv| self.is_set(*cv))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_variable_reads_false() {
        let t = CondVarTable::new();
        assert!(!t.is_set(CondVarId(42)));
    }

    #[test]
    fn set_and_clear_report_changes() {
        let mut t = CondVarTable::new();
        let cv = CondVarId(1);
        assert!(t.set(cv), "first set changes");
        assert!(!t.set(cv), "second set is a no-op");
        assert!(t.clear(cv), "clear after set changes");
        assert!(!t.clear(cv), "second clear is a no-op");
        assert!(!t.clear(CondVarId(9)), "clearing unknown is a no-op");
    }

    #[test]
    fn all_set_requires_every_variable() {
        let mut t = CondVarTable::new();
        let a = CondVarId(0);
        let b = CondVarId(1);
        assert!(t.all_set(&[]), "empty wait list is satisfied");
        t.set(a);
        assert!(t.all_set(&[a]));
        assert!(!t.all_set(&[a, b]));
        t.set(b);
        assert!(t.all_set(&[a, b]));
    }

    #[test]
    fn display_format() {
        assert_eq!(CondVarId(3).to_string(), "cv3");
    }
}
