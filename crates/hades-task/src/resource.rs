//! Resources and access modes (Section 3.1.1 of the paper).
//!
//! A *resource* is any hardware or software component an action needs:
//! a lock, a sensor, an actuator, a DMA engine. Resources are **local to a
//! processor** — remote interactions go through precedence constraints and
//! the network task instead. Traditional access modes (shared / exclusive)
//! control simultaneous use and feed the resource-sharing analyses
//! (PCP ceilings, SRP preemption levels).

use crate::attrs::ProcessorId;
use std::fmt;

/// Identifier of a resource within the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ResourceId(pub u32);

impl fmt::Display for ResourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// How an elementary unit uses a resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessMode {
    /// Multiple concurrent readers allowed.
    Shared,
    /// Exclusive use.
    Exclusive,
}

impl AccessMode {
    /// Whether a holder in mode `self` is compatible with a second holder in
    /// mode `other`.
    pub fn compatible_with(self, other: AccessMode) -> bool {
        matches!((self, other), (AccessMode::Shared, AccessMode::Shared))
    }
}

/// One resource requirement of a `Code_EU`: the resource and the mode.
///
/// All resources of a unit are acquired *before* the unit starts and
/// released when it ends — actions themselves may not synchronize
/// (Section 3.3), which is what keeps their WCET analysable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ResourceUse {
    /// The resource.
    pub id: ResourceId,
    /// Required access mode.
    pub mode: AccessMode,
}

impl ResourceUse {
    /// A shared-mode requirement.
    pub fn shared(id: ResourceId) -> Self {
        ResourceUse {
            id,
            mode: AccessMode::Shared,
        }
    }

    /// An exclusive-mode requirement.
    pub fn exclusive(id: ResourceId) -> Self {
        ResourceUse {
            id,
            mode: AccessMode::Exclusive,
        }
    }
}

/// Descriptor of a resource: where it lives and what it is called.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceDescriptor {
    /// The resource id.
    pub id: ResourceId,
    /// Human-readable name.
    pub name: String,
    /// The processor the resource is local to.
    pub processor: ProcessorId,
}

impl ResourceDescriptor {
    /// Creates a descriptor.
    pub fn new(id: ResourceId, name: impl Into<String>, processor: ProcessorId) -> Self {
        ResourceDescriptor {
            id,
            name: name.into(),
            processor,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_shared_is_compatible() {
        assert!(AccessMode::Shared.compatible_with(AccessMode::Shared));
    }

    #[test]
    fn exclusive_conflicts_with_everything() {
        assert!(!AccessMode::Exclusive.compatible_with(AccessMode::Exclusive));
        assert!(!AccessMode::Exclusive.compatible_with(AccessMode::Shared));
        assert!(!AccessMode::Shared.compatible_with(AccessMode::Exclusive));
    }

    #[test]
    fn constructors_set_modes() {
        let r = ResourceId(3);
        assert_eq!(ResourceUse::shared(r).mode, AccessMode::Shared);
        assert_eq!(ResourceUse::exclusive(r).mode, AccessMode::Exclusive);
        assert_eq!(ResourceUse::shared(r).id, r);
    }

    #[test]
    fn descriptor_holds_fields() {
        let d = ResourceDescriptor::new(ResourceId(1), "adc", ProcessorId(2));
        assert_eq!(d.name, "adc");
        assert_eq!(d.processor, ProcessorId(2));
        assert_eq!(d.id.to_string(), "r1");
    }
}
