//! Tasks and task sets.
//!
//! A [`Task`] pairs a HEUG with its arrival law and relative deadline; a
//! [`TaskSet`] collects the tasks of one application (or of the middleware
//! itself — services and schedulers are tasks too) and validates
//! cross-task references such as `Inv_EU` targets.

use crate::arrival::ArrivalLaw;
use crate::eu::Eu;
use crate::graph::Heug;
use hades_time::Duration;
use std::collections::HashMap;
use std::fmt;

/// Identifier of a task within a [`TaskSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u32);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// A task: a HEUG plus its activation law and relative deadline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Task {
    /// The task id, unique within its set.
    pub id: TaskId,
    /// Structure of the task.
    pub heug: Heug,
    /// Arrival law of activation requests.
    pub arrival: ArrivalLaw,
    /// Deadline relative to the activation request.
    pub deadline: Duration,
}

impl Task {
    /// Creates a task.
    ///
    /// # Panics
    ///
    /// Panics if `deadline` is zero.
    pub fn new(id: TaskId, heug: Heug, arrival: ArrivalLaw, deadline: Duration) -> Self {
        assert!(!deadline.is_zero(), "task deadline must be positive");
        Task {
            id,
            heug,
            arrival,
            deadline,
        }
    }

    /// The task name (from its HEUG).
    pub fn name(&self) -> &str {
        self.heug.name()
    }

    /// Total worst-case execution demand of one instance (all processors).
    pub fn wcet(&self) -> Duration {
        self.heug.total_wcet()
    }

    /// Long-run CPU utilisation of this task (`C/P`), `None` for aperiodic
    /// tasks.
    pub fn utilization(&self) -> Option<f64> {
        self.arrival
            .min_separation()
            .map(|p| self.wcet().as_nanos() as f64 / p.as_nanos() as f64)
    }

    /// Whether the deadline is no later than the (pseudo-)period
    /// ("constrained deadline" in scheduling-theory terms).
    pub fn has_constrained_deadline(&self) -> bool {
        match self.arrival.min_separation() {
            Some(p) => self.deadline <= p,
            None => false,
        }
    }
}

/// Validation failure for a task set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskSetError {
    /// Two tasks share an id.
    DuplicateId(TaskId),
    /// An `Inv_EU` invokes a task missing from the set.
    UnknownInvocationTarget {
        /// The invoking task.
        from: TaskId,
        /// The missing invocation target.
        target: TaskId,
    },
    /// The invocation relation is cyclic (worst-case demand would be
    /// unbounded).
    InvocationCycle(TaskId),
}

impl fmt::Display for TaskSetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskSetError::DuplicateId(id) => write!(f, "duplicate task id {id}"),
            TaskSetError::UnknownInvocationTarget { from, target } => {
                write!(f, "task {from} invokes unknown task {target}")
            }
            TaskSetError::InvocationCycle(id) => {
                write!(f, "invocation cycle through task {id}")
            }
        }
    }
}

impl std::error::Error for TaskSetError {}

/// A validated collection of tasks.
///
/// # Examples
///
/// ```
/// use hades_task::prelude::*;
///
/// let t = Task::new(
///     TaskId(0),
///     Heug::single(CodeEu::new("beat", Duration::from_micros(100), ProcessorId(0)))?,
///     ArrivalLaw::Periodic(Duration::from_millis(1)),
///     Duration::from_millis(1),
/// );
/// let set = TaskSet::new(vec![t])?;
/// assert_eq!(set.len(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TaskSet {
    tasks: Vec<Task>,
    by_id: HashMap<TaskId, usize>,
}

impl TaskSet {
    /// Validates and builds a task set.
    ///
    /// # Errors
    ///
    /// Returns a [`TaskSetError`] on duplicate ids, dangling invocation
    /// targets or invocation cycles.
    pub fn new(tasks: Vec<Task>) -> Result<TaskSet, TaskSetError> {
        let mut by_id = HashMap::new();
        for (i, t) in tasks.iter().enumerate() {
            if by_id.insert(t.id, i).is_some() {
                return Err(TaskSetError::DuplicateId(t.id));
            }
        }
        // Validate invocation targets and acyclicity (DFS three-colour).
        for t in &tasks {
            for eu in t.heug.eus() {
                if let Eu::Inv(inv) = eu {
                    if !by_id.contains_key(&inv.target) {
                        return Err(TaskSetError::UnknownInvocationTarget {
                            from: t.id,
                            target: inv.target,
                        });
                    }
                }
            }
        }
        let set = TaskSet { tasks, by_id };
        set.check_invocation_acyclic()?;
        Ok(set)
    }

    fn check_invocation_acyclic(&self) -> Result<(), TaskSetError> {
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Grey,
            Black,
        }
        let mut color: HashMap<TaskId, Color> =
            self.tasks.iter().map(|t| (t.id, Color::White)).collect();
        // Iterative DFS with an explicit stack.
        for root in self.tasks.iter().map(|t| t.id) {
            if color[&root] != Color::White {
                continue;
            }
            let mut stack = vec![(root, 0usize)];
            color.insert(root, Color::Grey);
            while let Some((tid, child_pos)) = stack.pop() {
                let children = self.invocation_targets(tid);
                if child_pos < children.len() {
                    stack.push((tid, child_pos + 1));
                    let child = children[child_pos];
                    match color[&child] {
                        Color::Grey => return Err(TaskSetError::InvocationCycle(child)),
                        Color::White => {
                            color.insert(child, Color::Grey);
                            stack.push((child, 0));
                        }
                        Color::Black => {}
                    }
                } else {
                    color.insert(tid, Color::Black);
                }
            }
        }
        Ok(())
    }

    /// Tasks a given task invokes (deduplicated, in target order).
    pub fn invocation_targets(&self, id: TaskId) -> Vec<TaskId> {
        let Some(task) = self.get(id) else {
            return Vec::new();
        };
        let mut out: Vec<TaskId> = task
            .heug
            .eus()
            .iter()
            .filter_map(|e| e.as_inv())
            .map(|i| i.target)
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// The task with the given id.
    pub fn get(&self, id: TaskId) -> Option<&Task> {
        self.by_id.get(&id).map(|i| &self.tasks[*i])
    }

    /// All tasks, in insertion order.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Iterates over the tasks.
    pub fn iter(&self) -> std::slice::Iter<'_, Task> {
        self.tasks.iter()
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Total utilisation of tasks with bounded arrival laws; aperiodic
    /// tasks contribute nothing (they are handled by planning or
    /// best-effort policies).
    pub fn utilization(&self) -> f64 {
        self.tasks.iter().filter_map(Task::utilization).sum()
    }
}

impl<'a> IntoIterator for &'a TaskSet {
    type Item = &'a Task;
    type IntoIter = std::slice::Iter<'a, Task>;
    fn into_iter(self) -> Self::IntoIter {
        self.tasks.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::ProcessorId;
    use crate::eu::{CodeEu, InvEu};
    use crate::graph::HeugBuilder;

    fn simple_task(id: u32, wcet_us: u64, period_ms: u64) -> Task {
        Task::new(
            TaskId(id),
            Heug::single(CodeEu::new(
                format!("t{id}"),
                Duration::from_micros(wcet_us),
                ProcessorId(0),
            ))
            .unwrap(),
            ArrivalLaw::Periodic(Duration::from_millis(period_ms)),
            Duration::from_millis(period_ms),
        )
    }

    fn invoking_task(id: u32, target: u32) -> Task {
        let mut b = HeugBuilder::new(format!("t{id}"));
        let c = b.code_eu(CodeEu::new("pre", Duration::from_micros(1), ProcessorId(0)));
        let i = b.inv_eu(InvEu::sync("call", TaskId(target), ProcessorId(0)));
        b.precede(c, i);
        Task::new(
            TaskId(id),
            b.build().unwrap(),
            ArrivalLaw::Aperiodic,
            Duration::from_millis(1),
        )
    }

    #[test]
    fn task_utilization_and_deadlines() {
        let t = simple_task(0, 100, 1);
        assert_eq!(t.wcet(), Duration::from_micros(100));
        assert!((t.utilization().unwrap() - 0.1).abs() < 1e-9);
        assert!(t.has_constrained_deadline());
        assert_eq!(t.name(), "t0");
    }

    #[test]
    fn aperiodic_task_has_no_utilization() {
        let t = invoking_task(0, 0);
        // self-invocation is a cycle; build the set check separately
        assert_eq!(t.utilization(), None);
        assert!(!t.has_constrained_deadline());
    }

    #[test]
    #[should_panic(expected = "deadline must be positive")]
    fn zero_deadline_rejected() {
        let heug =
            Heug::single(CodeEu::new("x", Duration::from_micros(1), ProcessorId(0))).unwrap();
        let _ = Task::new(TaskId(0), heug, ArrivalLaw::Aperiodic, Duration::ZERO);
    }

    #[test]
    fn set_rejects_duplicate_ids() {
        let err = TaskSet::new(vec![simple_task(1, 1, 1), simple_task(1, 2, 2)]).unwrap_err();
        assert_eq!(err, TaskSetError::DuplicateId(TaskId(1)));
    }

    #[test]
    fn set_rejects_unknown_invocation_target() {
        let err = TaskSet::new(vec![invoking_task(0, 9)]).unwrap_err();
        assert_eq!(
            err,
            TaskSetError::UnknownInvocationTarget {
                from: TaskId(0),
                target: TaskId(9),
            }
        );
    }

    #[test]
    fn set_rejects_invocation_cycles() {
        // 0 → 1 → 2 → 0
        let err = TaskSet::new(vec![
            invoking_task(0, 1),
            invoking_task(1, 2),
            invoking_task(2, 0),
        ])
        .unwrap_err();
        assert!(matches!(err, TaskSetError::InvocationCycle(_)));
    }

    #[test]
    fn set_accepts_invocation_dag() {
        // 0 → 2, 1 → 2 is a DAG.
        let set = TaskSet::new(vec![
            invoking_task(0, 2),
            invoking_task(1, 2),
            simple_task(2, 10, 5),
        ])
        .unwrap();
        assert_eq!(set.len(), 3);
        assert_eq!(set.invocation_targets(TaskId(0)), vec![TaskId(2)]);
        assert!(set.invocation_targets(TaskId(2)).is_empty());
    }

    #[test]
    fn set_utilization_sums_periodic_tasks() {
        let set = TaskSet::new(vec![simple_task(0, 100, 1), simple_task(1, 200, 1)]).unwrap();
        assert!((set.utilization() - 0.3).abs() < 1e-9);
    }

    #[test]
    fn lookup_and_iteration() {
        let set = TaskSet::new(vec![simple_task(3, 1, 1), simple_task(7, 1, 1)]).unwrap();
        assert!(set.get(TaskId(7)).is_some());
        assert!(set.get(TaskId(8)).is_none());
        assert_eq!(set.iter().count(), 2);
        assert_eq!((&set).into_iter().count(), 2);
        assert!(!set.is_empty());
    }

    #[test]
    fn error_display() {
        let e = TaskSetError::UnknownInvocationTarget {
            from: TaskId(0),
            target: TaskId(1),
        };
        assert!(e.to_string().contains("T0"));
        assert!(e.to_string().contains("T1"));
        assert!(TaskSetError::InvocationCycle(TaskId(2))
            .to_string()
            .contains("cycle"));
    }
}
