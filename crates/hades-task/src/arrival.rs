//! Task activation arrival laws (Section 3.1.2 of the paper).
//!
//! Activation requests for a task may be triggered by an `Inv_EU`, a timer
//! or an interrupt, and follow one of three laws: **periodic** (fixed
//! separation), **sporadic** (minimum separation, the *pseudo-period*) or
//! **aperiodic** (arbitrary). The dispatcher uses the declared law for
//! monitoring: an activation arriving earlier than the law permits is an
//! *arrival-law violation* alarm.

use hades_time::{Duration, Time};

/// The arrival law of a task's activation requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalLaw {
    /// Successive activations separated by exactly the period.
    Periodic(Duration),
    /// Successive activations separated by at least the pseudo-period.
    Sporadic(Duration),
    /// Arbitrary separation.
    Aperiodic,
}

impl ArrivalLaw {
    /// The minimum separation guaranteed between activations, if any.
    pub fn min_separation(&self) -> Option<Duration> {
        match self {
            ArrivalLaw::Periodic(p) | ArrivalLaw::Sporadic(p) => Some(*p),
            ArrivalLaw::Aperiodic => None,
        }
    }

    /// Whether an activation at `now`, following one at `prev`, respects
    /// the law.
    pub fn permits(&self, prev: Time, now: Time) -> bool {
        match self {
            ArrivalLaw::Periodic(p) | ArrivalLaw::Sporadic(p) => now >= prev.saturating_add(*p),
            ArrivalLaw::Aperiodic => true,
        }
    }

    /// Worst-case number of activations in a window of length `t`
    /// (`⌈t / p⌉`); `None` for aperiodic laws, whose density is unbounded.
    pub fn max_arrivals_in(&self, t: Duration) -> Option<u64> {
        self.min_separation().map(|p| t.div_ceil(p))
    }

    /// Whether this law is periodic.
    pub fn is_periodic(&self) -> bool {
        matches!(self, ArrivalLaw::Periodic(_))
    }
}

/// Generator of the activation instants of a periodic task with an offset,
/// used by experiment drivers and the validation harness.
///
/// # Examples
///
/// ```
/// use hades_task::arrival::periodic_activations;
/// use hades_time::{Duration, Time};
///
/// let acts = periodic_activations(
///     Time::ZERO,
///     Duration::from_millis(10),
///     Time::from_nanos(25_000_000),
/// );
/// assert_eq!(acts.len(), 3); // t = 0, 10 ms, 20 ms
/// ```
pub fn periodic_activations(offset: Time, period: Duration, until: Time) -> Vec<Time> {
    assert!(!period.is_zero(), "period must be positive");
    let mut out = Vec::new();
    let mut t = offset;
    while t <= until {
        out.push(t);
        match t.checked_add(period) {
            Some(next) => t = next,
            None => break,
        }
    }
    out
}

/// Run-time monitor of one task's arrival law: feeds the dispatcher's
/// arrival-law-violation detection (Section 3.2.1, event ii).
#[derive(Debug, Clone, Copy, Default)]
pub struct ArrivalMonitor {
    last: Option<Time>,
    violations: u32,
}

impl ArrivalMonitor {
    /// Creates a monitor that has seen no activations.
    pub fn new() -> Self {
        ArrivalMonitor::default()
    }

    /// Records an activation at `now` under `law`. Returns `true` if the
    /// activation violates the law.
    pub fn observe(&mut self, law: ArrivalLaw, now: Time) -> bool {
        let violated = match self.last {
            Some(prev) => !law.permits(prev, now),
            None => false,
        };
        if violated {
            self.violations += 1;
        }
        self.last = Some(now);
        violated
    }

    /// Number of violations observed so far.
    pub fn violations(&self) -> u32 {
        self.violations
    }

    /// Time of the last observed activation.
    pub fn last_activation(&self) -> Option<Time> {
        self.last
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MS: Duration = Duration::from_millis(1);

    #[test]
    fn min_separation_by_law() {
        assert_eq!(ArrivalLaw::Periodic(MS).min_separation(), Some(MS));
        assert_eq!(ArrivalLaw::Sporadic(MS).min_separation(), Some(MS));
        assert_eq!(ArrivalLaw::Aperiodic.min_separation(), None);
    }

    #[test]
    fn permits_enforces_separation() {
        let law = ArrivalLaw::Sporadic(MS);
        let t0 = Time::ZERO;
        assert!(law.permits(t0, t0 + MS));
        assert!(law.permits(t0, t0 + MS * 5));
        assert!(!law.permits(t0, t0 + MS - Duration::from_nanos(1)));
        assert!(ArrivalLaw::Aperiodic.permits(t0, t0));
    }

    #[test]
    fn max_arrivals_uses_ceiling() {
        let law = ArrivalLaw::Periodic(MS);
        assert_eq!(law.max_arrivals_in(MS * 10), Some(10));
        assert_eq!(
            law.max_arrivals_in(MS * 10 + Duration::from_nanos(1)),
            Some(11)
        );
        assert_eq!(ArrivalLaw::Aperiodic.max_arrivals_in(MS), None);
    }

    #[test]
    fn periodic_activation_list() {
        let acts = periodic_activations(Time::from_nanos(500), MS, Time::from_nanos(2_500_000));
        assert_eq!(
            acts,
            vec![
                Time::from_nanos(500),
                Time::from_nanos(1_000_500),
                Time::from_nanos(2_000_500),
            ]
        );
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_activations_panics() {
        periodic_activations(Time::ZERO, Duration::ZERO, Time::MAX);
    }

    #[test]
    fn monitor_counts_violations() {
        let law = ArrivalLaw::Sporadic(MS);
        let mut m = ArrivalMonitor::new();
        assert!(!m.observe(law, Time::ZERO), "first activation always legal");
        assert!(m.observe(law, Time::from_nanos(10)), "too soon");
        assert!(!m.observe(law, Time::from_nanos(10 + 1_000_000)));
        assert_eq!(m.violations(), 1);
        assert_eq!(m.last_activation(), Some(Time::from_nanos(1_000_010)));
    }

    #[test]
    fn monitor_aperiodic_never_violates() {
        let mut m = ArrivalMonitor::new();
        for i in 0..5 {
            assert!(!m.observe(ArrivalLaw::Aperiodic, Time::from_nanos(i)));
        }
        assert_eq!(m.violations(), 0);
    }

    #[test]
    fn is_periodic_flag() {
        assert!(ArrivalLaw::Periodic(MS).is_periodic());
        assert!(!ArrivalLaw::Sporadic(MS).is_periodic());
        assert!(!ArrivalLaw::Aperiodic.is_periodic());
    }
}
