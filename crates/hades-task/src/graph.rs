//! The HEUG directed acyclic graph and its builder.
//!
//! A HEUG connects elementary units by *precedence constraints*: `eu_b` may
//! start only once `eu_a` has finished. Constraints may carry parameters
//! (modelled by a payload size) and are *local* when both ends share a
//! processor, *remote* otherwise — a remote constraint is materialised at
//! run time by an invocation of the network-management task `msg_task`
//! (Section 3.1 of the paper).

use crate::attrs::ProcessorId;
use crate::eu::{CodeEu, Eu, EuIndex, InvEu};
use hades_time::Duration;
use std::collections::HashSet;
use std::fmt;

/// A precedence constraint between two units of the same HEUG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Precedence {
    /// The unit that must finish first.
    pub from: EuIndex,
    /// The unit that may then start.
    pub to: EuIndex,
    /// Size of the parameters transferred along the constraint, in bytes
    /// (zero for pure ordering).
    pub payload_bytes: u64,
}

/// Validation failure when building a HEUG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The graph has no units.
    Empty,
    /// A precedence endpoint refers to a unit that does not exist.
    DanglingEndpoint(EuIndex),
    /// A self-loop `eu → eu` was declared.
    SelfLoop(EuIndex),
    /// The same constraint was declared twice.
    DuplicateEdge(EuIndex, EuIndex),
    /// The precedence relation contains a cycle through the given unit.
    Cycle(EuIndex),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Empty => write!(f, "HEUG has no elementary units"),
            GraphError::DanglingEndpoint(eu) => {
                write!(f, "precedence constraint references unknown unit {eu}")
            }
            GraphError::SelfLoop(eu) => write!(f, "self-loop on unit {eu}"),
            GraphError::DuplicateEdge(a, b) => {
                write!(f, "duplicate precedence constraint {a} -> {b}")
            }
            GraphError::Cycle(eu) => write!(f, "precedence cycle through unit {eu}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// Incremental builder for a [`Heug`].
///
/// See the crate-level example.
#[derive(Debug, Clone, Default)]
pub struct HeugBuilder {
    name: String,
    eus: Vec<Eu>,
    edges: Vec<Precedence>,
}

impl HeugBuilder {
    /// Starts building a HEUG with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        HeugBuilder {
            name: name.into(),
            eus: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Adds a code unit; returns its index.
    pub fn code_eu(&mut self, eu: CodeEu) -> EuIndex {
        self.eus.push(Eu::Code(eu));
        EuIndex(self.eus.len() as u32 - 1)
    }

    /// Adds an invocation unit; returns its index.
    pub fn inv_eu(&mut self, eu: InvEu) -> EuIndex {
        self.eus.push(Eu::Inv(eu));
        EuIndex(self.eus.len() as u32 - 1)
    }

    /// Declares a pure-ordering precedence constraint `from → to`.
    pub fn precede(&mut self, from: EuIndex, to: EuIndex) -> &mut Self {
        self.precede_with(from, to, 0)
    }

    /// Declares a precedence constraint carrying `payload_bytes` of
    /// parameters.
    pub fn precede_with(&mut self, from: EuIndex, to: EuIndex, payload_bytes: u64) -> &mut Self {
        self.edges.push(Precedence {
            from,
            to,
            payload_bytes,
        });
        self
    }

    /// Validates and freezes the graph.
    ///
    /// # Errors
    ///
    /// Returns a [`GraphError`] if the graph is empty, an edge references a
    /// missing unit, a self-loop or duplicate edge exists, or the relation
    /// is cyclic.
    pub fn build(self) -> Result<Heug, GraphError> {
        let n = self.eus.len();
        if n == 0 {
            return Err(GraphError::Empty);
        }
        let mut seen = HashSet::new();
        for e in &self.edges {
            if e.from.0 as usize >= n {
                return Err(GraphError::DanglingEndpoint(e.from));
            }
            if e.to.0 as usize >= n {
                return Err(GraphError::DanglingEndpoint(e.to));
            }
            if e.from == e.to {
                return Err(GraphError::SelfLoop(e.from));
            }
            if !seen.insert((e.from, e.to)) {
                return Err(GraphError::DuplicateEdge(e.from, e.to));
            }
        }
        // Kahn's algorithm: compute a topological order, detect cycles.
        let mut indeg = vec![0usize; n];
        let mut succs = vec![Vec::new(); n];
        for e in &self.edges {
            indeg[e.to.0 as usize] += 1;
            succs[e.from.0 as usize].push(e.to);
        }
        let mut ready: Vec<usize> = (0..n).filter(|i| indeg[*i] == 0).collect();
        ready.reverse(); // pop from the back yields ascending indices
        let mut order = Vec::with_capacity(n);
        while let Some(i) = ready.pop() {
            order.push(EuIndex(i as u32));
            for s in &succs[i] {
                indeg[s.0 as usize] -= 1;
                if indeg[s.0 as usize] == 0 {
                    ready.push(s.0 as usize);
                }
            }
            ready.sort_unstable_by(|a, b| b.cmp(a));
        }
        if order.len() != n {
            let stuck = indeg
                .iter()
                .position(|d| *d > 0)
                .expect("cycle implies positive in-degree");
            return Err(GraphError::Cycle(EuIndex(stuck as u32)));
        }
        Ok(Heug {
            name: self.name,
            eus: self.eus,
            edges: self.edges,
            topo: order,
        })
    }
}

/// A validated HEUG: the elementary-unit DAG of one task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Heug {
    name: String,
    eus: Vec<Eu>,
    edges: Vec<Precedence>,
    topo: Vec<EuIndex>,
}

impl Heug {
    /// A single-action HEUG — the common case for simple periodic tasks.
    ///
    /// # Errors
    ///
    /// Never fails for a well-formed `CodeEu`; the `Result` mirrors
    /// [`HeugBuilder::build`].
    pub fn single(eu: CodeEu) -> Result<Heug, GraphError> {
        let name = eu.name.clone();
        let mut b = HeugBuilder::new(name);
        b.code_eu(eu);
        b.build()
    }

    /// The task name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All units, indexable by [`EuIndex`].
    pub fn eus(&self) -> &[Eu] {
        &self.eus
    }

    /// The unit at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range (indices come from the builder, so
    /// this indicates a cross-HEUG mix-up).
    pub fn eu(&self, idx: EuIndex) -> &Eu {
        &self.eus[idx.0 as usize]
    }

    /// All precedence constraints.
    pub fn edges(&self) -> &[Precedence] {
        &self.edges
    }

    /// Number of units.
    pub fn len(&self) -> usize {
        self.eus.len()
    }

    /// Whether the HEUG has no units (never true for a built graph).
    pub fn is_empty(&self) -> bool {
        self.eus.is_empty()
    }

    /// A topological order of the units (deterministic: ties resolve to the
    /// lowest index first).
    pub fn topological_order(&self) -> &[EuIndex] {
        &self.topo
    }

    /// Direct predecessors of `idx`.
    pub fn predecessors(&self, idx: EuIndex) -> Vec<EuIndex> {
        self.edges
            .iter()
            .filter(|e| e.to == idx)
            .map(|e| e.from)
            .collect()
    }

    /// Direct successors of `idx`.
    pub fn successors(&self, idx: EuIndex) -> Vec<EuIndex> {
        self.edges
            .iter()
            .filter(|e| e.from == idx)
            .map(|e| e.to)
            .collect()
    }

    /// Units with no predecessors (started at task activation).
    pub fn sources(&self) -> Vec<EuIndex> {
        (0..self.eus.len() as u32)
            .map(EuIndex)
            .filter(|i| self.predecessors(*i).is_empty())
            .collect()
    }

    /// Units with no successors (task completes when all have finished).
    pub fn sinks(&self) -> Vec<EuIndex> {
        (0..self.eus.len() as u32)
            .map(EuIndex)
            .filter(|i| self.successors(*i).is_empty())
            .collect()
    }

    /// Whether a constraint is *local* (both ends on one processor).
    pub fn is_local(&self, edge: &Precedence) -> bool {
        self.eu(edge.from).processor() == self.eu(edge.to).processor()
    }

    /// The remote constraints — each materialised by a `msg_task`
    /// invocation at run time.
    pub fn remote_edges(&self) -> Vec<Precedence> {
        self.edges
            .iter()
            .filter(|e| !self.is_local(e))
            .copied()
            .collect()
    }

    /// The set of processors this HEUG touches.
    pub fn processors(&self) -> Vec<ProcessorId> {
        let mut ps: Vec<ProcessorId> = self.eus.iter().map(|e| e.processor()).collect();
        ps.sort();
        ps.dedup();
        ps
    }

    /// Sum of code-unit WCETs on `processor` — the per-processor demand
    /// this task contributes to a feasibility test.
    pub fn wcet_on(&self, processor: ProcessorId) -> Duration {
        self.eus
            .iter()
            .filter_map(Eu::as_code)
            .filter(|c| c.processor == processor)
            .map(|c| c.wcet)
            .sum()
    }

    /// Sum of all code-unit WCETs.
    pub fn total_wcet(&self) -> Duration {
        self.eus
            .iter()
            .filter_map(Eu::as_code)
            .map(|c| c.wcet)
            .sum()
    }

    /// Sets the base priority of every code unit (raising thresholds to at
    /// least the new priority). Used by static policies (RM, DM) to install
    /// their offline priority assignment.
    pub fn assign_priority(&mut self, prio: crate::attrs::Priority) {
        for eu in &mut self.eus {
            if let Eu::Code(c) = eu {
                c.timing.prio = prio;
                c.timing.pt = c.timing.pt.max(prio);
            }
        }
    }

    /// Length (total WCET) of the longest precedence chain — a lower bound
    /// on the task's response time even on infinitely many processors.
    pub fn critical_path(&self) -> Duration {
        let mut dist = vec![Duration::ZERO; self.eus.len()];
        for idx in &self.topo {
            let own = self
                .eu(*idx)
                .as_code()
                .map(|c| c.wcet)
                .unwrap_or(Duration::ZERO);
            let pred_max = self
                .predecessors(*idx)
                .into_iter()
                .map(|p| dist[p.0 as usize])
                .fold(Duration::ZERO, Duration::max);
            dist[idx.0 as usize] = pred_max + own;
        }
        dist.into_iter().fold(Duration::ZERO, Duration::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::ProcessorId;

    fn code(name: &str, us: u64, p: u32) -> CodeEu {
        CodeEu::new(name, Duration::from_micros(us), ProcessorId(p))
    }

    fn diamond() -> Heug {
        // a → b, a → c, b → d, c → d
        let mut b = HeugBuilder::new("diamond");
        let a = b.code_eu(code("a", 10, 0));
        let x = b.code_eu(code("b", 20, 0));
        let y = b.code_eu(code("c", 30, 1));
        let d = b.code_eu(code("d", 40, 0));
        b.precede(a, x).precede(a, y).precede(x, d).precede(y, d);
        b.build().unwrap()
    }

    #[test]
    fn builds_and_orders_diamond() {
        let g = diamond();
        assert_eq!(g.len(), 4);
        let topo = g.topological_order();
        assert_eq!(topo[0], EuIndex(0));
        assert_eq!(topo[3], EuIndex(3));
        assert_eq!(g.sources(), vec![EuIndex(0)]);
        assert_eq!(g.sinks(), vec![EuIndex(3)]);
    }

    #[test]
    fn predecessors_and_successors() {
        let g = diamond();
        assert_eq!(g.predecessors(EuIndex(3)), vec![EuIndex(1), EuIndex(2)]);
        assert_eq!(g.successors(EuIndex(0)), vec![EuIndex(1), EuIndex(2)]);
        assert!(g.predecessors(EuIndex(0)).is_empty());
    }

    #[test]
    fn local_and_remote_edges() {
        let g = diamond();
        let remote = g.remote_edges();
        // a(p0)→c(p1) and c(p1)→d(p0) are remote.
        assert_eq!(remote.len(), 2);
        assert!(remote
            .iter()
            .any(|e| e.from == EuIndex(0) && e.to == EuIndex(2)));
        assert!(remote
            .iter()
            .any(|e| e.from == EuIndex(2) && e.to == EuIndex(3)));
        assert_eq!(g.processors(), vec![ProcessorId(0), ProcessorId(1)]);
    }

    #[test]
    fn wcet_accounting() {
        let g = diamond();
        assert_eq!(g.wcet_on(ProcessorId(0)), Duration::from_micros(70));
        assert_eq!(g.wcet_on(ProcessorId(1)), Duration::from_micros(30));
        assert_eq!(g.total_wcet(), Duration::from_micros(100));
        // Critical path a→c→d = 10+30+40 = 80.
        assert_eq!(g.critical_path(), Duration::from_micros(80));
    }

    #[test]
    fn empty_graph_rejected() {
        assert_eq!(
            HeugBuilder::new("e").build().unwrap_err(),
            GraphError::Empty
        );
    }

    #[test]
    fn dangling_edge_rejected() {
        let mut b = HeugBuilder::new("d");
        let a = b.code_eu(code("a", 1, 0));
        b.precede(a, EuIndex(9));
        assert_eq!(
            b.build().unwrap_err(),
            GraphError::DanglingEndpoint(EuIndex(9))
        );
    }

    #[test]
    fn self_loop_rejected() {
        let mut b = HeugBuilder::new("s");
        let a = b.code_eu(code("a", 1, 0));
        b.precede(a, a);
        assert_eq!(b.build().unwrap_err(), GraphError::SelfLoop(a));
    }

    #[test]
    fn duplicate_edge_rejected() {
        let mut b = HeugBuilder::new("dup");
        let a = b.code_eu(code("a", 1, 0));
        let c = b.code_eu(code("b", 1, 0));
        b.precede(a, c).precede(a, c);
        assert_eq!(b.build().unwrap_err(), GraphError::DuplicateEdge(a, c));
    }

    #[test]
    fn cycle_rejected() {
        let mut b = HeugBuilder::new("cyc");
        let a = b.code_eu(code("a", 1, 0));
        let c = b.code_eu(code("b", 1, 0));
        let d = b.code_eu(code("c", 1, 0));
        b.precede(a, c).precede(c, d).precede(d, a);
        assert!(matches!(b.build().unwrap_err(), GraphError::Cycle(_)));
    }

    #[test]
    fn single_action_heug() {
        let g = Heug::single(code("only", 5, 0)).unwrap();
        assert_eq!(g.len(), 1);
        assert_eq!(g.name(), "only");
        assert_eq!(g.sources(), g.sinks());
        assert_eq!(g.critical_path(), Duration::from_micros(5));
        assert!(!g.is_empty());
    }

    #[test]
    fn error_display_messages() {
        assert!(GraphError::Empty
            .to_string()
            .contains("no elementary units"));
        assert!(GraphError::SelfLoop(EuIndex(1)).to_string().contains("eu1"));
        assert!(GraphError::Cycle(EuIndex(2)).to_string().contains("cycle"));
        assert!(GraphError::DuplicateEdge(EuIndex(0), EuIndex(1))
            .to_string()
            .contains("duplicate"));
    }

    #[test]
    fn payload_bytes_preserved() {
        let mut b = HeugBuilder::new("p");
        let a = b.code_eu(code("a", 1, 0));
        let c = b.code_eu(code("b", 1, 1));
        b.precede_with(a, c, 128);
        let g = b.build().unwrap();
        assert_eq!(g.edges()[0].payload_bytes, 128);
        assert!(!g.is_local(&g.edges()[0]));
    }
}
