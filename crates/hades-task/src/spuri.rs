//! Spuri's task model and its translation to HEUGs (Figure 3, Section 5).
//!
//! The worked example of the paper schedules *sporadic tasks with arbitrary
//! deadlines and resource sharing* per Spuri's EDF analysis \[Spu96\]. Each
//! task `i` has a worst-case computation time `Cᵢ` split around one critical
//! section on resource `S`:
//!
//! ```text
//! Cᵢ = c_beforeᵢ + csᵢ + c_afterᵢ
//! ```
//!
//! plus a deadline `Dᵢ`, a pseudo-period `pᵢ` and a worst-case blocking time
//! `Bᵢ` from resource sharing. Figure 3 translates such a task into a HEUG
//! of three chained `Code_EU`s, the middle one holding the resource, with
//! `latest = B'ᵢ` on the first unit and the task deadline `D = Dᵢ`.

use crate::arrival::ArrivalLaw;
use crate::attrs::{EuTiming, Priority, ProcessorId};
use crate::eu::CodeEu;
use crate::graph::{GraphError, Heug};
use crate::resource::{ResourceId, ResourceUse};
use crate::task::{Task, TaskId};
use hades_time::Duration;

/// One task of Spuri's model (Section 5.1 of the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpuriTask {
    /// Task identifier.
    pub id: TaskId,
    /// Name used for the generated HEUG.
    pub name: String,
    /// Computation before the critical section (`c_beforeᵢ`).
    pub c_before: Duration,
    /// Critical-section length on `resource` (`csᵢ`); zero means the task
    /// uses no resource.
    pub cs: Duration,
    /// Computation after the critical section (`c_afterᵢ`).
    pub c_after: Duration,
    /// The shared resource `S`, if `cs` is non-zero.
    pub resource: Option<ResourceId>,
    /// Relative deadline `Dᵢ` (arbitrary: may exceed the pseudo-period).
    pub deadline: Duration,
    /// Pseudo-period `pᵢ` (minimum inter-arrival separation).
    pub pseudo_period: Duration,
    /// Processor the task runs on (the example is single-processor).
    pub processor: ProcessorId,
}

impl SpuriTask {
    /// A task without resource usage: `C = c_before`, no critical section.
    pub fn independent(
        id: TaskId,
        name: impl Into<String>,
        c: Duration,
        deadline: Duration,
        pseudo_period: Duration,
    ) -> Self {
        SpuriTask {
            id,
            name: name.into(),
            c_before: c,
            cs: Duration::ZERO,
            c_after: Duration::ZERO,
            resource: None,
            deadline,
            pseudo_period,
            processor: ProcessorId(0),
        }
    }

    /// A task with one critical section on `resource`.
    #[allow(clippy::too_many_arguments)]
    pub fn with_section(
        id: TaskId,
        name: impl Into<String>,
        c_before: Duration,
        cs: Duration,
        c_after: Duration,
        resource: ResourceId,
        deadline: Duration,
        pseudo_period: Duration,
    ) -> Self {
        assert!(!cs.is_zero(), "critical section must be positive");
        SpuriTask {
            id,
            name: name.into(),
            c_before,
            cs,
            c_after,
            resource: Some(resource),
            deadline,
            pseudo_period,
            processor: ProcessorId(0),
        }
    }

    /// Total worst-case computation time `Cᵢ`.
    pub fn total_c(&self) -> Duration {
        self.c_before + self.cs + self.c_after
    }

    /// Utilisation `Cᵢ / pᵢ`.
    pub fn utilization(&self) -> f64 {
        self.total_c().as_nanos() as f64 / self.pseudo_period.as_nanos() as f64
    }

    /// Time from task start to the *end* of the critical section — the span
    /// during which the task may block others.
    pub fn section_end_offset(&self) -> Duration {
        self.c_before + self.cs
    }

    /// Translates the task into a HEUG per Figure 3 of the paper.
    ///
    /// The result is a chain of up to three `Code_EU`s: the pre-section
    /// computation, the critical section holding the resource exclusively,
    /// and the post-section computation. Zero-length phases are elided.
    /// `blocking` (the worst-case blocking `B'ᵢ` computed by the analysis)
    /// becomes the `latest` attribute of the first unit, which lets the
    /// dispatcher's monitor flag a blocking overrun at run time.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`] from graph construction (cannot occur for
    /// a well-formed `SpuriTask`, which always yields a nonempty chain).
    pub fn to_heug(&self, blocking: Duration) -> Result<Heug, GraphError> {
        let mut b = crate::graph::HeugBuilder::new(self.name.clone());
        let timing = EuTiming::with_priority(Priority::MIN)
            .with_latest(blocking)
            .with_deadline(self.deadline);
        let mut chain = Vec::new();
        if !self.c_before.is_zero() {
            chain.push(
                b.code_eu(
                    CodeEu::new(
                        format!("{}_before", self.name),
                        self.c_before,
                        self.processor,
                    )
                    .with_timing(timing),
                ),
            );
        }
        if !self.cs.is_zero() {
            let res = self.resource.expect("critical section requires a resource");
            let mut eu = CodeEu::new(format!("{}_cs", self.name), self.cs, self.processor)
                .with_resource(ResourceUse::exclusive(res));
            if chain.is_empty() {
                eu = eu.with_timing(timing);
            }
            chain.push(b.code_eu(eu));
        }
        if !self.c_after.is_zero() {
            chain.push(b.code_eu(CodeEu::new(
                format!("{}_after", self.name),
                self.c_after,
                self.processor,
            )));
        }
        for pair in chain.windows(2) {
            b.precede(pair[0], pair[1]);
        }
        b.build()
    }

    /// Translates into a full [`Task`] (sporadic arrival, deadline `Dᵢ`).
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`] from [`Self::to_heug`].
    pub fn to_task(&self, blocking: Duration) -> Result<Task, GraphError> {
        Ok(Task::new(
            self.id,
            self.to_heug(blocking)?,
            ArrivalLaw::Sporadic(self.pseudo_period),
            self.deadline,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eu::Eu;

    fn us(n: u64) -> Duration {
        Duration::from_micros(n)
    }

    fn sample() -> SpuriTask {
        SpuriTask::with_section(
            TaskId(1),
            "tau1",
            us(10),
            us(5),
            us(20),
            ResourceId(0),
            us(100),
            us(200),
        )
    }

    #[test]
    fn figure3_shape_three_chained_units() {
        let heug = sample().to_heug(us(7)).unwrap();
        assert_eq!(heug.len(), 3, "Figure 3 shows three Code_EUs");
        // It is a chain: one source, one sink, two edges.
        assert_eq!(heug.sources().len(), 1);
        assert_eq!(heug.sinks().len(), 1);
        assert_eq!(heug.edges().len(), 2);
        let names: Vec<&str> = heug.eus().iter().map(Eu::name).collect();
        assert_eq!(names, vec!["tau1_before", "tau1_cs", "tau1_after"]);
    }

    #[test]
    fn figure3_wcets_map_to_phases() {
        let heug = sample().to_heug(us(7)).unwrap();
        let w: Vec<Duration> = heug
            .eus()
            .iter()
            .filter_map(Eu::as_code)
            .map(|c| c.wcet)
            .collect();
        assert_eq!(w, vec![us(10), us(5), us(20)]);
    }

    #[test]
    fn figure3_middle_unit_holds_resource_exclusively() {
        let heug = sample().to_heug(us(7)).unwrap();
        let cs = heug.eus()[1].as_code().unwrap();
        assert_eq!(cs.resources.len(), 1);
        assert_eq!(cs.resources[0], ResourceUse::exclusive(ResourceId(0)));
        assert!(heug.eus()[0].as_code().unwrap().resources.is_empty());
        assert!(heug.eus()[2].as_code().unwrap().resources.is_empty());
    }

    #[test]
    fn figure3_latest_is_blocking_and_deadline_carried() {
        let heug = sample().to_heug(us(7)).unwrap();
        let first = heug.eus()[0].as_code().unwrap();
        assert_eq!(first.timing.latest, Some(us(7)), "latest = B'i");
        assert_eq!(first.timing.deadline, Some(us(100)), "D = Di");
    }

    #[test]
    fn zero_phases_are_elided() {
        let t = SpuriTask::independent(TaskId(0), "solo", us(30), us(50), us(60));
        let heug = t.to_heug(Duration::ZERO).unwrap();
        assert_eq!(heug.len(), 1);
        assert_eq!(heug.total_wcet(), us(30));
    }

    #[test]
    fn section_starting_task_gets_latest_on_cs() {
        let t = SpuriTask::with_section(
            TaskId(2),
            "cs_first",
            Duration::ZERO,
            us(5),
            us(5),
            ResourceId(1),
            us(50),
            us(100),
        );
        let heug = t.to_heug(us(3)).unwrap();
        assert_eq!(heug.len(), 2);
        let first = heug.eus()[0].as_code().unwrap();
        assert_eq!(first.timing.latest, Some(us(3)));
        assert_eq!(first.resources.len(), 1);
    }

    #[test]
    fn totals_and_utilization() {
        let t = sample();
        assert_eq!(t.total_c(), us(35));
        assert_eq!(t.section_end_offset(), us(15));
        assert!((t.utilization() - 0.175).abs() < 1e-9);
    }

    #[test]
    fn to_task_is_sporadic_with_deadline() {
        let task = sample().to_task(us(7)).unwrap();
        assert_eq!(task.arrival, ArrivalLaw::Sporadic(us(200)));
        assert_eq!(task.deadline, us(100));
        assert_eq!(task.wcet(), us(35));
        assert!(task.has_constrained_deadline());
    }

    #[test]
    #[should_panic(expected = "critical section must be positive")]
    fn zero_section_with_resource_rejected() {
        let _ = SpuriTask::with_section(
            TaskId(0),
            "bad",
            us(1),
            Duration::ZERO,
            us(1),
            ResourceId(0),
            us(10),
            us(10),
        );
    }
}
