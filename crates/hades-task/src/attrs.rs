//! Timing attributes of elementary units (Section 3.1.2 of the paper).
//!
//! Each `Code_EU` carries a priority `prio`, a preemption threshold `pt`, an
//! earliest start time, and — for monitoring — a latest start time and a
//! deadline. Priorities live in `[prio_min, prio_max]`; the top level
//! `prio_max` is reserved for kernel mechanisms, and the scheduler task runs
//! at the highest *application* priority.

use hades_time::Duration;
use std::fmt;

/// A processor (site) a `Code_EU` is statically assigned to.
///
/// The task model is substrate-independent; the dispatcher maps
/// `ProcessorId`s onto simulated nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcessorId(pub u32);

impl fmt::Display for ProcessorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A scheduling priority. Larger values are more urgent.
///
/// # Examples
///
/// ```
/// use hades_task::Priority;
///
/// assert!(Priority::MAX > Priority::APP_MAX);
/// assert!(Priority::APP_MAX > Priority::MIN);
/// assert_eq!(Priority::new(5).raise(3), Priority::new(8));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Priority(pub u32);

impl Priority {
    /// The lowest application priority (`prio_min`).
    pub const MIN: Priority = Priority(0);
    /// The highest application priority — where scheduler tasks run.
    pub const APP_MAX: Priority = Priority(u32::MAX - 1);
    /// The reserved kernel priority (`prio_max`); kernel calls execute with
    /// `pt = prio_max` so application tasks can never interrupt them.
    pub const MAX: Priority = Priority(u32::MAX);

    /// Creates a priority from a raw level.
    pub const fn new(level: u32) -> Self {
        Priority(level)
    }

    /// The raw level.
    pub const fn level(self) -> u32 {
        self.0
    }

    /// A priority `n` levels higher (saturating).
    pub const fn raise(self, n: u32) -> Priority {
        Priority(self.0.saturating_add(n))
    }

    /// A priority `n` levels lower (saturating).
    pub const fn lower(self, n: u32) -> Priority {
        Priority(self.0.saturating_sub(n))
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Priority::MAX => write!(f, "prio_max"),
            Priority::APP_MAX => write!(f, "prio_app_max"),
            p => write!(f, "prio({})", p.0),
        }
    }
}

/// The timing attributes of one `Code_EU`.
///
/// `earliest`, `latest` and `deadline` are *relative to the task activation
/// request*; the dispatcher resolves them to absolute times per instance.
/// `earliest`/`prio` may also be (re)assigned dynamically by a scheduler
/// through the dispatcher primitive, which is how dynamic policies (EDF,
/// planning-based) are built.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EuTiming {
    /// Base priority (static assignment; dynamic policies overwrite it at
    /// run time through the dispatcher primitive).
    pub prio: Priority,
    /// Preemption threshold: only actions with `prio > pt` may preempt this
    /// unit while it runs. Defaults to `prio` (ordinary preemptive
    /// behaviour).
    pub pt: Priority,
    /// Earliest start offset from activation; `None` = may start at once.
    pub earliest: Option<Duration>,
    /// Latest start offset from activation, used by monitoring; `None` = not
    /// monitored.
    pub latest: Option<Duration>,
    /// Completion deadline offset from activation, used by monitoring;
    /// `None` = inherits the task deadline.
    pub deadline: Option<Duration>,
}

impl EuTiming {
    /// Attributes with the given priority, threshold equal to the priority
    /// and no static time bounds.
    pub fn with_priority(prio: Priority) -> Self {
        EuTiming {
            prio,
            pt: prio,
            earliest: None,
            latest: None,
            deadline: None,
        }
    }

    /// Returns a copy with the preemption threshold raised to `pt`.
    ///
    /// # Panics
    ///
    /// Panics if `pt < self.prio`: a threshold below the base priority is
    /// meaningless (the unit could not even run at its own priority).
    pub fn with_threshold(mut self, pt: Priority) -> Self {
        assert!(pt >= self.prio, "preemption threshold below base priority");
        self.pt = pt;
        self
    }

    /// Returns a copy with a static earliest start offset.
    pub fn with_earliest(mut self, earliest: Duration) -> Self {
        self.earliest = Some(earliest);
        self
    }

    /// Returns a copy with a latest start offset (monitoring attribute).
    pub fn with_latest(mut self, latest: Duration) -> Self {
        self.latest = Some(latest);
        self
    }

    /// Returns a copy with a unit-level deadline offset.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Whether `other_prio` may preempt a unit running under these
    /// attributes.
    pub fn preemptable_by(&self, other_prio: Priority) -> bool {
        other_prio > self.pt
    }
}

impl Default for EuTiming {
    /// Lowest priority, ordinary preemption, no static bounds.
    fn default() -> Self {
        EuTiming::with_priority(Priority::MIN)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_band_ordering() {
        assert!(Priority::MIN < Priority::APP_MAX);
        assert!(Priority::APP_MAX < Priority::MAX);
        assert_eq!(Priority::new(3).level(), 3);
    }

    #[test]
    fn raise_and_lower_saturate() {
        assert_eq!(Priority::MAX.raise(1), Priority::MAX);
        assert_eq!(Priority::MIN.lower(1), Priority::MIN);
        assert_eq!(Priority::new(10).lower(4), Priority::new(6));
    }

    #[test]
    fn display_names_special_levels() {
        assert_eq!(Priority::MAX.to_string(), "prio_max");
        assert_eq!(Priority::APP_MAX.to_string(), "prio_app_max");
        assert_eq!(Priority::new(7).to_string(), "prio(7)");
        assert_eq!(ProcessorId(2).to_string(), "p2");
    }

    #[test]
    fn default_threshold_equals_priority() {
        let t = EuTiming::with_priority(Priority::new(5));
        assert_eq!(t.pt, Priority::new(5));
        assert!(t.preemptable_by(Priority::new(6)));
        assert!(
            !t.preemptable_by(Priority::new(5)),
            "equal priority does not preempt"
        );
    }

    #[test]
    fn raised_threshold_blocks_mid_band() {
        let t = EuTiming::with_priority(Priority::new(2)).with_threshold(Priority::new(8));
        assert!(!t.preemptable_by(Priority::new(8)));
        assert!(t.preemptable_by(Priority::new(9)));
    }

    #[test]
    #[should_panic(expected = "threshold below base priority")]
    fn threshold_below_priority_rejected() {
        let _ = EuTiming::with_priority(Priority::new(5)).with_threshold(Priority::new(4));
    }

    #[test]
    fn builder_setters_apply() {
        let t = EuTiming::with_priority(Priority::new(1))
            .with_earliest(Duration::from_micros(10))
            .with_latest(Duration::from_micros(50))
            .with_deadline(Duration::from_micros(100));
        assert_eq!(t.earliest, Some(Duration::from_micros(10)));
        assert_eq!(t.latest, Some(Duration::from_micros(50)));
        assert_eq!(t.deadline, Some(Duration::from_micros(100)));
    }

    #[test]
    fn default_timing_is_minimal() {
        let t = EuTiming::default();
        assert_eq!(t.prio, Priority::MIN);
        assert_eq!(t.earliest, None);
    }
}
