//! The fabric's rebalancing scenario driver.
//!
//! [`FabricDirector`] watches the cluster event stream for evidence that
//! a placement lost a node — a failure-detector [`Detected`] suspicion
//! or a [`ViewInstalled`] view that excludes a member — and reacts by
//! *moving only the shards homed on that placement*: for each such shard
//! it retires the primary group (its request stream stops), admits the
//! standby group on the shard's ring-successor placement (its paused
//! stream resumes at nominal rate), and stamps the move into the event
//! stream via [`ControlHandle::mark_shard_moved`].
//!
//! Movement is *bounded by construction*: a shard moves at most once,
//! only when its current placement loses a node, and shards homed
//! elsewhere never move — the property the fabric tests assert.
//!
//! [`Detected`]: ClusterEvent::Detected
//! [`ViewInstalled`]: ClusterEvent::ViewInstalled

use std::collections::{BTreeMap, BTreeSet};

use hades_cluster::{ClusterEvent, ControlHandle, ScenarioDriver};
use hades_time::Time;

use crate::ring::ShardRouter;

/// Scenario driver that rebalances shards off placements that lose a
/// node.
///
/// The director holds the same routing table the fabric was built from
/// (by value — tables are pure functions of the fabric shape), plus the
/// mutable ownership state: which placement currently serves each shard
/// and which shards already moved.
///
/// Policy notes:
///
/// * The director trusts the failure detector — a false suspicion moves
///   shards just like a real crash. In a Δ-bounded HADES deployment
///   detections are accurate by construction, and moving on suspicion is
///   the latency-safe choice.
/// * There is no fail-back: once a shard moved to its standby placement
///   it stays there, even if the original node rejoins. One move per
///   shard keeps the movement bound trivially auditable.
#[derive(Debug)]
pub struct FabricDirector {
    /// Placement → member nodes, ascending.
    placements: Vec<Vec<u32>>,
    /// Node → owning placement.
    node_placement: BTreeMap<u32, u32>,
    /// Shard → placement currently serving it.
    current: Vec<u32>,
    /// Shard → standby placement (ring successor, fixed at build).
    standby: Vec<u32>,
    /// Shards already moved (at most one move per shard).
    moved: BTreeSet<u32>,
    /// Nodes already handled (dedups repeated suspicions).
    dead: BTreeSet<u32>,
}

impl FabricDirector {
    /// A director for `router`'s shards over `placements` (placement →
    /// member nodes).
    pub fn new(router: &ShardRouter, placements: Vec<Vec<u32>>) -> Self {
        let node_placement = placements
            .iter()
            .enumerate()
            .flat_map(|(p, members)| members.iter().map(move |n| (*n, p as u32)))
            .collect();
        let shards = router.shards();
        FabricDirector {
            placements,
            node_placement,
            current: (0..shards).map(|s| router.home(s)).collect(),
            standby: (0..shards).map(|s| router.standby(s)).collect(),
            moved: BTreeSet::new(),
            dead: BTreeSet::new(),
        }
    }

    /// Shards the director has moved so far, ascending.
    pub fn moved(&self) -> impl Iterator<Item = u32> + '_ {
        self.moved.iter().copied()
    }

    /// Reacts to one node going down: moves every shard whose current
    /// placement contains it, and nothing else.
    fn node_down(&mut self, node: u32, ctl: &mut ControlHandle<'_>) {
        if !self.dead.insert(node) {
            return;
        }
        let Some(&placement) = self.node_placement.get(&node) else {
            return;
        };
        for shard in 0..self.current.len() as u32 {
            if self.current[shard as usize] != placement || !self.moved.insert(shard) {
                continue;
            }
            let to = self.standby[shard as usize];
            ctl.retire_service(&format!("shard-{shard}"));
            ctl.admit_service(&format!("shard-{shard}~alt"));
            ctl.mark_shard_moved(shard, placement, to);
            self.current[shard as usize] = to;
        }
    }
}

impl ScenarioDriver for FabricDirector {
    fn on_event(&mut self, _now: Time, event: &ClusterEvent, ctl: &mut ControlHandle<'_>) {
        match event {
            ClusterEvent::Detected { suspect, .. } => self.node_down(*suspect, ctl),
            ClusterEvent::ViewInstalled { members, .. } => {
                // A view that excludes a known member is the agreed form
                // of the same evidence — react to exclusions too, so the
                // director keeps up even when it missed the suspicion.
                let gone: Vec<u32> = self
                    .placements
                    .iter()
                    .flatten()
                    .filter(|n| !members.contains(n))
                    .copied()
                    .collect();
                for node in gone {
                    self.node_down(node, ctl);
                }
            }
            _ => {}
        }
    }
}
