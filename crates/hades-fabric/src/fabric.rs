//! Fabric assembly: spec builder, run, and the per-shard report.
//!
//! [`FabricSpec`] turns a fabric shape — node count, shard count, load
//! classes — into a plain [`ClusterSpec`]: per shard, a primary
//! replicated group on the shard's home placement and a *standby* group
//! on its ring-successor placement (paused at rate zero until a move
//! admits it), plus one [`FabricDirector`] driving the rebalance. The
//! cluster runtime stays completely fabric-unaware; everything the
//! fabric adds is expressed through existing spec surface.
//!
//! After the run, the fold in [`FabricSpec::run`] grades the outcome
//! into a [`FabricReport`]: per-shard and aggregate response-latency
//! percentiles against the analytic `Δ + δmax` output bound, routed /
//! moved / dropped request counts, and the shard moves the director
//! actuated — also recorded as the `fabric.*` telemetry family.

use std::fmt;

use hades_cluster::{
    ClusterRun, ClusterSpec, GroupLoad, ScenarioPlan, ServiceSpec, SpecError, TraceReplay,
};
use hades_services::ReplicaStyle;
use hades_telemetry::{fabric as metrics, HistogramSummary, MetricsSnapshot, Registry};
use hades_time::{Duration, Time};

use crate::director::FabricDirector;
use crate::ring::{mix64, HashRing, ShardRouter};
use crate::workload::{LoadClass, PopulationWorkload};

/// Why a fabric could not be assembled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FabricError {
    /// The node count does not yield at least two full placements of
    /// `replicas` nodes — with a single placement there is nowhere to
    /// move a shard.
    TooFewPlacements {
        /// Nodes requested.
        nodes: u32,
        /// Replicas per placement requested.
        replicas: u32,
    },
    /// No load class was registered — the fabric would be idle.
    NoClasses,
    /// The lowered [`ClusterSpec`] failed validation.
    Cluster(SpecError),
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::TooFewPlacements { nodes, replicas } => write!(
                f,
                "{nodes} nodes yield fewer than two placements of {replicas} replicas"
            ),
            FabricError::NoClasses => write!(f, "a fabric needs at least one load class"),
            FabricError::Cluster(e) => write!(f, "lowered cluster spec rejected: {e}"),
        }
    }
}

impl std::error::Error for FabricError {}

impl From<SpecError> for FabricError {
    fn from(e: SpecError) -> Self {
        FabricError::Cluster(e)
    }
}

/// Builder for a sharded service fabric over the cluster runtime.
///
/// # Examples
///
/// ```
/// use hades_fabric::{FabricSpec, LoadClass};
/// use hades_time::Duration;
///
/// let run = FabricSpec::new(6, 8)
///     .class(LoadClass::new("web", 50_000, Duration::from_secs(5)))
///     .horizon(Duration::from_millis(10))
///     .seed(7)
///     .run()
///     .expect("fabric runs");
/// assert_eq!(run.report.per_shard.len(), 8);
/// assert_eq!(run.report.totals.routed,
///            run.report.per_shard.iter().map(|s| s.routed).sum::<u64>());
/// ```
#[derive(Debug)]
pub struct FabricSpec {
    nodes: u32,
    shards: u32,
    replicas: u32,
    vnodes: u32,
    classes: Vec<LoadClass>,
    horizon: Duration,
    seed: u64,
    style: ReplicaStyle,
    load: GroupLoad,
    plan: ScenarioPlan,
    registry: Registry,
    min_gap: Duration,
}

impl FabricSpec {
    /// A fabric of `shards` shards over `nodes` nodes, with 3-node
    /// placements, 16 virtual ring nodes, a 30 ms horizon, semi-active
    /// replication and a light per-request cost (10 µs execute, 2 µs
    /// follower ordering) tuned for population-scale request counts.
    pub fn new(nodes: u32, shards: u32) -> Self {
        assert!(shards > 0, "a fabric needs at least one shard");
        FabricSpec {
            nodes,
            shards,
            replicas: 3,
            vnodes: 16,
            classes: Vec::new(),
            horizon: Duration::from_millis(30),
            seed: 0,
            style: ReplicaStyle::SemiActive,
            load: GroupLoad {
                request_wcet: Duration::from_micros(10),
                order_wcet: Duration::from_micros(2),
                attempts: 1,
                ..GroupLoad::default()
            },
            plan: ScenarioPlan::new(),
            registry: Registry::default(),
            min_gap: Duration::from_micros(250),
        }
    }

    /// Adds one population load class.
    pub fn class(mut self, class: LoadClass) -> Self {
        self.classes.push(class);
        self
    }

    /// Sets the replicas per placement (default 3).
    pub fn replicas(mut self, replicas: u32) -> Self {
        assert!(replicas > 0, "placements need at least one replica");
        self.replicas = replicas;
        self
    }

    /// Sets the virtual ring nodes per placement (default 16).
    pub fn vnodes(mut self, vnodes: u32) -> Self {
        self.vnodes = vnodes;
        self
    }

    /// Sets the simulation horizon (default 30 ms).
    pub fn horizon(mut self, horizon: Duration) -> Self {
        self.horizon = horizon;
        self
    }

    /// Sets the run seed (workload synthesis and cluster randomness).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the replication style of every shard group.
    pub fn style(mut self, style: ReplicaStyle) -> Self {
        self.style = style;
        self
    }

    /// Overrides the per-request group cost model.
    pub fn load(mut self, load: GroupLoad) -> Self {
        self.load = load;
        self
    }

    /// Injects a fault scenario (crashes, restarts, partitions).
    pub fn scenario(mut self, plan: ScenarioPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Attaches a metrics registry; the fabric records the `fabric.*`
    /// family into it after the run, next to the cluster's own metrics.
    pub fn telemetry(mut self, registry: Registry) -> Self {
        self.registry = registry;
        self
    }

    /// Sets the per-shard minimum request separation (default 250 µs).
    ///
    /// Colliding arrivals from different classes are pushed apart so a
    /// shard's peak admission rate stays bounded. The floor matters for
    /// engine cost, not just analysis: every group member runs a
    /// periodic admission cost task at the shard's peak rate, so a
    /// microsecond-scale floor would flood the dispatcher with
    /// millions of releases across a hundred-group fabric.
    pub fn min_gap(mut self, min_gap: Duration) -> Self {
        assert!(!min_gap.is_zero(), "the separation floor must be positive");
        self.min_gap = min_gap;
        self
    }

    /// The router this fabric shape induces (pure function of the
    /// shape — rebuildable anywhere).
    pub fn router(&self) -> ShardRouter {
        ShardRouter::new(
            self.shards,
            HashRing::new(self.nodes / self.replicas, self.vnodes),
        )
    }

    /// Assembles the fabric, runs it, and folds the per-shard report.
    pub fn run(self) -> Result<FabricRun, FabricError> {
        let placements_n = self.nodes / self.replicas;
        if placements_n < 2 {
            return Err(FabricError::TooFewPlacements {
                nodes: self.nodes,
                replicas: self.replicas,
            });
        }
        if self.classes.is_empty() {
            return Err(FabricError::NoClasses);
        }
        let router = self.router();

        // Materialize each class's aggregate stream and route every
        // request to its shard, then push colliding arrivals apart so a
        // shard's trace keeps a bounded peak rate.
        let clients: u64 = self.classes.iter().map(|c| c.clients).sum();
        let mut per_shard: Vec<Vec<Time>> = vec![Vec::new(); self.shards as usize];
        for (ci, class) in self.classes.iter().enumerate() {
            let stream = PopulationWorkload::new(class.clone(), mix64(self.seed ^ (ci as u64 + 1)));
            for (at, key) in stream.events(self.horizon) {
                per_shard[router.shard_of(key) as usize].push(at);
            }
        }
        let end = Time::ZERO + self.horizon;
        for times in &mut per_shard {
            times.sort_unstable();
            let mut next_free = Time::ZERO;
            let mut spaced = Vec::with_capacity(times.len());
            for &at in times.iter() {
                let at = at.max(next_free);
                if at >= end {
                    break;
                }
                spaced.push(at);
                next_free = at + self.min_gap;
            }
            *times = spaced;
        }

        // One primary group on the home placement, one paused standby
        // group on the ring successor — both driven by the same trace,
        // so an admitted standby resumes the shard's nominal stream.
        let placements: Vec<Vec<u32>> = (0..placements_n)
            .map(|p| (p * self.replicas..(p + 1) * self.replicas).collect())
            .collect();
        let homes: Vec<u32> = (0..self.shards).map(|s| router.home(s)).collect();
        let mut spec = ClusterSpec::new(self.nodes)
            .seed(self.seed)
            .horizon(self.horizon)
            .scenario(self.plan.clone())
            .driver(Box::new(FabricDirector::new(&router, placements.clone())))
            .telemetry(self.registry.clone());
        for s in 0..self.shards {
            let trace = TraceReplay::new(per_shard[s as usize].clone());
            spec = spec
                .service(
                    ServiceSpec::replicated(
                        format!("shard-{s}"),
                        self.style,
                        placements[homes[s as usize] as usize].clone(),
                        self.load,
                    )
                    .workload(Box::new(trace.clone())),
                )
                .service(
                    ServiceSpec::replicated(
                        format!("shard-{s}~alt"),
                        self.style,
                        placements[router.standby(s) as usize].clone(),
                        self.load,
                    )
                    .workload(Box::new(trace))
                    .standby(),
                );
        }

        let cluster = spec.run()?;
        let (report, samples) = fold_report(&cluster, &router, clients, self.shards);
        record_metrics(&self.registry, &report, &samples);
        let metrics = self.registry.snapshot();
        Ok(FabricRun {
            cluster,
            report,
            metrics,
        })
    }
}

/// One shard ownership move the director actuated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMove {
    /// The shard.
    pub shard: u32,
    /// Placement it was homed on.
    pub from: u32,
    /// Placement it moved to.
    pub to: u32,
    /// When the move was applied.
    pub at: Time,
}

/// Per-shard outcome: routing counts and response-latency percentiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStats {
    /// The shard.
    pub shard: u32,
    /// Home (initial) placement.
    pub home: u32,
    /// Requests stamped with this shard and admitted by a serving group
    /// (primary before a move, standby after).
    pub routed: u64,
    /// Requests served by the standby placement after a move.
    pub moved: u64,
    /// Requests submitted to a placement that was retired before
    /// answering — the migration window's losses.
    pub dropped: u64,
    /// Outputs within the analytic `Δ + δmax` bound.
    pub on_time: u64,
    /// Outputs beyond the bound.
    pub delayed: u64,
    /// Response-latency summary (p50/p95/p99/p999, nanoseconds), `None`
    /// for a shard that produced no outputs.
    pub latency: Option<HistogramSummary>,
}

/// Fabric-wide totals — the same fields as [`ShardStats`], merged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FabricTotals {
    /// Requests admitted across every shard.
    pub routed: u64,
    /// Requests served post-move across every shard.
    pub moved: u64,
    /// Requests lost in migration windows.
    pub dropped: u64,
    /// Outputs within the bound.
    pub on_time: u64,
    /// Outputs beyond the bound.
    pub delayed: u64,
    /// Latency summary over every shard's merged samples.
    pub latency: Option<HistogramSummary>,
}

/// What a fabric run produced, per shard and in aggregate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FabricReport {
    /// Shards the keyspace was split into.
    pub shards: u32,
    /// Simulated client population (sum of class multipliers).
    pub clients: u64,
    /// The analytic client-visible output bound `Δ + δmax` every
    /// latency figure is graded against.
    pub output_bound: Duration,
    /// Fabric-wide merged totals.
    pub totals: FabricTotals,
    /// Per-shard outcomes, indexed by shard.
    pub per_shard: Vec<ShardStats>,
    /// Shard moves the director actuated, in application order.
    pub moves: Vec<ShardMove>,
}

/// What `FabricSpec::run` hands back: the raw cluster run, the folded
/// fabric report, and the post-fold metrics snapshot (cluster metrics
/// plus the `fabric.*` family).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FabricRun {
    /// The underlying cluster run (events, group reports, telemetry).
    pub cluster: ClusterRun,
    /// The per-shard fabric report.
    pub report: FabricReport,
    /// Metrics snapshot including the `fabric.*` family.
    pub metrics: MetricsSnapshot,
}

/// Folds the cluster run into the fabric report plus the merged
/// latency samples (for the `fabric.response_ns` histogram). Shard
/// `s`'s primary group is replicated-service index `2s`, its standby
/// `2s + 1` — the registration order `FabricSpec::run` used.
fn fold_report(
    cluster: &ClusterRun,
    router: &ShardRouter,
    clients: u64,
    shards: u32,
) -> (FabricReport, Vec<u64>) {
    let groups = &cluster.report().groups;
    debug_assert_eq!(groups.len(), 2 * shards as usize);
    let moves: Vec<ShardMove> = cluster
        .events()
        .iter()
        .filter_map(|e| match e {
            hades_cluster::ClusterEvent::ShardMoved {
                shard,
                from,
                to,
                at,
            } => Some(ShardMove {
                shard: *shard,
                from: *from,
                to: *to,
                at: *at,
            }),
            _ => None,
        })
        .collect();
    let moved_shards: std::collections::BTreeSet<u32> = moves.iter().map(|m| m.shard).collect();

    let mut per_shard = Vec::with_capacity(shards as usize);
    let mut all_samples: Vec<u64> = Vec::new();
    for s in 0..shards {
        let primary = &groups[2 * s as usize];
        let alt = &groups[2 * s as usize + 1];
        let mut samples: Vec<u64> = primary
            .response_ns
            .iter()
            .chain(alt.response_ns.iter())
            .copied()
            .collect();
        samples.sort_unstable();
        all_samples.extend_from_slice(&samples);
        per_shard.push(ShardStats {
            shard: s,
            home: router.home(s),
            routed: primary.submitted + alt.submitted,
            moved: alt.submitted,
            dropped: if moved_shards.contains(&s) {
                primary.submitted.saturating_sub(primary.outputs)
            } else {
                0
            },
            on_time: primary.on_time_outputs + alt.on_time_outputs,
            delayed: primary.delayed_outputs + alt.delayed_outputs,
            latency: HistogramSummary::of(&samples),
        });
    }
    let totals = FabricTotals {
        routed: per_shard.iter().map(|s| s.routed).sum(),
        moved: per_shard.iter().map(|s| s.moved).sum(),
        dropped: per_shard.iter().map(|s| s.dropped).sum(),
        on_time: per_shard.iter().map(|s| s.on_time).sum(),
        delayed: per_shard.iter().map(|s| s.delayed).sum(),
        latency: HistogramSummary::of(&all_samples),
    };
    let report = FabricReport {
        shards,
        clients,
        output_bound: groups
            .first()
            .map(|g| g.output_bound)
            .unwrap_or(Duration::ZERO),
        totals,
        per_shard,
        moves,
    };
    (report, all_samples)
}

/// Records the report as the `fabric.*` metrics family.
fn record_metrics(registry: &Registry, report: &FabricReport, samples: &[u64]) {
    registry.gauge(metrics::SHARDS).set(report.shards as u64);
    registry.gauge(metrics::CLIENTS).set(report.clients);
    registry
        .counter(metrics::REQUESTS_ROUTED)
        .add(report.totals.routed);
    registry
        .counter(metrics::REQUESTS_MOVED)
        .add(report.totals.moved);
    registry
        .counter(metrics::REQUESTS_DROPPED)
        .add(report.totals.dropped);
    registry
        .counter(metrics::SHARDS_MOVED)
        .add(report.moves.len() as u64);
    let hist = registry.histogram(metrics::RESPONSE_NS);
    for v in samples {
        hist.record(*v);
    }
}
