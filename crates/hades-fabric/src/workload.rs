//! Population-scale workload generators.
//!
//! Simulating 10⁶ clients as 10⁶ actors would drown the engine in think
//! timers. The fabric instead models a population as a handful of *load
//! classes*: each class carries a client-count **multiplier** and a mean
//! per-client think time, and one generator per class synthesises the
//! *aggregate* arrival process those clients would produce — a stream
//! with mean inter-arrival `think / clients`. One actor per class, not
//! per client, so a million-client fabric costs the engine a few
//! thousand materialized requests instead of a million timers.
//!
//! [`PopulationWorkload`] implements the cluster runtime's
//! [`Workload`] trait, so a load class drops into any
//! `ServiceSpec::workload` slot unchanged; the fabric additionally uses
//! [`PopulationWorkload::events`] to obtain `(instant, key)` pairs and
//! route each request to its shard.
//!
//! Everything is a pure function of the class shape and a seed — no
//! wall clock, no global RNG — so same-seed fabrics materialize
//! byte-identical schedules.
//!
//! # Examples
//!
//! ```
//! use hades_fabric::{Arrival, LoadClass, PopulationWorkload};
//! use hades_cluster::Workload;
//! use hades_time::Duration;
//!
//! // 100k browsing clients thinking 10 s each → ~10k requests/s.
//! let class = LoadClass::new("browse", 100_000, Duration::from_secs(10));
//! let w = PopulationWorkload::new(class, 7);
//! let times = w.request_times(Duration::from_millis(5));
//! assert!(!times.is_empty());
//! assert!(times.windows(2).all(|p| p[0] < p[1]), "strictly increasing");
//! assert_eq!(times, PopulationWorkload::new(
//!     LoadClass::new("browse", 100_000, Duration::from_secs(10)), 7,
//! ).request_times(Duration::from_millis(5)), "same seed, same schedule");
//! ```

use hades_cluster::Workload;
use hades_time::{Duration, Time};

use crate::ring::mix64;

/// Shape of a load class's aggregate arrival process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arrival {
    /// Memoryless arrivals: exponential inter-arrival gaps around the
    /// aggregate mean — the superposition limit of many independent
    /// clients.
    Poisson,
    /// On/off bursts: the class fires at a proportionally higher rate
    /// for `on`, then goes silent for `off`, keeping the same average
    /// rate over a cycle.
    Bursty {
        /// Length of the active window.
        on: Duration,
        /// Length of the silent window.
        off: Duration,
    },
    /// Diurnal-style ramp: the instantaneous rate climbs linearly from
    /// `from_permille`/1000 of nominal at the start of the horizon to
    /// nominal at its end.
    Ramp {
        /// Starting rate in permille of the nominal class rate (clamped
        /// to at least 1).
        from_permille: u32,
    },
}

/// One population segment: `clients` simulated clients of mean think
/// time `think`, arriving per `arrival`.
///
/// The class never materializes its clients — `clients` is a pure
/// multiplier on the aggregate rate (`clients / think` requests per
/// second).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadClass {
    /// Class label (diagnostics and reports).
    pub name: String,
    /// Simulated client count — the aggregate-rate multiplier.
    pub clients: u64,
    /// Mean per-client think time between requests.
    pub think: Duration,
    /// Aggregate arrival shape.
    pub arrival: Arrival,
}

impl LoadClass {
    /// A Poisson class of `clients` clients thinking `think` each.
    ///
    /// # Panics
    ///
    /// Panics if `clients` is zero or `think` is zero.
    pub fn new(name: impl Into<String>, clients: u64, think: Duration) -> Self {
        assert!(clients > 0, "a load class needs at least one client");
        assert!(!think.is_zero(), "think time must be positive");
        LoadClass {
            name: name.into(),
            clients,
            think,
            arrival: Arrival::Poisson,
        }
    }

    /// Overrides the arrival shape.
    pub fn arrival(mut self, arrival: Arrival) -> Self {
        self.arrival = arrival;
        self
    }

    /// Mean aggregate inter-arrival gap, `think / clients`, floored at
    /// one nanosecond tick.
    pub fn mean_gap(&self) -> Duration {
        Duration::from_nanos((self.think.as_nanos() / self.clients).max(1))
    }
}

/// Salt separating the request-key stream from the gap stream.
const KEY_SALT: u64 = 0x4B_45_59_53; // "KEYS"

/// Deterministic aggregate request stream of one [`LoadClass`].
///
/// Implements [`Workload`], so it plugs into `ServiceSpec::workload`
/// like any other generator; the fabric calls [`events`] instead to
/// get keyed requests it can route to shards.
///
/// Gaps are clamped below at `floor` (default 1 µs) so the admission
/// charge a feasibility analysis derives from the peak rate stays
/// finite even for very large populations.
///
/// [`events`]: PopulationWorkload::events
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PopulationWorkload {
    /// The population segment this stream aggregates.
    pub class: LoadClass,
    seed: u64,
    start: Time,
    floor: Duration,
}

impl PopulationWorkload {
    /// The aggregate stream of `class`, drawn from `seed`, starting at
    /// 1 ms (matching `GroupLoad`'s default first request).
    pub fn new(class: LoadClass, seed: u64) -> Self {
        PopulationWorkload {
            class,
            seed,
            start: Time::ZERO + Duration::from_millis(1),
            floor: Duration::from_micros(1),
        }
    }

    /// Overrides the first possible arrival instant.
    pub fn start(mut self, start: Time) -> Self {
        self.start = start;
        self
    }

    /// Overrides the minimum inter-arrival gap (peak-rate cap).
    ///
    /// # Panics
    ///
    /// Panics if `floor` is zero.
    pub fn floor(mut self, floor: Duration) -> Self {
        assert!(!floor.is_zero(), "the gap floor must be positive");
        self.floor = floor;
        self
    }

    /// Materializes the aggregate stream as `(instant, key)` pairs —
    /// strictly increasing instants in `[start, horizon)`, each stamped
    /// with a deterministic 64-bit request key the router hashes onto a
    /// shard.
    pub fn events(&self, horizon: Duration) -> Vec<(Time, u64)> {
        let end = Time::ZERO + horizon;
        let mean_ns = self.class.mean_gap().as_nanos();
        let floor_ns = self.floor.as_nanos();
        let mut out = Vec::new();
        let mut t = self.start;
        let mut draw = 0u64;
        while t < end {
            out.push((t, mix64(self.seed ^ KEY_SALT ^ (out.len() as u64) << 8)));
            let gap_ns = match self.class.arrival {
                Arrival::Poisson => {
                    // Inverse-CDF exponential from a 53-bit uniform in
                    // (0, 1]; IEEE f64 ops are exact functions of their
                    // inputs, so the draw is deterministic.
                    let bits = mix64(self.seed ^ draw) >> 11;
                    let u = (bits as f64 + 1.0) / (1u64 << 53) as f64;
                    (-(u.ln()) * mean_ns as f64) as u64
                }
                Arrival::Bursty { on, off } => {
                    let cycle = on + off;
                    // Peak gap keeps the cycle average at the nominal
                    // mean: all traffic compressed into the on-window.
                    let peak =
                        (mean_ns as u128 * on.as_nanos() as u128 / cycle.as_nanos() as u128) as u64;
                    let next = t + Duration::from_nanos(peak.max(floor_ns));
                    let pos = next.elapsed_since(self.start).as_nanos() % cycle.as_nanos();
                    if pos < on.as_nanos() {
                        peak
                    } else {
                        // Jump to the start of the next on-window.
                        next.elapsed_since(t).as_nanos() + (cycle.as_nanos() - pos)
                    }
                }
                Arrival::Ramp { from_permille } => {
                    let elapsed = t
                        .elapsed_since(Time::ZERO)
                        .as_nanos()
                        .min(horizon.as_nanos());
                    let f = from_permille.max(1) as u128
                        + (1000u128 - from_permille.min(1000) as u128) * elapsed as u128
                            / horizon.as_nanos().max(1) as u128;
                    (mean_ns as u128 * 1000 / f) as u64
                }
            };
            draw += 1;
            t += Duration::from_nanos(gap_ns.max(floor_ns));
        }
        out
    }
}

impl Workload for PopulationWorkload {
    fn request_times(&self, horizon: Duration) -> Vec<Time> {
        self.events(horizon).into_iter().map(|(t, _)| t).collect()
    }

    fn admission_period(&self, horizon: Duration) -> Duration {
        // Peak rate of the materialized stream, exactly like
        // `TraceReplay`: the minimum separation, floored by the
        // generator's own gap floor.
        self.request_times(horizon)
            .windows(2)
            .map(|w| w[1] - w[0])
            .min()
            .unwrap_or_else(|| self.class.mean_gap().max(self.floor))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn poisson_stream_hits_the_aggregate_rate() {
        let class = LoadClass::new("web", 1_000_000, Duration::from_secs(10));
        let w = PopulationWorkload::new(class, 42);
        // 100k req/s → ~3000 over 30 ms (minus the 1 ms start offset).
        let n = w.request_times(ms(30)).len() as f64;
        assert!((2000.0..4200.0).contains(&n), "got {n} requests");
    }

    #[test]
    fn streams_are_strictly_increasing_and_seeded() {
        for arrival in [
            Arrival::Poisson,
            Arrival::Bursty {
                on: ms(2),
                off: ms(3),
            },
            Arrival::Ramp { from_permille: 100 },
        ] {
            let class = LoadClass::new("c", 200_000, Duration::from_secs(5)).arrival(arrival);
            let a = PopulationWorkload::new(class.clone(), 9).events(ms(20));
            let b = PopulationWorkload::new(class.clone(), 9).events(ms(20));
            let c = PopulationWorkload::new(class, 10).events(ms(20));
            assert_eq!(a, b, "{arrival:?}: same seed must reproduce");
            assert_ne!(a, c, "{arrival:?}: different seed must differ");
            assert!(
                a.windows(2).all(|p| p[0].0 < p[1].0),
                "{arrival:?}: instants must strictly increase"
            );
        }
    }

    #[test]
    fn bursty_stream_goes_silent_in_the_off_window() {
        let class =
            LoadClass::new("tick", 100_000, Duration::from_secs(1)).arrival(Arrival::Bursty {
                on: ms(2),
                off: ms(8),
            });
        let w = PopulationWorkload::new(class, 3).start(Time::ZERO);
        let times = w.request_times(ms(10));
        assert!(!times.is_empty());
        for t in &times {
            let pos = t.elapsed_since(Time::ZERO).as_nanos() % ms(10).as_nanos();
            assert!(pos < ms(2).as_nanos(), "arrival at {t:?} outside on-window");
        }
    }

    #[test]
    fn ramp_stream_accelerates_toward_the_horizon() {
        let class = LoadClass::new("diurnal", 500_000, Duration::from_secs(5))
            .arrival(Arrival::Ramp { from_permille: 100 });
        let times = PopulationWorkload::new(class, 11).request_times(ms(40));
        let mid = Time::ZERO + ms(20);
        let early = times.iter().filter(|t| **t < mid).count();
        let late = times.len() - early;
        assert!(
            late > early * 2,
            "ramp should back-load: {early} early vs {late} late"
        );
    }

    #[test]
    fn admission_period_is_the_peak_separation() {
        let class = LoadClass::new("c", 10_000, Duration::from_secs(1));
        let w = PopulationWorkload::new(class, 5);
        let times = w.request_times(ms(50));
        let min_gap = times.windows(2).map(|p| p[1] - p[0]).min().unwrap();
        assert_eq!(w.admission_period(ms(50)), min_gap);
        assert!(min_gap >= Duration::from_micros(1), "floor respected");
    }
}
