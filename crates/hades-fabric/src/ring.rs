//! Consistent-hash placement ring.
//!
//! The fabric splits its keyspace into shards and places each shard on a
//! *placement* — a fixed replica group of nodes — by consistent hashing:
//! every placement contributes `vnodes` pseudo-random points to a ring of
//! `u64` hashes, and a shard lands on the placement owning the first ring
//! point at or after the shard's own hash. The construction is a pure
//! function of `(placements, vnodes)`, so two fabrics built from the same
//! shape agree on every owner without any coordination — exactly the
//! property a router and a director need to share a table by value.
//!
//! Virtual nodes keep the split balanced: with `vnodes` points per
//! placement the expected share of each placement is `1/placements` with
//! variance shrinking as `vnodes` grows.
//!
//! # Examples
//!
//! ```
//! use hades_fabric::ring::HashRing;
//!
//! let ring = HashRing::new(4, 16);
//! let owner = ring.owner(0xDEAD_BEEF);
//! assert!(owner < 4);
//! // The successor is the next *distinct* placement clockwise — the
//! // natural home for a shard's standby group.
//! assert_ne!(ring.successor(0xDEAD_BEEF), owner);
//! ```

/// The 64-bit finalizer of splitmix64: a cheap, deterministic, well-mixed
/// hash used for ring points, shard points and workload key streams.
///
/// # Examples
///
/// ```
/// use hades_fabric::ring::mix64;
///
/// assert_ne!(mix64(1), mix64(2));
/// assert_eq!(mix64(42), mix64(42));
/// ```
pub fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Salt separating ring-point hashes from every other `mix64` stream.
const RING_SALT: u64 = 0x52_49_4E_47; // "RING"

/// A consistent-hash ring over `placements` slots, `vnodes` points each.
///
/// Points are sorted; ownership lookups are a binary search. The ring is
/// immutable — rebalancing in the fabric is expressed as *routing* around
/// dead placements (see `FabricDirector`), not as ring surgery, so the
/// same table stays valid for the whole run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashRing {
    /// `(point, placement)` pairs, ascending by point.
    points: Vec<(u64, u32)>,
    placements: u32,
}

impl HashRing {
    /// Builds the ring for `placements` slots with `vnodes` points each.
    ///
    /// # Panics
    ///
    /// Panics if `placements` is zero or `vnodes` is zero.
    pub fn new(placements: u32, vnodes: u32) -> Self {
        assert!(placements > 0, "a ring needs at least one placement");
        assert!(vnodes > 0, "a ring needs at least one virtual node");
        let mut points: Vec<(u64, u32)> = (0..placements)
            .flat_map(|p| {
                (0..vnodes).map(move |v| (mix64(RING_SALT ^ ((p as u64) << 32 | v as u64)), p))
            })
            .collect();
        points.sort_unstable();
        points.dedup_by_key(|(h, _)| *h);
        HashRing { points, placements }
    }

    /// Number of placements the ring was built over.
    pub fn placements(&self) -> u32 {
        self.placements
    }

    /// The placement owning `point`: the slot of the first ring point at
    /// or after it, wrapping at the top of the hash space.
    pub fn owner(&self, point: u64) -> u32 {
        let idx = self.points.partition_point(|(h, _)| *h < point);
        self.points[idx % self.points.len()].1
    }

    /// The next *distinct* placement clockwise after `point`'s owner —
    /// where a shard's standby group lives. Falls back to the owner when
    /// the ring has a single placement.
    pub fn successor(&self, point: u64) -> u32 {
        let owner = self.owner(point);
        let start = self.points.partition_point(|(h, _)| *h < point);
        for step in 1..=self.points.len() {
            let slot = self.points[(start + step) % self.points.len()].1;
            if slot != owner {
                return slot;
            }
        }
        owner
    }
}

/// Stamps requests with their shard and resolves shard → placement.
///
/// Routing is two deterministic hops: a request *key* hashes onto one of
/// `shards` shards, and the shard's own ring point resolves to its home
/// (primary) and standby placements. Both hops are pure functions, so the
/// router can be rebuilt anywhere from `(shards, ring)` and agree with
/// every other copy.
///
/// # Examples
///
/// ```
/// use hades_fabric::ring::{HashRing, ShardRouter};
///
/// let router = ShardRouter::new(64, HashRing::new(8, 16));
/// let shard = router.shard_of(0xFACE);
/// assert!(shard < 64);
/// assert_ne!(router.home(shard), router.standby(shard));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRouter {
    shards: u32,
    ring: HashRing,
}

/// Salt separating shard ring points from request-key hashes.
const SHARD_SALT: u64 = 0x53_48_41_52_44; // "SHARD"

impl ShardRouter {
    /// A router over `shards` shards placed on `ring`.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: u32, ring: HashRing) -> Self {
        assert!(shards > 0, "a router needs at least one shard");
        ShardRouter { shards, ring }
    }

    /// Number of shards the keyspace is split into.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// The placement ring the router resolves shards against.
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// The shard a request key is stamped with.
    pub fn shard_of(&self, key: u64) -> u32 {
        (mix64(key) % self.shards as u64) as u32
    }

    /// The shard's ring point (its position in the hash space).
    fn shard_point(shard: u32) -> u64 {
        mix64(SHARD_SALT ^ shard as u64)
    }

    /// The shard's home placement — where its primary group runs.
    pub fn home(&self, shard: u32) -> u32 {
        self.ring.owner(Self::shard_point(shard))
    }

    /// The shard's standby placement — the next distinct placement
    /// clockwise, where its paused successor group waits.
    pub fn standby(&self, shard: u32) -> u32 {
        self.ring.successor(Self::shard_point(shard))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_deterministic_and_covers_every_placement() {
        let a = HashRing::new(8, 16);
        let b = HashRing::new(8, 16);
        assert_eq!(a, b);
        let mut seen = std::collections::BTreeSet::new();
        for key in 0..4096u64 {
            seen.insert(a.owner(mix64(key)));
        }
        assert_eq!(seen.len(), 8, "every placement owns some keys");
    }

    #[test]
    fn successor_is_a_distinct_placement() {
        let ring = HashRing::new(8, 16);
        for key in 0..1024u64 {
            let p = mix64(key);
            assert_ne!(ring.successor(p), ring.owner(p));
        }
    }

    #[test]
    fn single_placement_ring_is_its_own_successor() {
        let ring = HashRing::new(1, 4);
        assert_eq!(ring.owner(7), 0);
        assert_eq!(ring.successor(7), 0);
    }

    #[test]
    fn vnodes_balance_the_split() {
        let ring = HashRing::new(8, 64);
        let mut counts = [0u32; 8];
        for key in 0..8192u64 {
            counts[ring.owner(mix64(key)) as usize] += 1;
        }
        let (lo, hi) = (*counts.iter().min().unwrap(), *counts.iter().max().unwrap());
        // Perfect balance would be 1024 each; vnodes keep the spread
        // well inside a factor of two.
        assert!(hi < lo * 2, "imbalanced split: {counts:?}");
    }

    #[test]
    fn router_spreads_shards_over_placements() {
        let router = ShardRouter::new(64, HashRing::new(8, 16));
        let mut homes = std::collections::BTreeSet::new();
        for s in 0..64 {
            assert!(router.home(s) < 8);
            assert_ne!(router.home(s), router.standby(s));
            homes.insert(router.home(s));
        }
        assert!(homes.len() >= 6, "shards concentrated: {homes:?}");
    }
}
