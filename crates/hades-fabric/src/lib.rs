//! Sharded service fabric over the HADES cluster runtime.
//!
//! The cluster layer (`hades-cluster`) runs a handful of replicated
//! groups under explicit workloads. This crate scales that picture to a
//! *service fabric*: a keyspace split into shards, each shard served by
//! a Δ-atomic-multicast replica group, under a simulated population of
//! up to millions of clients — without ever materializing a per-client
//! actor.
//!
//! Three pieces compose the fabric:
//!
//! * **Population workloads** ([`LoadClass`], [`PopulationWorkload`]) —
//!   one generator per load *class*, carrying a client-count multiplier
//!   and synthesizing the class's aggregate arrival process
//!   (Poisson, bursty, diurnal ramp). The generators implement the
//!   cluster's `Workload` trait, so they also drop into ordinary
//!   `ClusterSpec`s unchanged.
//! * **Consistent-hash placement** ([`HashRing`], [`ShardRouter`]) —
//!   shards land on fixed replica *placements* via a virtual-node hash
//!   ring; every request key is stamped with its shard and routed to
//!   the owning group. Tables are pure functions of the fabric shape.
//! * **Rebalancing director** ([`FabricDirector`]) — a scenario driver
//!   that reacts to failure detections and view installs by moving
//!   *only the shards homed on the affected placement*: retire the
//!   primary group, admit the shard's paused standby group on the ring
//!   successor, and stamp a `shard-moved` event into the run.
//!
//! [`FabricSpec`] assembles all three into a plain `ClusterSpec` and
//! folds the run into a [`FabricReport`]: per-shard and aggregate
//! p50/p95/p99/p999 response latency graded against the analytic
//! `Δ + δmax` output bound, routed/moved/dropped request counts, and
//! the `fabric.*` telemetry family.
//!
//! Everything is deterministic: same shape, same seed — byte-identical
//! schedules, events and reports.
//!
//! # Examples
//!
//! A 6-node fabric of 8 shards under 50 000 simulated clients:
//!
//! ```
//! use hades_fabric::{FabricSpec, LoadClass};
//! use hades_time::Duration;
//!
//! let run = FabricSpec::new(6, 8)
//!     .class(LoadClass::new("web", 50_000, Duration::from_secs(5)))
//!     .horizon(Duration::from_millis(10))
//!     .run()
//!     .expect("fabric runs");
//! assert_eq!(run.report.per_shard.len(), 8);
//! assert!(run.report.totals.routed > 0);
//! assert!(run.report.moves.is_empty(), "no faults, no moves");
//! ```

#![warn(missing_docs)]

pub mod director;
pub mod fabric;
pub mod ring;
pub mod workload;

pub use director::FabricDirector;
pub use fabric::{
    FabricError, FabricReport, FabricRun, FabricSpec, FabricTotals, ShardMove, ShardStats,
};
pub use ring::{mix64, HashRing, ShardRouter};
pub use workload::{Arrival, LoadClass, PopulationWorkload};
