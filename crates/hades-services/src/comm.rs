//! Time-bounded reliable communication (the "Rel. Bcast" / "Rel. Mcast"
//! boxes of Figure 1).
//!
//! Three primitives, each with an explicit worst-case delivery bound so the
//! feasibility test can account for communication:
//!
//! * [`ReliableP2p`] — point-to-point with positive acknowledgement and
//!   bounded retransmission: masks up to `retries` omission failures;
//!   worst-case delivery `retries · (2δmax)` after which the omission is
//!   *detected* (fail-aware, never silent).
//! * [`BroadcastSim`] — reliable broadcast by message diffusion: every
//!   correct receiver relays the first copy it sees, so delivery tolerates
//!   `f` crashed nodes with bound `(f + 1) · δmax`.
//! * [`DeltaMulticast`] — Δ-protocol atomic multicast on synchronized
//!   clocks: messages carry a sender timestamp and are delivered at
//!   `ts + Δ` in timestamp order, giving total order across the group.

use hades_sim::{Delivery, Engine, Network, NodeId, Scheduler, Simulation};
use hades_time::{Duration, Time};
use std::collections::{BTreeMap, BTreeSet, HashSet};

// ---------------------------------------------------------------------
// Reliable point-to-point
// ---------------------------------------------------------------------

/// Configuration of the acknowledged point-to-point primitive.
#[derive(Debug, Clone, Copy)]
pub struct P2pConfig {
    /// Maximum number of transmissions (1 = no retry).
    pub max_attempts: u32,
    /// Retransmission timeout; must be at least the round-trip bound
    /// `2δmax` to avoid spurious retries.
    pub timeout: Duration,
}

impl P2pConfig {
    /// A configuration derived from the network's worst-case delay:
    /// timeout `2δmax + 1 µs`, with the given attempt budget.
    pub fn for_network(net: &Network, max_attempts: u32) -> Self {
        P2pConfig {
            max_attempts,
            timeout: net.max_delay().saturating_mul(2) + Duration::from_micros(1),
        }
    }

    /// Worst-case time until delivery-or-detection: all attempts time out.
    pub fn detection_bound(&self) -> Duration {
        self.timeout.saturating_mul(self.max_attempts as u64)
    }
}

/// Outcome of one reliable send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum P2pOutcome {
    /// Delivered (and acknowledged) at the given time, on the given
    /// attempt (1-based).
    Delivered {
        /// When the receiver got the message.
        delivered_at: Time,
        /// Which attempt succeeded.
        attempt: u32,
    },
    /// All attempts exhausted: omission *detected* at the given time.
    Failed {
        /// When the sender gave up.
        detected_at: Time,
    },
}

impl P2pOutcome {
    /// Whether the message arrived.
    pub fn is_delivered(&self) -> bool {
        matches!(self, P2pOutcome::Delivered { .. })
    }
}

/// The acknowledged, retransmitting point-to-point primitive.
#[derive(Debug)]
pub struct ReliableP2p {
    cfg: P2pConfig,
}

impl ReliableP2p {
    /// Creates the primitive.
    pub fn new(cfg: P2pConfig) -> Self {
        ReliableP2p { cfg }
    }

    /// Sends one message `from → to` at `now`, driving retransmissions
    /// until delivery or attempt exhaustion. Mutates the network's RNG
    /// state (each attempt samples the link).
    pub fn send(&self, net: &mut Network, from: NodeId, to: NodeId, now: Time) -> P2pOutcome {
        let mut t = now;
        for attempt in 1..=self.cfg.max_attempts {
            match net.transit(from, to, t) {
                Delivery::At(arrival) => {
                    // The ack may be lost too, triggering a duplicate
                    // transmission, but the *data* is delivered; duplicate
                    // suppression is by sequence number. Delivery time is
                    // what the bound promises.
                    return P2pOutcome::Delivered {
                        delivered_at: arrival,
                        attempt,
                    };
                }
                Delivery::Omitted => {
                    t += self.cfg.timeout;
                }
            }
        }
        P2pOutcome::Failed { detected_at: t }
    }
}

// ---------------------------------------------------------------------
// Reliable broadcast by diffusion
// ---------------------------------------------------------------------

/// Result of one diffusion broadcast.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BroadcastOutcome {
    /// Nodes (correct at send time) that delivered, with delivery times.
    pub delivered: BTreeMap<u32, Time>,
    /// Correct nodes that never delivered (validity/agreement violation if
    /// non-empty while the initiator is correct).
    pub missed: Vec<u32>,
    /// Total point-to-point messages consumed.
    pub messages: u64,
    /// The analytic delivery bound `(f + 1) · δmax`.
    pub bound: Duration,
}

impl BroadcastOutcome {
    /// Latest delivery among correct nodes, if all delivered.
    pub fn max_latency(&self, sent_at: Time) -> Option<Duration> {
        if !self.missed.is_empty() {
            return None;
        }
        self.delivered.values().map(|t| *t - sent_at).max()
    }

    /// Agreement: either all correct nodes delivered or none did.
    pub fn agreement_holds(&self) -> bool {
        self.delivered.is_empty() || self.missed.is_empty()
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum DiffEv {
    Receive { node: u32 },
}

struct Diffusion {
    net: Network,
    delivered: BTreeMap<u32, Time>,
    relayed: HashSet<u32>,
    messages: u64,
    attempts: u32,
    timeout: Duration,
}

impl Simulation for Diffusion {
    type Event = DiffEv;
    fn handle(&mut self, now: Time, ev: DiffEv, sched: &mut Scheduler<DiffEv>) {
        let DiffEv::Receive { node } = ev;
        if self.net.fault_plan().is_crashed(NodeId(node), now) {
            return; // dead nodes neither deliver nor relay
        }
        if self.delivered.contains_key(&node) {
            return; // duplicate
        }
        self.delivered.insert(node, now);
        // Relay once to every other node (diffusion), retransmitting up to
        // `attempts` times per link to mask omission failures.
        if self.relayed.insert(node) {
            let targets: Vec<NodeId> = self.net.nodes().filter(|n| n.0 != node).collect();
            for to in targets {
                let mut t_send = now;
                for _ in 0..self.attempts {
                    self.messages += 1;
                    match self.net.transit(NodeId(node), to, t_send) {
                        Delivery::At(t) => {
                            sched.post(t, DiffEv::Receive { node: to.0 });
                            break;
                        }
                        Delivery::Omitted => t_send += self.timeout,
                    }
                }
            }
        }
    }
}

/// Reliable-broadcast simulation: diffusion over a faulty network.
///
/// # Examples
///
/// ```
/// use hades_services::BroadcastSim;
/// use hades_sim::{LinkConfig, Network, NodeId, SimRng};
/// use hades_time::{Duration, Time};
///
/// let net = Network::homogeneous(
///     4,
///     LinkConfig::reliable(Duration::from_micros(5), Duration::from_micros(20)),
///     SimRng::seed_from(1),
/// );
/// let out = BroadcastSim::new(net, 1).broadcast(NodeId(0), Time::ZERO);
/// assert!(out.agreement_holds());
/// assert_eq!(out.delivered.len(), 4, "all four nodes deliver");
/// ```
#[derive(Debug)]
pub struct BroadcastSim {
    net: Network,
    f: u32,
    attempts: u32,
}

impl BroadcastSim {
    /// Creates a broadcast simulation tolerating up to `f` crashed nodes,
    /// with single-shot relays (no omission masking).
    pub fn new(net: Network, f: u32) -> Self {
        BroadcastSim {
            net,
            f,
            attempts: 1,
        }
    }

    /// Sets the per-link retransmission budget: each relay link masks up
    /// to `attempts − 1` consecutive omission failures.
    pub fn with_attempts(mut self, attempts: u32) -> Self {
        self.attempts = attempts.max(1);
        self
    }

    /// Broadcasts from `initiator` at `sent_at` and runs to quiescence.
    pub fn broadcast(self, initiator: NodeId, sent_at: Time) -> BroadcastOutcome {
        let timeout = self.net.max_delay().saturating_mul(2) + Duration::from_micros(1);
        let bound = (self.net.max_delay() + timeout.saturating_mul(self.attempts as u64 - 1))
            .saturating_mul(self.f as u64 + 1);
        let node_count = self.net.node_count();
        let plan_crashed: Vec<u32> = (0..node_count)
            .filter(|n| self.net.fault_plan().crash_time(NodeId(*n)).is_some())
            .collect();
        let mut sim = Diffusion {
            net: self.net,
            delivered: BTreeMap::new(),
            relayed: HashSet::new(),
            messages: 0,
            attempts: self.attempts,
            timeout,
        };
        let mut engine = Engine::new();
        engine.post(sent_at, DiffEv::Receive { node: initiator.0 });
        engine.run_to_completion(&mut sim);
        let missed: Vec<u32> = (0..node_count)
            .filter(|n| !sim.delivered.contains_key(n) && !plan_crashed.contains(n))
            .collect();
        BroadcastOutcome {
            delivered: sim.delivered,
            missed,
            messages: sim.messages,
            bound,
        }
    }
}

// ---------------------------------------------------------------------
// Δ-protocol atomic multicast
// ---------------------------------------------------------------------

/// Atomic multicast on synchronized clocks: a message stamped `ts` is
/// delivered at `ts + Δ` in `(ts, sender)` order. If the network can hold
/// its delay bound and clocks their precision, `Δ ≥ δmax + γ` guarantees
/// every correct receiver delivers every message, in the same total order.
#[derive(Debug)]
pub struct DeltaMulticast {
    /// The delivery delay Δ.
    pub delta: Duration,
}

impl DeltaMulticast {
    /// Creates the protocol with `Δ = δmax + precision`.
    pub fn for_network(net: &Network, precision: Duration) -> Self {
        DeltaMulticast {
            delta: net.max_delay() + precision,
        }
    }

    /// Computes each receiver's delivery sequence for a set of multicasts
    /// `(sender, timestamp)`. A message reaches a receiver only if its
    /// transit arrives by `ts + Δ`; late arrivals are discarded (and would
    /// be flagged by the sender's ack protocol). Returns per-receiver
    /// ordered lists of `(timestamp, sender)`.
    pub fn deliver_all(
        &self,
        net: &mut Network,
        sends: &[(NodeId, Time)],
    ) -> BTreeMap<u32, Vec<(Time, u32)>> {
        let mut out: BTreeMap<u32, Vec<(Time, u32)>> = BTreeMap::new();
        let nodes: Vec<NodeId> = net.nodes().collect();
        for receiver in &nodes {
            let mut inbox: Vec<(Time, u32)> = Vec::new();
            for (sender, ts) in sends {
                if sender == receiver {
                    inbox.push((*ts, sender.0)); // local copy always on time
                    continue;
                }
                if let Delivery::At(arrival) = net.transit(*sender, *receiver, *ts) {
                    if arrival <= *ts + self.delta {
                        inbox.push((*ts, sender.0));
                    }
                }
            }
            // Deliver in (timestamp, sender) order at ts + Δ.
            inbox.sort();
            out.insert(receiver.0, inbox);
        }
        out
    }
}

/// Actor-side Δ-protocol delivery buffer: the engine-driven face of
/// [`DeltaMulticast`].
///
/// A [`crate::group::ReplicaGroup`] (or any other actor) feeds every
/// received multicast copy into the inbox with its sender timestamp; the
/// inbox discards late copies (arrival past `ts + Δ`), suppresses
/// duplicates by message id, and releases messages at `ts + Δ` in
/// `(ts, sender, id)` order — the total order the Δ-protocol guarantees
/// across receivers with synchronized clocks.
///
/// # Examples
///
/// ```
/// use hades_services::comm::DeltaInbox;
/// use hades_time::{Duration, Time};
///
/// let delta = Duration::from_micros(30);
/// let mut inbox = DeltaInbox::new(delta);
/// let t0 = Time::ZERO;
/// // Two messages, the later-stamped one arriving first.
/// assert_eq!(
///     inbox.accept(7, t0 + Duration::from_micros(10), 1, t0 + Duration::from_micros(15)),
///     Some(t0 + Duration::from_micros(40)),
/// );
/// assert_eq!(
///     inbox.accept(3, t0, 0, t0 + Duration::from_micros(20)),
///     Some(t0 + Duration::from_micros(30)),
/// );
/// // Delivery at ts + Δ, in timestamp order regardless of arrival order.
/// assert_eq!(inbox.due(t0 + Duration::from_micros(30)), vec![(3, t0, 0)]);
/// assert_eq!(
///     inbox.due(t0 + Duration::from_micros(40)),
///     vec![(7, t0 + Duration::from_micros(10), 1)],
/// );
/// ```
#[derive(Debug, Default)]
pub struct DeltaInbox {
    /// The delivery delay Δ.
    delta: Duration,
    /// Pending copies as `(ts, sender, id)` — the delivery order.
    pending: BTreeSet<(Time, u32, u64)>,
    /// Ids already accepted or delivered (duplicate suppression).
    seen: HashSet<u64>,
    /// Copies discarded for arriving past `ts + Δ`.
    late_discards: u64,
    /// Duplicate copies suppressed.
    duplicates: u64,
}

impl DeltaInbox {
    /// An empty inbox delivering at `ts + delta`.
    pub fn new(delta: Duration) -> Self {
        DeltaInbox {
            delta,
            ..DeltaInbox::default()
        }
    }

    /// The delivery delay Δ.
    pub fn delta(&self) -> Duration {
        self.delta
    }

    /// Offers one received copy of message `id`, stamped `ts` by `sender`,
    /// arriving at `now`. Returns the delivery due time `ts + Δ` when the
    /// copy was accepted (the caller arms a timer there), `None` when it
    /// was discarded as late or suppressed as a duplicate.
    pub fn accept(&mut self, id: u64, ts: Time, sender: u32, now: Time) -> Option<Time> {
        if now > ts + self.delta {
            self.late_discards += 1;
            return None;
        }
        if !self.seen.insert(id) {
            self.duplicates += 1;
            return None;
        }
        self.pending.insert((ts, sender, id));
        Some(ts + self.delta)
    }

    /// Releases every message due by `now` (`ts + Δ ≤ now`), in
    /// `(ts, sender, id)` order, as `(id, ts, sender)` triples.
    pub fn due(&mut self, now: Time) -> Vec<(u64, Time, u32)> {
        let mut out = Vec::new();
        while let Some(&(ts, sender, id)) = self.pending.first() {
            if ts + self.delta > now {
                break;
            }
            self.pending.pop_first();
            out.push((id, ts, sender));
        }
        out
    }

    /// Whether message `id` has been accepted (or already delivered).
    pub fn knows(&self, id: u64) -> bool {
        self.seen.contains(&id)
    }

    /// Copies discarded for arriving past their delivery instant.
    pub fn late_discards(&self) -> u64 {
        self.late_discards
    }

    /// Duplicate copies suppressed by message id.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Drops all pending (undelivered) copies — the volatile part of a
    /// cold restart. The duplicate-suppression memory survives: delivered
    /// ids must not be re-delivered to a restarted state machine.
    pub fn clear_pending(&mut self) {
        self.pending.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hades_sim::{FaultPlan, LinkConfig, SimRng};

    fn us(n: u64) -> Duration {
        Duration::from_micros(n)
    }

    fn reliable_net(n: u32, seed: u64) -> Network {
        Network::homogeneous(
            n,
            LinkConfig::reliable(us(5), us(20)),
            SimRng::seed_from(seed),
        )
    }

    fn lossy_net(n: u32, permille: u32, seed: u64) -> Network {
        Network::homogeneous(
            n,
            LinkConfig::reliable(us(5), us(20)).with_omissions(permille),
            SimRng::seed_from(seed),
        )
    }

    #[test]
    fn p2p_delivers_first_attempt_on_healthy_link() {
        let mut net = reliable_net(2, 1);
        let p2p = ReliableP2p::new(P2pConfig::for_network(&net, 3));
        match p2p.send(&mut net, NodeId(0), NodeId(1), Time::ZERO) {
            P2pOutcome::Delivered {
                attempt,
                delivered_at,
            } => {
                assert_eq!(attempt, 1);
                assert!(delivered_at <= Time::ZERO + us(20));
            }
            P2pOutcome::Failed { .. } => panic!("healthy link failed"),
        }
    }

    #[test]
    fn p2p_retries_mask_omissions() {
        // 50% loss: with 8 attempts delivery is near-certain.
        let mut net = lossy_net(2, 500, 3);
        let p2p = ReliableP2p::new(P2pConfig::for_network(&net, 8));
        let mut delivered = 0;
        for i in 0..100 {
            let t = Time::ZERO + us(1000 * i);
            if p2p.send(&mut net, NodeId(0), NodeId(1), t).is_delivered() {
                delivered += 1;
            }
        }
        assert!(delivered >= 98, "only {delivered}/100 delivered");
    }

    #[test]
    fn p2p_detects_permanent_omission_within_bound() {
        let plan = FaultPlan::new().cut_link(NodeId(0), NodeId(1), Time::ZERO, Time::MAX);
        let mut net = reliable_net(2, 1).with_fault_plan(plan);
        let cfg = P2pConfig::for_network(&net, 4);
        let p2p = ReliableP2p::new(cfg);
        match p2p.send(&mut net, NodeId(0), NodeId(1), Time::ZERO) {
            P2pOutcome::Failed { detected_at } => {
                assert_eq!(detected_at, Time::ZERO + cfg.detection_bound());
            }
            P2pOutcome::Delivered { .. } => panic!("cut link delivered"),
        }
    }

    #[test]
    fn broadcast_reaches_all_on_healthy_network() {
        let out = BroadcastSim::new(reliable_net(5, 2), 1).broadcast(NodeId(0), Time::ZERO);
        assert_eq!(out.delivered.len(), 5);
        assert!(out.missed.is_empty());
        assert!(out.agreement_holds());
        let lat = out.max_latency(Time::ZERO).unwrap();
        assert!(
            lat <= out.bound,
            "latency {lat} exceeds bound {}",
            out.bound
        );
    }

    #[test]
    fn broadcast_survives_initiator_crash_after_first_send() {
        // Initiator crashes 1 µs after sending: its messages at t=0 are
        // already in flight; relays complete the diffusion.
        let plan = FaultPlan::new().crash_at(NodeId(0), Time::from_nanos(1_000));
        let net = reliable_net(5, 4).with_fault_plan(plan);
        let out = BroadcastSim::new(net, 1).broadcast(NodeId(0), Time::ZERO);
        // All *other* correct nodes deliver (initiator itself delivered at
        // t=0 before crashing).
        for n in 1..5 {
            assert!(out.delivered.contains_key(&n), "node {n} missed");
        }
        assert!(out.agreement_holds());
    }

    #[test]
    fn broadcast_diffusion_masks_single_link_omissions() {
        // The 0→3 link always drops; node 3 still delivers via relays.
        let mut net = reliable_net(4, 5);
        net.set_link(
            NodeId(0),
            NodeId(3),
            LinkConfig::reliable(us(5), us(20)).with_omissions(1000),
        );
        let out = BroadcastSim::new(net, 1).broadcast(NodeId(0), Time::ZERO);
        assert!(out.delivered.contains_key(&3));
        assert!(out.missed.is_empty());
    }

    #[test]
    fn broadcast_message_complexity_is_n_squared() {
        let out = BroadcastSim::new(reliable_net(6, 6), 1).broadcast(NodeId(2), Time::ZERO);
        // Every delivering node relays to n−1 others: n(n−1) total.
        assert_eq!(out.messages, 30);
    }

    #[test]
    fn delta_multicast_total_order_across_receivers() {
        let mut net = reliable_net(4, 7);
        let dm = DeltaMulticast::for_network(&net, us(2));
        let sends = vec![
            (NodeId(0), Time::ZERO + us(10)),
            (NodeId(1), Time::ZERO + us(5)),
            (NodeId(2), Time::ZERO + us(10)), // same ts as node 0: sender order
        ];
        let deliveries = dm.deliver_all(&mut net, &sends);
        let reference = deliveries.get(&0).unwrap().clone();
        assert_eq!(
            reference,
            vec![
                (Time::ZERO + us(5), 1),
                (Time::ZERO + us(10), 0),
                (Time::ZERO + us(10), 2),
            ]
        );
        for (node, seq) in &deliveries {
            assert_eq!(seq, &reference, "receiver {node} diverged");
        }
    }

    #[test]
    fn delta_bound_uses_network_delay() {
        let net = reliable_net(3, 8);
        let dm = DeltaMulticast::for_network(&net, us(3));
        assert_eq!(dm.delta, us(23));
    }

    #[test]
    fn delta_inbox_orders_by_timestamp_then_sender() {
        let mut inbox = DeltaInbox::new(us(50));
        let t = |n| Time::ZERO + us(n);
        inbox.accept(2, t(10), 3, t(20));
        inbox.accept(1, t(10), 1, t(25));
        inbox.accept(0, t(5), 2, t(30));
        assert!(inbox.due(t(54)).is_empty(), "nothing due before ts + delta");
        assert_eq!(
            inbox.due(t(60)),
            vec![(0, t(5), 2), (1, t(10), 1), (2, t(10), 3)],
            "(ts, sender) order, all due by 60"
        );
    }

    #[test]
    fn delta_inbox_discards_late_and_suppresses_duplicates() {
        let mut inbox = DeltaInbox::new(us(50));
        let t = |n| Time::ZERO + us(n);
        assert_eq!(inbox.accept(9, t(0), 0, t(51)), None, "late copy dropped");
        assert_eq!(inbox.late_discards(), 1);
        assert_eq!(inbox.accept(9, t(60), 0, t(70)), Some(t(110)));
        assert_eq!(
            inbox.accept(9, t(60), 1, t(75)),
            None,
            "second copy of the same id suppressed"
        );
        assert_eq!(inbox.duplicates(), 1);
        assert!(inbox.knows(9));
        assert_eq!(inbox.due(t(110)), vec![(9, t(60), 0)]);
        assert_eq!(
            inbox.accept(9, t(120), 0, t(125)),
            None,
            "delivered ids stay suppressed"
        );
    }

    #[test]
    fn delta_inbox_restart_drops_pending_but_not_memory() {
        let mut inbox = DeltaInbox::new(us(50));
        let t = |n| Time::ZERO + us(n);
        inbox.accept(1, t(0), 0, t(10));
        inbox.clear_pending();
        assert!(inbox.due(t(100)).is_empty(), "pending lost with the crash");
        assert_eq!(inbox.accept(1, t(60), 0, t(65)), None, "memory survives");
    }
}
