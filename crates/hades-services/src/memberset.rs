//! Variable-length membership sets.
//!
//! Membership masks used to be packed into a single `u64` message
//! payload, which capped clusters at 48 nodes (16 bits of every payload
//! were claimed by protocol framing). [`MemberSet`] removes the cap: a
//! small-vec bitset that keeps the first 64 node bits inline (zero
//! allocation for the common LAN-scale cluster) and spills into heap
//! words beyond, with a compact wire encoding.
//!
//! Two encodings are exposed:
//!
//! * **32-bit wire words** ([`MemberSet::wire_word`] /
//!   [`MemberSet::set_wire_word`]) — the unit the agent protocols ship
//!   inside their fixed 64-bit message cells. A membership of `n` nodes
//!   takes [`MemberSet::wire_words`]`(n)` words; each word travels as an
//!   independent message, which works because every membership merge rule
//!   (exclusion by intersection, admission by union) is bitwise and can
//!   therefore be applied word by word.
//! * **byte encoding** ([`MemberSet::encode`] / [`MemberSet::decode`]) —
//!   a length-prefixed little-endian form with trailing zero words
//!   trimmed, for checkpoints and tests.

/// The largest cluster the agent wire protocols address: wire word
/// indices are carried in 8 payload bits, giving `256 · 32` node bits.
pub const MAX_NODES: u32 = 8_192;

/// A set of node ids, stored as a variable-length bitset.
///
/// The first 64 bits live inline; larger clusters spill into heap words.
/// Trailing zero spill words are always trimmed so that equal sets
/// compare equal regardless of construction history.
///
/// # Examples
///
/// ```
/// use hades_services::memberset::MemberSet;
///
/// let mut view = MemberSet::full(96);
/// assert_eq!(view.len(), 96);
/// view.remove(70);
/// assert!(!view.contains(70));
/// assert_eq!(view.members().count(), 95);
///
/// // Wire roundtrip: ship the set as 32-bit words, one per message.
/// let mut rebuilt = MemberSet::new();
/// for w in 0..MemberSet::wire_words(96) {
///     rebuilt.set_wire_word(w, view.wire_word(w));
/// }
/// assert_eq!(rebuilt, view);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct MemberSet {
    /// Bits of nodes 0..64.
    word0: u64,
    /// Bits of nodes 64.., 64 per word; trailing zero words trimmed.
    spill: Vec<u64>,
}

impl MemberSet {
    /// The empty set.
    pub fn new() -> Self {
        MemberSet::default()
    }

    /// The full membership `{0, …, nodes − 1}`.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` exceeds [`MAX_NODES`].
    pub fn full(nodes: u32) -> Self {
        assert!(
            nodes <= MAX_NODES,
            "membership sets address up to {MAX_NODES} nodes"
        );
        let mut s = MemberSet::new();
        for n in 0..nodes {
            s.insert(n);
        }
        s
    }

    /// A set holding exactly `node`.
    pub fn single(node: u32) -> Self {
        let mut s = MemberSet::new();
        s.insert(node);
        s
    }

    /// Builds a set from ascending-or-not member ids.
    pub fn from_members(members: &[u32]) -> Self {
        let mut s = MemberSet::new();
        for m in members {
            s.insert(*m);
        }
        s
    }

    fn word(&self, idx: usize) -> u64 {
        if idx == 0 {
            self.word0
        } else {
            self.spill.get(idx - 1).copied().unwrap_or(0)
        }
    }

    fn word_mut(&mut self, idx: usize) -> &mut u64 {
        if idx == 0 {
            &mut self.word0
        } else {
            if self.spill.len() < idx {
                self.spill.resize(idx, 0);
            }
            &mut self.spill[idx - 1]
        }
    }

    fn trim(&mut self) {
        while self.spill.last() == Some(&0) {
            self.spill.pop();
        }
    }

    /// Number of 64-bit words in use (for iteration).
    fn words_in_use(&self) -> usize {
        1 + self.spill.len()
    }

    /// Adds `node`; returns whether it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `node` is at or beyond [`MAX_NODES`].
    pub fn insert(&mut self, node: u32) -> bool {
        assert!(
            node < MAX_NODES,
            "node {node} beyond the {MAX_NODES}-node addressing cap"
        );
        let w = self.word_mut(node as usize / 64);
        let bit = 1u64 << (node % 64);
        let fresh = *w & bit == 0;
        *w |= bit;
        fresh
    }

    /// Removes `node`; returns whether it was present.
    pub fn remove(&mut self, node: u32) -> bool {
        let idx = node as usize / 64;
        if idx >= self.words_in_use() {
            return false;
        }
        let w = self.word_mut(idx);
        let bit = 1u64 << (node % 64);
        let had = *w & bit != 0;
        *w &= !bit;
        self.trim();
        had
    }

    /// Whether `node` is in the set.
    pub fn contains(&self, node: u32) -> bool {
        self.word(node as usize / 64) & (1u64 << (node % 64)) != 0
    }

    /// Number of members.
    pub fn len(&self) -> u32 {
        self.word0.count_ones() + self.spill.iter().map(|w| w.count_ones()).sum::<u32>()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.word0 == 0 && self.spill.iter().all(|w| *w == 0)
    }

    /// The lowest member, if any.
    pub fn first(&self) -> Option<u32> {
        for idx in 0..self.words_in_use() {
            let w = self.word(idx);
            if w != 0 {
                return Some(idx as u32 * 64 + w.trailing_zeros());
            }
        }
        None
    }

    /// Members in ascending order.
    pub fn members(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.words_in_use()).flat_map(move |idx| {
            let w = self.word(idx);
            (0..64u32)
                .filter(move |b| w & (1u64 << b) != 0)
                .map(move |b| idx as u32 * 64 + b)
        })
    }

    /// Members as a vector, ascending.
    pub fn to_vec(&self) -> Vec<u32> {
        self.members().collect()
    }

    /// In-place union: `self ∪ other`.
    pub fn union_with(&mut self, other: &MemberSet) {
        for idx in 0..other.words_in_use() {
            *self.word_mut(idx) |= other.word(idx);
        }
    }

    /// In-place intersection: `self ∩ other`.
    pub fn intersect_with(&mut self, other: &MemberSet) {
        for idx in 0..self.words_in_use() {
            *self.word_mut(idx) &= other.word(idx);
        }
        self.trim();
    }

    /// In-place difference: `self ∖ other`.
    pub fn subtract(&mut self, other: &MemberSet) {
        for idx in 0..self.words_in_use() {
            *self.word_mut(idx) &= !other.word(idx);
        }
        self.trim();
    }

    /// `self ∪ other`, by value.
    pub fn union(&self, other: &MemberSet) -> MemberSet {
        let mut s = self.clone();
        s.union_with(other);
        s
    }

    /// `self ∩ other`, by value.
    pub fn intersection(&self, other: &MemberSet) -> MemberSet {
        let mut s = self.clone();
        s.intersect_with(other);
        s
    }

    /// `self ∖ other`, by value.
    pub fn difference(&self, other: &MemberSet) -> MemberSet {
        let mut s = self.clone();
        s.subtract(other);
        s
    }

    /// Whether the two sets share any member.
    pub fn intersects(&self, other: &MemberSet) -> bool {
        (0..self.words_in_use().max(other.words_in_use()))
            .any(|idx| self.word(idx) & other.word(idx) != 0)
    }

    // --- 32-bit wire words -------------------------------------------

    /// Number of 32-bit wire words a membership of `nodes` nodes takes.
    pub fn wire_words(nodes: u32) -> u32 {
        nodes.div_ceil(32).max(1)
    }

    /// The 32-bit wire word at `idx` (nodes `32·idx .. 32·idx + 32`).
    pub fn wire_word(&self, idx: u32) -> u32 {
        let word = self.word(idx as usize / 2);
        if idx.is_multiple_of(2) {
            word as u32
        } else {
            (word >> 32) as u32
        }
    }

    /// Overwrites the 32-bit wire word at `idx`.
    pub fn set_wire_word(&mut self, idx: u32, bits: u32) {
        let w = self.word_mut(idx as usize / 2);
        if idx.is_multiple_of(2) {
            *w = (*w & !0xFFFF_FFFF) | bits as u64;
        } else {
            *w = (*w & 0xFFFF_FFFF) | ((bits as u64) << 32);
        }
        self.trim();
    }

    /// Merges one received wire word of a view-change proposal into this
    /// proposal under the membership merge rule, restricted to the nodes
    /// the word covers: exclusion wins for current members of `view`
    /// (intersection), inclusion wins for returners outside it (union).
    /// Returns whether the word changed.
    pub fn merge_wire_word(&mut self, idx: u32, bits: u32, view: &MemberSet) -> bool {
        let cur = self.wire_word(idx);
        let vm = view.wire_word(idx);
        let merged = (cur & bits & vm) | ((cur | bits) & !vm);
        if merged != cur {
            self.set_wire_word(idx, merged);
            true
        } else {
            false
        }
    }

    // --- byte encoding -----------------------------------------------

    /// Compact byte encoding: a word-count byte followed by the in-use
    /// 64-bit words, little-endian, trailing zero words trimmed.
    pub fn encode(&self) -> Vec<u8> {
        let mut words = vec![self.word0];
        words.extend_from_slice(&self.spill);
        while words.len() > 1 && words.last() == Some(&0) {
            words.pop();
        }
        let mut out = Vec::with_capacity(1 + words.len() * 8);
        out.push(words.len() as u8);
        for w in words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Decodes [`MemberSet::encode`]'s output; `None` on malformed input.
    pub fn decode(bytes: &[u8]) -> Option<MemberSet> {
        let (&count, rest) = bytes.split_first()?;
        let count = count as usize;
        if count == 0 || rest.len() != count * 8 {
            return None;
        }
        let mut words = rest
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        let word0 = words.next()?;
        let mut s = MemberSet {
            word0,
            spill: words.collect(),
        };
        s.trim();
        Some(s)
    }
}

impl FromIterator<u32> for MemberSet {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> Self {
        let mut s = MemberSet::new();
        for n in iter {
            s.insert(n);
        }
        s
    }
}

impl std::fmt::Display for MemberSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        for (i, m) in self.members().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{m}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains_across_the_inline_boundary() {
        let mut s = MemberSet::new();
        assert!(s.insert(3));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(95));
        assert!(!s.insert(95), "already present");
        assert_eq!(s.len(), 4);
        assert_eq!(s.to_vec(), vec![3, 63, 64, 95]);
        assert!(s.contains(64) && !s.contains(65));
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.first(), Some(3));
        assert!(!s.contains(64));
    }

    #[test]
    fn trailing_zero_words_do_not_break_equality() {
        let mut a = MemberSet::single(7);
        let mut b = MemberSet::single(7);
        b.insert(100);
        b.remove(100);
        assert_eq!(a, b, "spill words trimmed after removal");
        a.insert(100);
        assert_ne!(a, b);
    }

    #[test]
    fn full_set_spans_96_nodes() {
        let s = MemberSet::full(96);
        assert_eq!(s.len(), 96);
        assert_eq!(s.first(), Some(0));
        assert!(s.contains(95) && !s.contains(96));
        assert_eq!(MemberSet::wire_words(96), 3);
    }

    #[test]
    fn set_algebra() {
        let a = MemberSet::from_members(&[0, 2, 70, 90]);
        let b = MemberSet::from_members(&[2, 70, 91]);
        assert_eq!(a.intersection(&b).to_vec(), vec![2, 70]);
        assert_eq!(a.union(&b).to_vec(), vec![0, 2, 70, 90, 91]);
        assert_eq!(a.difference(&b).to_vec(), vec![0, 90]);
        assert!(a.intersects(&b));
        assert!(!MemberSet::single(1).intersects(&MemberSet::single(2)));
    }

    #[test]
    fn wire_word_roundtrip_at_96_nodes() {
        let mut s = MemberSet::full(96);
        s.remove(0);
        s.remove(33);
        s.remove(95);
        let mut back = MemberSet::new();
        for w in 0..MemberSet::wire_words(96) {
            back.set_wire_word(w, s.wire_word(w));
        }
        assert_eq!(back, s);
    }

    #[test]
    fn merge_rule_is_exclusion_for_members_inclusion_for_returners() {
        // View {0, 1, 2, 70}; proposal A drops 1, proposal B drops 70 and
        // re-admits 80.
        let view = MemberSet::from_members(&[0, 1, 2, 70]);
        let mut a = MemberSet::from_members(&[0, 2, 70]);
        let b = MemberSet::from_members(&[0, 1, 2, 80]);
        let mut changed = false;
        for w in 0..MemberSet::wire_words(96) {
            changed |= a.merge_wire_word(w, b.wire_word(w), &view);
        }
        assert!(changed);
        assert_eq!(a.to_vec(), vec![0, 2, 80], "1 and 70 excluded, 80 admitted");
    }

    #[test]
    fn byte_encoding_roundtrip_and_rejects_garbage() {
        for members in [vec![], vec![0], vec![63, 64], vec![5, 100, 8_000]] {
            let s = MemberSet::from_members(&members);
            assert_eq!(MemberSet::decode(&s.encode()), Some(s));
        }
        assert_eq!(MemberSet::decode(&[]), None);
        assert_eq!(MemberSet::decode(&[2, 0, 0]), None, "truncated words");
        assert_eq!(MemberSet::decode(&[0]), None, "zero word count");
    }
}
