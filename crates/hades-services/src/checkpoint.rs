//! State capture and recovery (checkpointing).
//!
//! The dispatcher's fault-tolerance toolbox includes *state capture*
//! (Section 3.2.1) — the primitive under passive replication and mode
//! recovery. [`CheckpointService`] combines crash-atomic
//! [`crate::storage::StableStore`] snapshots with a bounded replay log:
//! state is captured every `interval` operations; on recovery the last
//! committed snapshot is restored and the logged tail replayed, so at most
//! `interval − 1` operations are re-executed and none is lost.

use crate::storage::StableStore;

/// A replayable deterministic state machine (the replica's application
/// state).
pub trait Replayable {
    /// Applies one operation.
    fn apply(&mut self, op: u64);
    /// Serialises the current state.
    fn snapshot(&self) -> Vec<u8>;
    /// Restores from a serialised snapshot.
    fn restore(&mut self, bytes: &[u8]);
}

/// Checkpoint-and-log service around a [`Replayable`] state machine.
///
/// # Examples
///
/// ```
/// use hades_services::checkpoint::{CheckpointService, Replayable};
///
/// #[derive(Default)]
/// struct Counter(u64);
/// impl Replayable for Counter {
///     fn apply(&mut self, op: u64) { self.0 += op; }
///     fn snapshot(&self) -> Vec<u8> { self.0.to_le_bytes().to_vec() }
///     fn restore(&mut self, b: &[u8]) {
///         self.0 = u64::from_le_bytes(b.try_into().expect("8 bytes"));
///     }
/// }
///
/// let mut svc = CheckpointService::new(Counter::default(), 4);
/// for op in 1..=10 { svc.execute(op); }
/// let state_before = svc.state().0;
/// svc.crash_and_recover();
/// assert_eq!(svc.state().0, state_before, "no operation lost");
/// ```
#[derive(Debug)]
pub struct CheckpointService<S> {
    state: S,
    store: StableStore,
    log: Vec<u64>,
    interval: u32,
    since_checkpoint: u32,
    checkpoints: u64,
    replayed: u64,
}

impl<S: Replayable> CheckpointService<S> {
    /// Wraps `state`, checkpointing every `interval` operations.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn new(state: S, interval: u32) -> Self {
        assert!(interval > 0, "checkpoint interval must be positive");
        let mut store = StableStore::new();
        store.write(b"snapshot", state.snapshot());
        store.write(b"log", Vec::new());
        CheckpointService {
            state,
            store,
            log: Vec::new(),
            interval,
            since_checkpoint: 0,
            checkpoints: 1,
            replayed: 0,
        }
    }

    /// Executes one operation: applies it, logs it durably, and
    /// checkpoints when the interval elapses.
    pub fn execute(&mut self, op: u64) {
        self.state.apply(op);
        self.log.push(op);
        self.store.write(b"log", encode_log(&self.log));
        self.since_checkpoint += 1;
        if self.since_checkpoint >= self.interval {
            self.checkpoint();
        }
    }

    /// Forces a checkpoint now (atomic: snapshot and log truncation commit
    /// together or not at all).
    pub fn checkpoint(&mut self) {
        self.store.stage(b"snapshot", self.state.snapshot());
        self.store.commit(b"snapshot");
        self.log.clear();
        self.store.write(b"log", Vec::new());
        self.since_checkpoint = 0;
        self.checkpoints += 1;
    }

    /// Simulates a crash followed by recovery from stable storage: the
    /// last committed snapshot is restored and the durable log replayed.
    pub fn crash_and_recover(&mut self) {
        self.store.crash();
        let snap = self
            .store
            .read(b"snapshot")
            .expect("a committed snapshot always exists")
            .to_vec();
        self.state.restore(&snap);
        let log = decode_log(self.store.read(b"log").expect("log record exists"));
        self.replayed += log.len() as u64;
        for op in &log {
            self.state.apply(*op);
        }
        self.log = log;
        self.since_checkpoint = self.log.len() as u32;
    }

    /// The wrapped state.
    pub fn state(&self) -> &S {
        &self.state
    }

    /// Checkpoints taken (including the initial one).
    pub fn checkpoints(&self) -> u64 {
        self.checkpoints
    }

    /// Operations replayed across all recoveries.
    pub fn replayed(&self) -> u64 {
        self.replayed
    }

    /// Current replay-log length (bounded by `interval − 1` right after a
    /// checkpoint boundary).
    pub fn log_len(&self) -> usize {
        self.log.len()
    }
}

fn encode_log(log: &[u64]) -> Vec<u8> {
    log.iter().flat_map(|v| v.to_le_bytes()).collect()
}

fn decode_log(bytes: &[u8]) -> Vec<u64> {
    bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("chunk of 8")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default, Debug, PartialEq)]
    struct Counter(u64);
    impl Replayable for Counter {
        fn apply(&mut self, op: u64) {
            self.0 = self.0.wrapping_mul(31).wrapping_add(op);
        }
        fn snapshot(&self) -> Vec<u8> {
            self.0.to_le_bytes().to_vec()
        }
        fn restore(&mut self, b: &[u8]) {
            self.0 = u64::from_le_bytes(b.try_into().expect("8 bytes"));
        }
    }

    fn reference(ops: &[u64]) -> u64 {
        let mut c = Counter::default();
        for op in ops {
            c.apply(*op);
        }
        c.0
    }

    #[test]
    fn recovery_loses_nothing_at_any_point() {
        for crash_after in 0..=12u64 {
            let ops: Vec<u64> = (1..=12).collect();
            let mut svc = CheckpointService::new(Counter::default(), 4);
            for (i, op) in ops.iter().enumerate() {
                svc.execute(*op);
                if i as u64 + 1 == crash_after {
                    svc.crash_and_recover();
                }
            }
            assert_eq!(svc.state().0, reference(&ops), "crash after {crash_after}");
        }
    }

    #[test]
    fn replay_is_bounded_by_interval() {
        let mut svc = CheckpointService::new(Counter::default(), 4);
        for op in 1..=7 {
            svc.execute(op);
        }
        // 7 ops, interval 4: one checkpoint at op 4, log holds 3.
        assert_eq!(svc.log_len(), 3);
        svc.crash_and_recover();
        assert_eq!(svc.replayed(), 3);
    }

    #[test]
    fn checkpoint_counts() {
        let mut svc = CheckpointService::new(Counter::default(), 2);
        assert_eq!(svc.checkpoints(), 1);
        svc.execute(1);
        svc.execute(2); // triggers checkpoint
        svc.execute(3);
        assert_eq!(svc.checkpoints(), 2);
        svc.checkpoint();
        assert_eq!(svc.checkpoints(), 3);
        assert_eq!(svc.log_len(), 0);
    }

    #[test]
    fn repeated_crashes_are_survivable() {
        let mut svc = CheckpointService::new(Counter::default(), 3);
        let ops: Vec<u64> = (1..=9).collect();
        for op in &ops {
            svc.execute(*op);
            svc.crash_and_recover();
            svc.crash_and_recover(); // double failure
        }
        assert_eq!(svc.state().0, reference(&ops));
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn zero_interval_rejected() {
        let _ = CheckpointService::new(Counter::default(), 0);
    }

    #[test]
    fn log_codec_roundtrip() {
        let log = vec![0, 1, u64::MAX, 42];
        assert_eq!(decode_log(&encode_log(&log)), log);
        assert!(decode_log(&[]).is_empty());
    }
}
