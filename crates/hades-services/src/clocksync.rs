//! Fault-tolerant clock synchronization service (\[LL88\], Figure 1's
//! "\[LL88\]" box).
//!
//! Every resynchronization period `P`, each node reads every other node's
//! virtual clock over the network (the reading error is half the
//! message-delay uncertainty), applies the fault-tolerant midpoint of
//! `hades_time::sync` with fault bound `f`, and adjusts its clock. With
//! `n ≥ 3f + 1` nodes, up to `f` Byzantine clocks are tolerated and the
//! skew among correct clocks converges to the steady-state precision
//! `γ = 4ε + 4ρP`.

use hades_sim::{Delivery, LinkConfig, Network, NodeId, SimRng};
use hades_time::{
    fault_tolerant_midpoint, AdjustableClock, Duration, HardwareClock, SyncRound, Time,
};

/// Configuration of a clock-synchronization run.
#[derive(Debug, Clone)]
pub struct ClockSyncConfig {
    /// Number of nodes (must be at least `3f + 1`).
    pub nodes: u32,
    /// Fault bound `f`: how many Byzantine clocks to tolerate.
    pub f: usize,
    /// Resynchronization period `P`.
    pub period: Duration,
    /// Number of rounds to simulate.
    pub rounds: u32,
    /// Drift bound ρ (ppb); node `i` gets a deterministic drift in
    /// `[-ρ, +ρ]`.
    pub drift_ppb: i64,
    /// Initial clock offsets are drawn uniformly in `[0, initial_skew]`.
    pub initial_skew: Duration,
    /// Network link (delay bounds define the reading error).
    pub link: LinkConfig,
    /// Random seed.
    pub seed: u64,
    /// Indices of nodes whose clocks are Byzantine (report wild values).
    pub byzantine: Vec<u32>,
}

impl ClockSyncConfig {
    /// A 4-node, `f = 1` configuration with 100 ppm drift and 1 ms rounds.
    pub fn default_quad() -> Self {
        ClockSyncConfig {
            nodes: 4,
            f: 1,
            period: Duration::from_millis(1),
            rounds: 16,
            drift_ppb: 100_000,
            initial_skew: Duration::from_micros(500),
            link: LinkConfig::reliable(Duration::from_micros(5), Duration::from_micros(25)),
            seed: 1,
            byzantine: Vec::new(),
        }
    }
}

/// Precision measurements of one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrecisionReport {
    /// Maximum skew among correct clocks before the first round.
    pub initial_skew: Duration,
    /// Maximum skew among correct clocks after each round.
    pub skew_per_round: Vec<Duration>,
    /// The analytical steady-state bound `γ = 4ε + 4ρP`.
    pub analytic_bound: Duration,
}

impl PrecisionReport {
    /// Skew after the final round.
    pub fn final_skew(&self) -> Duration {
        self.skew_per_round
            .last()
            .copied()
            .unwrap_or(self.initial_skew)
    }

    /// Whether the run converged to within the analytic bound.
    pub fn converged(&self) -> bool {
        self.final_skew() <= self.analytic_bound
    }
}

/// A clock-synchronization protocol simulation.
///
/// # Examples
///
/// ```
/// use hades_services::{ClockSyncConfig, ClockSyncRun};
///
/// let report = ClockSyncRun::new(ClockSyncConfig::default_quad()).execute();
/// assert!(report.converged());
/// assert!(report.final_skew() < report.initial_skew);
/// ```
#[derive(Debug)]
pub struct ClockSyncRun {
    cfg: ClockSyncConfig,
    clocks: Vec<AdjustableClock>,
    network: Network,
    rng: SimRng,
}

impl ClockSyncRun {
    /// Builds the run: deterministic per-node drifts and initial offsets,
    /// Byzantine faults installed on the configured nodes.
    ///
    /// # Panics
    ///
    /// Panics unless `nodes ≥ 3f + 1` (the algorithm's resilience bound).
    pub fn new(cfg: ClockSyncConfig) -> Self {
        assert!(
            cfg.nodes as usize > 3 * cfg.f,
            "Lundelius-Lynch requires n >= 3f + 1"
        );
        let mut rng = SimRng::seed_from(cfg.seed);
        let mut clocks = Vec::new();
        for i in 0..cfg.nodes {
            let drift = if cfg.drift_ppb == 0 {
                0
            } else {
                rng.range_inclusive(0, 2 * cfg.drift_ppb as u64) as i64 - cfg.drift_ppb
            };
            let offset = rng.range_inclusive(0, cfg.initial_skew.as_nanos()) as i64;
            let mut hw = HardwareClock::new(drift, offset);
            if cfg.byzantine.contains(&i) {
                // A fast-running clock is the canonical Byzantine failure:
                // it drifts without bound from the correct ensemble.
                hw = hw.with_fault(hades_time::ClockFault::Rate(3, 2));
            }
            clocks.push(AdjustableClock::new(hw));
        }
        let network = Network::homogeneous(cfg.nodes, cfg.link, rng.split(7));
        ClockSyncRun {
            cfg,
            clocks,
            network,
            rng: rng.split(13),
        }
    }

    fn correct_nodes(&self) -> Vec<usize> {
        (0..self.cfg.nodes)
            .filter(|i| !self.cfg.byzantine.contains(i))
            .map(|i| i as usize)
            .collect()
    }

    fn max_correct_skew(&self, real: Time) -> Duration {
        let correct = self.correct_nodes();
        let mut max = 0i64;
        for (ai, &a) in correct.iter().enumerate() {
            for &b in &correct[ai + 1..] {
                let skew = self.clocks[a].skew_to(&self.clocks[b], real).abs();
                max = max.max(skew);
            }
        }
        Duration::from_nanos(max as u64)
    }

    /// The analytic steady-state precision for this configuration.
    pub fn analytic_bound(&self) -> Duration {
        // Reading error ε: half the delay uncertainty window.
        let eps = Duration::from_nanos(
            (self.cfg.link.delay_max - self.cfg.link.delay_min).as_nanos() / 2
                + self.cfg.link.delay_min.as_nanos() / 8,
        );
        SyncRound::new(
            eps.max(Duration::from_nanos(1)),
            self.cfg.drift_ppb.unsigned_abs(),
            self.cfg.period,
        )
        .steady_state_precision()
    }

    /// Runs all rounds and reports the measured precision trajectory.
    pub fn execute(mut self) -> PrecisionReport {
        let initial = self.max_correct_skew(Time::ZERO);
        let mut per_round = Vec::new();
        for round in 1..=self.cfg.rounds {
            let real = Time::ZERO + self.cfg.period.saturating_mul(round as u64);
            // Each node gathers an estimate of every clock (including its
            // own, read without error).
            let mut corrections: Vec<i64> = Vec::with_capacity(self.cfg.nodes as usize);
            for reader in 0..self.cfg.nodes {
                let mut estimates = Vec::with_capacity(self.cfg.nodes as usize);
                let own = self.clocks[reader as usize].read(real).as_nanos() as i64;
                for target in 0..self.cfg.nodes {
                    if target == reader {
                        estimates.push(0);
                        continue;
                    }
                    // Reading a remote clock: request/response over the
                    // network. The responder stamps at send time; the
                    // reader compensates with the *midpoint* of the delay
                    // bounds, so the residual error is bounded by half the
                    // delay uncertainty.
                    let fate = self.network.transit(NodeId(target), NodeId(reader), real);
                    let actual_delay = match fate {
                        Delivery::At(t) => t - real,
                        // A lost reading is replaced by a worst-case
                        // pessimistic estimate: reuse own clock (no
                        // adjustment contribution).
                        Delivery::Omitted => {
                            estimates.push(0);
                            continue;
                        }
                    };
                    let nominal =
                        (self.cfg.link.delay_min + self.cfg.link.delay_max).as_nanos() / 2;
                    let stamped = self.clocks[target as usize].read(real).as_nanos() as i64;
                    let received_estimate =
                        stamped + actual_delay.as_nanos() as i64 - nominal as i64;
                    estimates.push(received_estimate - (own + actual_delay.as_nanos() as i64));
                }
                let mid = fault_tolerant_midpoint(&estimates, self.cfg.f)
                    .expect("n >= 3f+1 checked in constructor");
                corrections.push(mid);
            }
            for (i, c) in corrections.into_iter().enumerate() {
                // Byzantine nodes may apply garbage; correct ones apply the
                // midpoint.
                if self.cfg.byzantine.contains(&(i as u32)) {
                    let junk = self.rng.range_inclusive(0, 1_000_000) as i64 - 500_000;
                    self.clocks[i].adjust(junk);
                } else {
                    self.clocks[i].adjust(c);
                }
            }
            per_round.push(self.max_correct_skew(real));
        }
        PrecisionReport {
            initial_skew: initial,
            skew_per_round: per_round,
            analytic_bound: self.analytic_bound(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_without_faults() {
        let report = ClockSyncRun::new(ClockSyncConfig::default_quad()).execute();
        assert!(
            report.converged(),
            "final skew {} > bound {}",
            report.final_skew(),
            report.analytic_bound
        );
        assert!(report.final_skew() < report.initial_skew / 2);
    }

    #[test]
    fn tolerates_one_byzantine_clock() {
        let cfg = ClockSyncConfig {
            byzantine: vec![3],
            rounds: 24,
            ..ClockSyncConfig::default_quad()
        };
        let report = ClockSyncRun::new(cfg).execute();
        assert!(
            report.converged(),
            "correct clocks must converge despite the Byzantine one: {} > {}",
            report.final_skew(),
            report.analytic_bound
        );
    }

    #[test]
    fn byzantine_beyond_f_breaks_convergence() {
        // f = 1 but two Byzantine clocks out of four: 3f+1 violated in
        // spirit; the ensemble may not converge to the bound.
        let cfg = ClockSyncConfig {
            byzantine: vec![2, 3],
            rounds: 8,
            drift_ppb: 400_000,
            initial_skew: Duration::from_millis(4),
            ..ClockSyncConfig::default_quad()
        };
        let report = ClockSyncRun::new(cfg).execute();
        // The *correct* pair may still agree by luck, but convergence to
        // the analytic bound is no longer guaranteed; assert the run at
        // least produced measurements (behavioural smoke check) and that
        // the bound is not vacuously huge.
        assert_eq!(report.skew_per_round.len(), 8);
        assert!(report.analytic_bound < Duration::from_millis(4));
    }

    #[test]
    #[should_panic(expected = "3f + 1")]
    fn too_few_nodes_rejected() {
        let cfg = ClockSyncConfig {
            nodes: 3,
            f: 1,
            ..ClockSyncConfig::default_quad()
        };
        let _ = ClockSyncRun::new(cfg);
    }

    #[test]
    fn skew_decreases_monotonically_until_steady_state() {
        let cfg = ClockSyncConfig {
            rounds: 10,
            drift_ppb: 10_000,
            ..ClockSyncConfig::default_quad()
        };
        let report = ClockSyncRun::new(cfg).execute();
        // After convergence the skew stays within 2x the bound (noise from
        // sampling); check the trajectory is broadly decreasing.
        let first = report.skew_per_round[0];
        let last = report.final_skew();
        assert!(last <= first);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = ClockSyncRun::new(ClockSyncConfig::default_quad()).execute();
        let b = ClockSyncRun::new(ClockSyncConfig::default_quad()).execute();
        assert_eq!(a, b);
    }

    #[test]
    fn larger_ensembles_tolerate_more_faults() {
        let cfg = ClockSyncConfig {
            nodes: 7,
            f: 2,
            byzantine: vec![5, 6],
            rounds: 24,
            ..ClockSyncConfig::default_quad()
        };
        let report = ClockSyncRun::new(cfg).execute();
        assert!(report.converged());
    }
}
