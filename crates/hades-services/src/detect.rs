//! Heartbeat-based crash detection with bounded detection latency.
//!
//! HADES guarantees availability through *fault detection* plus
//! reconfiguration (Sections 1–2). On a synchronous substrate (bounded
//! message delay δmax, synchronized clocks with precision γ), a heartbeat
//! protocol gives a **perfect** failure detector: a node that misses
//! heartbeats for `T₀ = H + δmax + γ` is crashed, never merely slow — no
//! false suspicion of correct nodes, and detection within `T₀` of the
//! crash.

use hades_sim::{Delivery, Network, NodeId};
use hades_time::{Duration, Time};
use std::collections::BTreeMap;

/// Configuration of the heartbeat detector.
#[derive(Debug, Clone, Copy)]
pub struct DetectorConfig {
    /// Heartbeat emission period `H`.
    pub heartbeat_period: Duration,
    /// Clock precision γ added to the timeout.
    pub clock_precision: Duration,
    /// How long to observe.
    pub horizon: Duration,
}

impl DetectorConfig {
    /// The suspicion timeout `T₀ = H + δmax + γ` for a given network.
    pub fn timeout(&self, net: &Network) -> Duration {
        self.heartbeat_period + net.max_delay() + self.clock_precision
    }

    /// The worst-case detection latency: a crash right after a heartbeat
    /// is detected at most `H + T₀` later.
    pub fn detection_bound(&self, net: &Network) -> Duration {
        self.heartbeat_period + self.timeout(net)
    }
}

/// What the observer concluded about each monitored node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetectorOutcome {
    /// Suspicion time per node (only for nodes that were suspected).
    pub suspected_at: BTreeMap<u32, Time>,
    /// Nodes suspected although they never crashed (false positives —
    /// must be empty on a synchronous network within its bounds).
    pub false_suspicions: Vec<u32>,
    /// Per-crashed-node detection latency (suspicion − crash).
    pub detection_latency: BTreeMap<u32, Duration>,
    /// The analytic worst-case detection bound.
    pub bound: Duration,
}

impl DetectorOutcome {
    /// Whether the detector behaved perfectly: no false suspicions and
    /// every crash detected within the bound.
    pub fn is_perfect(&self) -> bool {
        self.false_suspicions.is_empty()
            && self.detection_latency.values().all(|l| *l <= self.bound)
    }
}

/// The heartbeat detector simulation: node 0 observes all others.
///
/// # Examples
///
/// ```
/// use hades_services::{DetectorConfig, HeartbeatDetector};
/// use hades_sim::{FaultPlan, LinkConfig, Network, NodeId, SimRng};
/// use hades_time::{Duration, Time};
///
/// let plan = FaultPlan::new().crash_at(NodeId(2), Time::ZERO + Duration::from_millis(5));
/// let net = Network::homogeneous(
///     3,
///     LinkConfig::reliable(Duration::from_micros(10), Duration::from_micros(50)),
///     SimRng::seed_from(1),
/// ).with_fault_plan(plan);
/// let cfg = DetectorConfig {
///     heartbeat_period: Duration::from_millis(1),
///     clock_precision: Duration::from_micros(10),
///     horizon: Duration::from_millis(20),
/// };
/// let out = HeartbeatDetector::new(cfg).observe(net);
/// assert!(out.is_perfect());
/// assert!(out.suspected_at.contains_key(&2));
/// ```
#[derive(Debug)]
pub struct HeartbeatDetector {
    cfg: DetectorConfig,
}

impl HeartbeatDetector {
    /// Creates the detector.
    pub fn new(cfg: DetectorConfig) -> Self {
        HeartbeatDetector { cfg }
    }

    /// Runs the observation: every node emits heartbeats to node 0 at its
    /// period; node 0 suspects a node whose silence exceeds the timeout.
    pub fn observe(self, net: Network) -> DetectorOutcome {
        self.observe_from(net, NodeId(0))
    }

    /// Runs the observation from an explicit observer node. The observer
    /// must stay correct for its suspicions to be meaningful; membership
    /// therefore picks a non-crashing member.
    pub fn observe_from(self, mut net: Network, observer: NodeId) -> DetectorOutcome {
        let timeout = self.cfg.timeout(&net);
        let bound = self.cfg.detection_bound(&net);
        let horizon = Time::ZERO + self.cfg.horizon;
        let mut last_heard: BTreeMap<u32, Time> = BTreeMap::new();
        // Generate heartbeat arrivals per sender.
        let mut arrivals: BTreeMap<u32, Vec<Time>> = BTreeMap::new();
        let node_count = net.node_count();
        for sender in (0..node_count).filter(|s| NodeId(*s) != observer) {
            let mut t = Time::ZERO;
            let mut arr = Vec::new();
            while t <= horizon {
                if let Delivery::At(a) = net.transit(NodeId(sender), observer, t) {
                    arr.push(a);
                }
                t += self.cfg.heartbeat_period;
            }
            arr.sort();
            arrivals.insert(sender, arr);
            last_heard.insert(sender, Time::ZERO);
        }
        // Scan the timeline: suspicion fires when now − last_heard > T₀.
        let mut suspected_at: BTreeMap<u32, Time> = BTreeMap::new();
        for sender in (0..node_count).filter(|s| NodeId(*s) != observer) {
            let mut last = Time::ZERO;
            for a in &arrivals[&sender] {
                if *a - last > timeout {
                    // A gap long enough to suspect before this arrival.
                    suspected_at.insert(sender, last + timeout);
                    break;
                }
                last = *a;
            }
            if !suspected_at.contains_key(&sender) && horizon > last && horizon - last > timeout {
                suspected_at.insert(sender, last + timeout);
            }
        }
        let mut false_suspicions = Vec::new();
        let mut detection_latency = BTreeMap::new();
        for (node, at) in &suspected_at {
            match net.fault_plan().crash_time(NodeId(*node)) {
                Some(crash) => {
                    detection_latency.insert(*node, *at - crash.min(*at));
                }
                None => false_suspicions.push(*node),
            }
        }
        DetectorOutcome {
            suspected_at,
            false_suspicions,
            detection_latency,
            bound,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hades_sim::{FaultPlan, LinkConfig, SimRng};

    fn us(n: u64) -> Duration {
        Duration::from_micros(n)
    }

    fn cfg() -> DetectorConfig {
        DetectorConfig {
            heartbeat_period: Duration::from_millis(1),
            clock_precision: us(10),
            horizon: Duration::from_millis(30),
        }
    }

    fn net(plan: FaultPlan, seed: u64) -> Network {
        Network::homogeneous(
            4,
            LinkConfig::reliable(us(10), us(50)),
            SimRng::seed_from(seed),
        )
        .with_fault_plan(plan)
    }

    #[test]
    fn no_false_suspicions_on_healthy_network() {
        let out = HeartbeatDetector::new(cfg()).observe(net(FaultPlan::new(), 1));
        assert!(out.suspected_at.is_empty());
        assert!(out.is_perfect());
    }

    #[test]
    fn crash_detected_within_bound() {
        let crash = Time::ZERO + Duration::from_millis(7);
        let plan = FaultPlan::new().crash_at(NodeId(2), crash);
        let out = HeartbeatDetector::new(cfg()).observe(net(plan, 2));
        assert_eq!(out.suspected_at.len(), 1);
        let latency = out.detection_latency[&2];
        assert!(
            latency <= out.bound,
            "latency {latency} > bound {}",
            out.bound
        );
        assert!(out.is_perfect());
    }

    #[test]
    fn multiple_crashes_all_detected() {
        let plan = FaultPlan::new()
            .crash_at(NodeId(1), Time::ZERO + Duration::from_millis(3))
            .crash_at(NodeId(3), Time::ZERO + Duration::from_millis(11));
        let out = HeartbeatDetector::new(cfg()).observe(net(plan, 3));
        assert!(out.suspected_at.contains_key(&1));
        assert!(out.suspected_at.contains_key(&3));
        assert!(!out.suspected_at.contains_key(&2));
        assert!(out.is_perfect());
    }

    #[test]
    fn crash_at_start_detected_quickly() {
        let plan = FaultPlan::new().crash_at(NodeId(1), Time::ZERO);
        let out = HeartbeatDetector::new(cfg()).observe(net(plan, 4));
        let at = out.suspected_at[&1];
        // Never heard from: suspected at exactly the timeout.
        let n = net(FaultPlan::new(), 0);
        assert_eq!(at, Time::ZERO + cfg().timeout(&n));
    }

    #[test]
    fn sporadic_omissions_within_timeout_cause_no_false_alarm() {
        // 20% heartbeat loss: one missing beat leaves a gap of 2H < T₀
        // when T₀ = H + δmax + γ... only if 2H ≤ T₀ fails. Here H = 1 ms,
        // T₀ ≈ 1.06 ms, so a single loss *would* trigger suspicion — use a
        // doubled timeout via clock_precision to model loss-tolerant
        // configuration.
        let tolerant = DetectorConfig {
            clock_precision: Duration::from_millis(2),
            ..cfg()
        };
        let lossy = Network::homogeneous(
            4,
            LinkConfig::reliable(us(10), us(50)).with_omissions(200),
            SimRng::seed_from(5),
        );
        let out = HeartbeatDetector::new(tolerant).observe(lossy);
        assert!(
            out.false_suspicions.is_empty(),
            "false suspicions: {:?}",
            out.false_suspicions
        );
    }

    #[test]
    fn bound_formula() {
        let n = net(FaultPlan::new(), 0);
        let c = cfg();
        assert_eq!(c.timeout(&n), Duration::from_millis(1) + us(50) + us(10));
        assert_eq!(c.detection_bound(&n), Duration::from_millis(2) + us(60));
    }
}
