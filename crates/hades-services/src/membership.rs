//! View-based group membership.
//!
//! Replication and reconfiguration need the group to agree on *who is in*:
//! a **membership** service producing a totally ordered sequence of views.
//! This implementation composes two HADES services exactly as a
//! safety-critical deployment would: the [`crate::detect`] heartbeat
//! detector observes crashes (perfect on the synchronous substrate), and
//! each exclusion is agreed by [`crate::consensus`] flooding consensus
//! before a new view is installed — so all surviving members step through
//! identical views at bounded times after each failure.
//!
//! Membership circulates as a [`MemberSet`]: agreement runs once per
//! 32-bit wire word of the set, which is sound because the exclusion
//! merge is bitwise — so clusters are no longer bounded by what fits in
//! one `u64` consensus value.

use crate::consensus::{ConsensusConfig, FloodConsensus};
use crate::detect::{DetectorConfig, HeartbeatDetector};
use crate::memberset::MemberSet;
use hades_sim::Network;
use hades_time::Time;

/// One installed view: the agreed membership after some failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct View {
    /// Monotone view number (view 0 is the initial full membership).
    pub number: u32,
    /// Members of the view, ascending.
    pub members: Vec<u32>,
    /// When the view was installed (agreement reached).
    pub installed_at: Time,
}

impl View {
    /// Membership as a [`MemberSet`] — the encoding circulated through
    /// consensus and the agent wire protocols.
    pub fn member_set(&self) -> MemberSet {
        MemberSet::from_members(&self.members)
    }

    /// Builds a view from an agreed membership set.
    pub fn from_set(number: u32, set: &MemberSet, installed_at: Time) -> View {
        View {
            number,
            members: set.to_vec(),
            installed_at,
        }
    }
}

/// Result of a membership run: the sequence of views every surviving
/// member installed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MembershipOutcome {
    /// Installed views, in order.
    pub views: Vec<View>,
    /// Messages consumed by the agreement rounds.
    pub messages: u64,
}

impl MembershipOutcome {
    /// The final agreed membership.
    pub fn final_members(&self) -> &[u32] {
        &self.views.last().expect("view 0 always exists").members
    }
}

/// The membership service simulation: detector-triggered, consensus-agreed
/// view changes.
///
/// # Examples
///
/// ```
/// use hades_services::membership::MembershipSim;
/// use hades_services::DetectorConfig;
/// use hades_sim::{FaultPlan, LinkConfig, Network, NodeId, SimRng};
/// use hades_time::{Duration, Time};
///
/// let plan = FaultPlan::new().crash_at(NodeId(2), Time::ZERO + Duration::from_millis(5));
/// let net = Network::homogeneous(
///     4,
///     LinkConfig::reliable(Duration::from_micros(10), Duration::from_micros(40)),
///     SimRng::seed_from(1),
/// ).with_fault_plan(plan);
/// let out = MembershipSim::new(DetectorConfig {
///     heartbeat_period: Duration::from_millis(1),
///     clock_precision: Duration::from_micros(10),
///     horizon: Duration::from_millis(20),
/// }).execute(net);
/// assert_eq!(out.final_members(), &[0, 1, 3]);
/// ```
#[derive(Debug)]
pub struct MembershipSim {
    detector: DetectorConfig,
}

impl MembershipSim {
    /// Creates the service with the given detector configuration.
    pub fn new(detector: DetectorConfig) -> Self {
        MembershipSim { detector }
    }

    /// Runs detection + agreement over `net` and returns the view history.
    pub fn execute(self, net: Network) -> MembershipOutcome {
        let n = net.node_count();
        let words = MemberSet::wire_words(n);
        let mut views = vec![View::from_set(0, &MemberSet::full(n), Time::ZERO)];
        let mut messages = 0u64;
        // Observe crashes (the observer stands for any correct member; the
        // detector is perfect, so all members reach the same suspicions
        // within the bound).
        // Observe from a member that never crashes: a crashed observer
        // would wrongly suspect everyone it can no longer hear.
        let observer = (0..n)
            .map(hades_sim::NodeId)
            .find(|m| net.fault_plan().crash_time(*m).is_none())
            .unwrap_or(hades_sim::NodeId(0));
        let detector_net = net.clone();
        let outcome = HeartbeatDetector::new(self.detector).observe_from(detector_net, observer);
        let mut suspicions: Vec<(Time, u32)> = outcome
            .suspected_at
            .iter()
            .map(|(node, at)| (*at, *node))
            .collect();
        suspicions.sort();
        for (at, crashed) in suspicions {
            let current = views.last().expect("nonempty").clone();
            if !current.members.contains(&crashed) {
                continue;
            }
            let mut proposed = current.member_set();
            proposed.remove(crashed);
            // Every member proposes the new set; crashed members do not
            // participate (the consensus run excludes them via the fault
            // plan). Agreement runs once per wire word — the exclusion
            // merge is bitwise, so word-wise decisions compose into the
            // same agreed set.
            let mut agreed = MemberSet::new();
            let mut decided_at = at;
            for w in 0..words {
                let word = proposed.wire_word(w) as u64;
                let proposals: Vec<u64> = (0..n).map(|_| word).collect();
                let agree_net = net.clone();
                let outcome = FloodConsensus::new(ConsensusConfig {
                    f: 1,
                    proposals,
                    start: at,
                })
                .execute(agree_net);
                messages += outcome.messages;
                debug_assert!(outcome.agreement_holds());
                decided_at = outcome.decided_at;
                agreed.set_wire_word(w, outcome.decided_value().unwrap_or(word) as u32);
            }
            views.push(View::from_set(current.number + 1, &agreed, decided_at));
        }
        MembershipOutcome { views, messages }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hades_sim::{FaultPlan, LinkConfig, NodeId, SimRng};
    use hades_time::Duration;

    fn us(n: u64) -> Duration {
        Duration::from_micros(n)
    }

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    fn detector() -> DetectorConfig {
        DetectorConfig {
            heartbeat_period: ms(1),
            clock_precision: us(10),
            horizon: ms(30),
        }
    }

    fn net(plan: FaultPlan, seed: u64) -> Network {
        Network::homogeneous(
            4,
            LinkConfig::reliable(us(10), us(40)),
            SimRng::seed_from(seed),
        )
        .with_fault_plan(plan)
    }

    #[test]
    fn stable_group_keeps_view_zero() {
        let out = MembershipSim::new(detector()).execute(net(FaultPlan::new(), 1));
        assert_eq!(out.views.len(), 1);
        assert_eq!(out.final_members(), &[0, 1, 2, 3]);
        assert_eq!(out.views[0].number, 0);
        assert_eq!(out.messages, 0);
    }

    #[test]
    fn single_crash_installs_one_new_view() {
        let plan = FaultPlan::new().crash_at(NodeId(2), Time::ZERO + ms(5));
        let out = MembershipSim::new(detector()).execute(net(plan, 2));
        assert_eq!(out.views.len(), 2);
        assert_eq!(out.final_members(), &[0, 1, 3]);
        assert_eq!(out.views[1].number, 1);
        assert!(out.views[1].installed_at > Time::ZERO + ms(5));
        assert!(out.messages > 0);
    }

    #[test]
    fn two_crashes_install_two_views_in_order() {
        let plan = FaultPlan::new()
            .crash_at(NodeId(1), Time::ZERO + ms(3))
            .crash_at(NodeId(3), Time::ZERO + ms(12));
        let out = MembershipSim::new(detector()).execute(net(plan, 3));
        assert_eq!(out.views.len(), 3);
        assert_eq!(out.views[1].members, vec![0, 2, 3]);
        assert_eq!(out.views[2].members, vec![0, 2]);
        assert!(out.views[1].installed_at < out.views[2].installed_at);
    }

    #[test]
    fn view_member_set_roundtrip() {
        let v = View {
            number: 1,
            members: vec![0, 2, 3, 70],
            installed_at: Time::ZERO,
        };
        let set = v.member_set();
        assert_eq!(set.to_vec(), vec![0, 2, 3, 70]);
        let back = View::from_set(1, &set, Time::ZERO);
        assert_eq!(back, v);
    }

    #[test]
    fn membership_agrees_beyond_64_nodes() {
        // 96 nodes take three wire words of agreement per view change —
        // the case the single-u64 consensus value could not carry.
        let plan = FaultPlan::new().crash_at(NodeId(77), Time::ZERO + ms(5));
        let net = Network::homogeneous(
            96,
            LinkConfig::reliable(us(10), us(40)),
            SimRng::seed_from(5),
        )
        .with_fault_plan(plan);
        let out = MembershipSim::new(detector()).execute(net);
        assert_eq!(out.views.len(), 2);
        let expected: Vec<u32> = (0..96).filter(|n| *n != 77).collect();
        assert_eq!(out.final_members(), expected.as_slice());
    }

    #[test]
    fn deterministic_given_seed() {
        let plan = || FaultPlan::new().crash_at(NodeId(2), Time::ZERO + ms(5));
        let a = MembershipSim::new(detector()).execute(net(plan(), 7));
        let b = MembershipSim::new(detector()).execute(net(plan(), 7));
        assert_eq!(a, b);
    }
}
