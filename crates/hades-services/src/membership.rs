//! View-based group membership.
//!
//! Replication and reconfiguration need the group to agree on *who is in*:
//! a **membership** service producing a totally ordered sequence of views.
//! This implementation composes two HADES services exactly as a
//! safety-critical deployment would: the [`crate::detect`] heartbeat
//! detector observes crashes (perfect on the synchronous substrate), and
//! each exclusion is agreed by [`crate::consensus`] flooding consensus
//! before a new view is installed — so all surviving members step through
//! identical views at bounded times after each failure.

use crate::consensus::{ConsensusConfig, FloodConsensus};
use crate::detect::{DetectorConfig, HeartbeatDetector};
use hades_sim::Network;
use hades_time::Time;

/// One installed view: the agreed membership after some failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct View {
    /// Monotone view number (view 0 is the initial full membership).
    pub number: u32,
    /// Members of the view, ascending.
    pub members: Vec<u32>,
    /// When the view was installed (agreement reached).
    pub installed_at: Time,
}

impl View {
    /// Membership as a bitmask (bit *i* = node *i* present); the encoding
    /// circulated through consensus.
    pub fn mask(&self) -> u64 {
        self.members.iter().fold(0, |m, n| m | (1 << n))
    }

    fn from_mask(number: u32, mask: u64, installed_at: Time, n: u32) -> View {
        View {
            number,
            members: (0..n).filter(|i| mask & (1 << i) != 0).collect(),
            installed_at,
        }
    }
}

/// Result of a membership run: the sequence of views every surviving
/// member installed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MembershipOutcome {
    /// Installed views, in order.
    pub views: Vec<View>,
    /// Messages consumed by the agreement rounds.
    pub messages: u64,
}

impl MembershipOutcome {
    /// The final agreed membership.
    pub fn final_members(&self) -> &[u32] {
        &self.views.last().expect("view 0 always exists").members
    }
}

/// The membership service simulation: detector-triggered, consensus-agreed
/// view changes.
///
/// # Examples
///
/// ```
/// use hades_services::membership::MembershipSim;
/// use hades_services::DetectorConfig;
/// use hades_sim::{FaultPlan, LinkConfig, Network, NodeId, SimRng};
/// use hades_time::{Duration, Time};
///
/// let plan = FaultPlan::new().crash_at(NodeId(2), Time::ZERO + Duration::from_millis(5));
/// let net = Network::homogeneous(
///     4,
///     LinkConfig::reliable(Duration::from_micros(10), Duration::from_micros(40)),
///     SimRng::seed_from(1),
/// ).with_fault_plan(plan);
/// let out = MembershipSim::new(DetectorConfig {
///     heartbeat_period: Duration::from_millis(1),
///     clock_precision: Duration::from_micros(10),
///     horizon: Duration::from_millis(20),
/// }).execute(net);
/// assert_eq!(out.final_members(), &[0, 1, 3]);
/// ```
#[derive(Debug)]
pub struct MembershipSim {
    detector: DetectorConfig,
}

impl MembershipSim {
    /// Creates the service with the given detector configuration.
    pub fn new(detector: DetectorConfig) -> Self {
        MembershipSim { detector }
    }

    /// Runs detection + agreement over `net` and returns the view history.
    pub fn execute(self, net: Network) -> MembershipOutcome {
        let n = net.node_count();
        let full_mask: u64 = (0..n).fold(0, |m, i| m | (1 << i));
        let mut views = vec![View::from_mask(0, full_mask, Time::ZERO, n)];
        let mut messages = 0u64;
        // Observe crashes (the observer stands for any correct member; the
        // detector is perfect, so all members reach the same suspicions
        // within the bound).
        // Observe from a member that never crashes: a crashed observer
        // would wrongly suspect everyone it can no longer hear.
        let observer = (0..n)
            .map(hades_sim::NodeId)
            .find(|m| net.fault_plan().crash_time(*m).is_none())
            .unwrap_or(hades_sim::NodeId(0));
        let detector_net = net.clone();
        let outcome = HeartbeatDetector::new(self.detector).observe_from(detector_net, observer);
        let mut suspicions: Vec<(Time, u32)> = outcome
            .suspected_at
            .iter()
            .map(|(node, at)| (*at, *node))
            .collect();
        suspicions.sort();
        for (at, crashed) in suspicions {
            let current = views.last().expect("nonempty").clone();
            if !current.members.contains(&crashed) {
                continue;
            }
            let proposed = current.mask() & !(1 << crashed);
            // Every member proposes the new mask; crashed members do not
            // participate (the consensus run excludes them via the fault
            // plan).
            let proposals: Vec<u64> = (0..n).map(|_| proposed).collect();
            let agree_net = net.clone();
            let agreed = FloodConsensus::new(ConsensusConfig {
                f: 1,
                proposals,
                start: at,
            })
            .execute(agree_net);
            messages += agreed.messages;
            debug_assert!(agreed.agreement_holds());
            let mask = agreed.decided_value().unwrap_or(proposed);
            views.push(View::from_mask(
                current.number + 1,
                mask,
                agreed.decided_at,
                n,
            ));
        }
        MembershipOutcome { views, messages }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hades_sim::{FaultPlan, LinkConfig, NodeId, SimRng};
    use hades_time::Duration;

    fn us(n: u64) -> Duration {
        Duration::from_micros(n)
    }

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    fn detector() -> DetectorConfig {
        DetectorConfig {
            heartbeat_period: ms(1),
            clock_precision: us(10),
            horizon: ms(30),
        }
    }

    fn net(plan: FaultPlan, seed: u64) -> Network {
        Network::homogeneous(
            4,
            LinkConfig::reliable(us(10), us(40)),
            SimRng::seed_from(seed),
        )
        .with_fault_plan(plan)
    }

    #[test]
    fn stable_group_keeps_view_zero() {
        let out = MembershipSim::new(detector()).execute(net(FaultPlan::new(), 1));
        assert_eq!(out.views.len(), 1);
        assert_eq!(out.final_members(), &[0, 1, 2, 3]);
        assert_eq!(out.views[0].number, 0);
        assert_eq!(out.messages, 0);
    }

    #[test]
    fn single_crash_installs_one_new_view() {
        let plan = FaultPlan::new().crash_at(NodeId(2), Time::ZERO + ms(5));
        let out = MembershipSim::new(detector()).execute(net(plan, 2));
        assert_eq!(out.views.len(), 2);
        assert_eq!(out.final_members(), &[0, 1, 3]);
        assert_eq!(out.views[1].number, 1);
        assert!(out.views[1].installed_at > Time::ZERO + ms(5));
        assert!(out.messages > 0);
    }

    #[test]
    fn two_crashes_install_two_views_in_order() {
        let plan = FaultPlan::new()
            .crash_at(NodeId(1), Time::ZERO + ms(3))
            .crash_at(NodeId(3), Time::ZERO + ms(12));
        let out = MembershipSim::new(detector()).execute(net(plan, 3));
        assert_eq!(out.views.len(), 3);
        assert_eq!(out.views[1].members, vec![0, 2, 3]);
        assert_eq!(out.views[2].members, vec![0, 2]);
        assert!(out.views[1].installed_at < out.views[2].installed_at);
    }

    #[test]
    fn view_mask_roundtrip() {
        let v = View {
            number: 1,
            members: vec![0, 2, 3],
            installed_at: Time::ZERO,
        };
        assert_eq!(v.mask(), 0b1101);
        let back = View::from_mask(1, 0b1101, Time::ZERO, 4);
        assert_eq!(back.members, vec![0, 2, 3]);
    }

    #[test]
    fn deterministic_given_seed() {
        let plan = || FaultPlan::new().crash_at(NodeId(2), Time::ZERO + ms(5));
        let a = MembershipSim::new(detector()).execute(net(plan(), 7));
        let b = MembershipSim::new(detector()).execute(net(plan(), 7));
        assert_eq!(a, b);
    }
}
