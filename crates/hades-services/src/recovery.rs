//! Crash-recovery sizing: the quantitative model of the rejoin protocol.
//!
//! A node that restarts after a crash window comes back *cold*: its
//! volatile state is gone and its stale membership knowledge is useless.
//! The rejoin protocol run by [`crate::actors::NodeAgent`] brings it back:
//!
//! 1. **announce** — the restarting node broadcasts a join request;
//! 2. **state transfer** — the current primary ships its latest committed
//!    checkpoint plus the log tail accumulated since, as a paced sequence
//!    of MTU-sized chunks over the shared network (so the transfer's
//!    bandwidth cost is visible to everything else on the wire);
//! 3. **replay** — the joiner installs the snapshot and replays the log
//!    tail locally (cf. [`crate::checkpoint::CheckpointService`]: at most
//!    one checkpoint interval of operations is re-executed);
//! 4. **re-admission** — a view change floods and the joiner is back in
//!    the agreed membership.
//!
//! [`RecoveryConfig`] sizes steps 2–3 — checkpoint bytes, log growth rate,
//! MTU, pacing, replay cost — and exposes the analytic bounds the
//! experiments and property tests check observed rejoin latencies against.
//! [`RejoinRecord`] is the per-rejoin outcome an agent appends to its log.

use hades_time::{Duration, Time};

/// Sizing of checkpointed state transfer during a rejoin.
///
/// # Examples
///
/// ```
/// use hades_services::recovery::RecoveryConfig;
/// use hades_time::{Duration, Time};
///
/// let cfg = RecoveryConfig::default();
/// let tail = cfg.log_tail_at(Time::ZERO + Duration::from_millis(25));
/// assert!(tail <= cfg.max_log_tail());
/// assert!(cfg.chunks(tail) >= 1, "the snapshot always ships");
/// assert!(cfg.bytes(tail) >= cfg.checkpoint_bytes);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryConfig {
    /// Size of one committed state snapshot, in bytes.
    pub checkpoint_bytes: u64,
    /// Size of one logged operation, in bytes.
    pub log_entry_bytes: u64,
    /// Bytes carried per state-transfer message (chunk).
    pub mtu: u64,
    /// Pacing between consecutive chunk transmissions (the transfer is
    /// deliberately spread out instead of flooding the network).
    pub chunk_interval: Duration,
    /// Local cost of replaying one logged operation on the joiner.
    pub replay_per_entry: Duration,
    /// Mean period of state-machine operations (log growth rate).
    pub op_period: Duration,
    /// The primary's checkpoint cadence: the log tail never exceeds one
    /// such period of operations.
    pub checkpoint_period: Duration,
    /// Whether servers offer *delta* transfers: a joiner whose durable
    /// checkpoint cursor already covers the server's current checkpoint
    /// receives only the log tail, skipping the snapshot bytes entirely.
    pub delta_transfers: bool,
}

impl Default for RecoveryConfig {
    /// LAN-scale defaults: a 64 KiB snapshot, 64-byte operations arriving
    /// every 100 µs, 1400-byte chunks every 20 µs, 20 ms checkpoints,
    /// 1 µs replay per operation.
    fn default() -> Self {
        RecoveryConfig {
            checkpoint_bytes: 64 * 1024,
            log_entry_bytes: 64,
            mtu: 1400,
            chunk_interval: Duration::from_micros(20),
            replay_per_entry: Duration::from_micros(1),
            op_period: Duration::from_micros(100),
            checkpoint_period: Duration::from_millis(20),
            delta_transfers: false,
        }
    }
}

impl RecoveryConfig {
    /// Operations logged since the last checkpoint boundary at `now`
    /// (the primary checkpoints on a fixed cadence from time zero).
    pub fn log_tail_at(&self, now: Time) -> u64 {
        let cp = self.checkpoint_period.as_nanos().max(1);
        let op = self.op_period.as_nanos().max(1);
        ((now - Time::ZERO).as_nanos() % cp) / op
    }

    /// Worst-case log-tail length: one full checkpoint period of
    /// operations.
    pub fn max_log_tail(&self) -> u64 {
        self.checkpoint_period.as_nanos().max(1) / self.op_period.as_nanos().max(1)
    }

    /// Total bytes shipped for a transfer with `log_tail` logged
    /// operations: the snapshot plus the log tail.
    pub fn bytes(&self, log_tail: u64) -> u64 {
        self.checkpoint_bytes + log_tail * self.log_entry_bytes
    }

    /// Number of MTU-sized network messages the transfer takes (at least
    /// one: the snapshot always ships).
    pub fn chunks(&self, log_tail: u64) -> u64 {
        self.bytes(log_tail).div_ceil(self.mtu.max(1)).max(1)
    }

    /// Index of the checkpoint interval containing `now`: a node whose
    /// durable checkpoint cursor carries this generation holds the same
    /// snapshot a server checkpointing at `now` would ship.
    pub fn checkpoint_gen_at(&self, now: Time) -> u64 {
        (now - Time::ZERO).as_nanos() / self.checkpoint_period.as_nanos().max(1)
    }

    /// Bytes of a *delta* transfer: the log tail alone, no snapshot.
    pub fn delta_bytes(&self, log_tail: u64) -> u64 {
        log_tail * self.log_entry_bytes
    }

    /// Chunks of a *delta* transfer (at least one, so the stream always
    /// carries the "you are current" signal even on an empty tail).
    pub fn delta_chunks(&self, log_tail: u64) -> u64 {
        self.delta_bytes(log_tail).div_ceil(self.mtu.max(1)).max(1)
    }

    /// Local replay time of `log_tail` operations on the joiner.
    pub fn replay_time(&self, log_tail: u64) -> Duration {
        self.replay_per_entry.saturating_mul(log_tail)
    }

    /// Worst-case duration of the transfer + replay phase: all chunks
    /// paced at [`RecoveryConfig::chunk_interval`], the last arriving
    /// within `max_delay`, followed by the full replay.
    pub fn transfer_bound(&self, max_delay: Duration) -> Duration {
        let tail = self.max_log_tail();
        self.chunk_interval
            .saturating_mul(self.chunks(tail).saturating_sub(1))
            .saturating_add(max_delay)
            .saturating_add(self.replay_time(tail))
    }
}

/// One completed crash→restart→rejoin cycle, as observed by the joiner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RejoinRecord {
    /// The rejoining node.
    pub node: u32,
    /// When the node came back up (and broadcast its join request).
    pub restarted_at: Time,
    /// When the first state-transfer chunk arrived.
    pub transfer_started_at: Time,
    /// When the last chunk arrived.
    pub transfer_completed_at: Time,
    /// When the local log replay finished.
    pub replay_completed_at: Time,
    /// When the view re-admitting the node was installed locally.
    pub readmitted_at: Time,
    /// Number of the re-admission view.
    pub view: u32,
    /// Views the cluster traversed while the node was away (re-admission
    /// view number minus the node's last pre-crash view number).
    pub views_traversed: u32,
    /// State-transfer messages received.
    pub chunks: u64,
    /// Chunks the joiner NACKed and subsequently received again (selective
    /// retransmissions on lossy links; zero on clean links).
    pub chunks_resent: u64,
    /// State-transfer payload bytes received (snapshot + log tail, or the
    /// tail alone on a delta transfer).
    pub bytes: u64,
    /// Logged operations replayed.
    pub log_entries: u64,
    /// Whether the transfer was a *delta*: the joiner's durable checkpoint
    /// cursor let the server skip the snapshot and ship the tail only.
    pub delta: bool,
}

impl RejoinRecord {
    /// End-to-end rejoin latency: restart to re-admission.
    pub fn latency(&self) -> Duration {
        self.readmitted_at - self.restarted_at
    }

    /// Announce phase: restart until the transfer starts flowing.
    pub fn announce_latency(&self) -> Duration {
        self.transfer_started_at - self.restarted_at
    }

    /// Transfer + replay phase.
    pub fn transfer_latency(&self) -> Duration {
        self.replay_completed_at - self.transfer_started_at
    }

    /// Re-admission phase: replay done until the view installs.
    pub fn readmit_latency(&self) -> Duration {
        self.readmitted_at - self.replay_completed_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(n: u64) -> Duration {
        Duration::from_micros(n)
    }

    #[test]
    fn log_tail_tracks_the_checkpoint_phase() {
        let cfg = RecoveryConfig {
            checkpoint_period: us(1_000),
            op_period: us(100),
            ..RecoveryConfig::default()
        };
        assert_eq!(cfg.log_tail_at(Time::ZERO), 0);
        assert_eq!(cfg.log_tail_at(Time::ZERO + us(250)), 2);
        assert_eq!(cfg.log_tail_at(Time::ZERO + us(999)), 9);
        assert_eq!(
            cfg.log_tail_at(Time::ZERO + us(1_000)),
            0,
            "fresh checkpoint"
        );
        assert_eq!(cfg.max_log_tail(), 10);
    }

    #[test]
    fn chunk_count_is_size_proportional() {
        let cfg = RecoveryConfig {
            checkpoint_bytes: 10_000,
            log_entry_bytes: 100,
            mtu: 1_000,
            ..RecoveryConfig::default()
        };
        assert_eq!(cfg.chunks(0), 10);
        assert_eq!(cfg.chunks(5), 11, "log tail adds chunks");
        assert_eq!(cfg.bytes(5), 10_500);
        let tiny = RecoveryConfig {
            checkpoint_bytes: 1,
            ..cfg
        };
        assert_eq!(tiny.chunks(0), 1, "the snapshot always ships");
    }

    #[test]
    fn transfer_bound_dominates_any_reachable_tail() {
        let cfg = RecoveryConfig::default();
        let dmax = us(50);
        for t in [0, 1, 7, 200] {
            let t = t.min(cfg.max_log_tail());
            let observed = cfg
                .chunk_interval
                .saturating_mul(cfg.chunks(t).saturating_sub(1))
                .saturating_add(dmax)
                .saturating_add(cfg.replay_time(t));
            assert!(observed <= cfg.transfer_bound(dmax));
        }
    }

    #[test]
    fn delta_sizing_drops_the_snapshot() {
        let cfg = RecoveryConfig {
            checkpoint_bytes: 10_000,
            log_entry_bytes: 100,
            mtu: 1_000,
            ..RecoveryConfig::default()
        };
        assert_eq!(cfg.delta_bytes(5), 500);
        assert!(cfg.delta_bytes(5) < cfg.bytes(5));
        assert_eq!(cfg.delta_chunks(5), 1);
        assert_eq!(cfg.delta_chunks(0), 1, "the current-state signal ships");
        assert!(cfg.delta_chunks(5) < cfg.chunks(5));
    }

    #[test]
    fn checkpoint_generation_tracks_the_cadence() {
        let cfg = RecoveryConfig {
            checkpoint_period: us(1_000),
            ..RecoveryConfig::default()
        };
        assert_eq!(cfg.checkpoint_gen_at(Time::ZERO), 0);
        assert_eq!(cfg.checkpoint_gen_at(Time::ZERO + us(999)), 0);
        assert_eq!(cfg.checkpoint_gen_at(Time::ZERO + us(1_000)), 1);
        assert_eq!(cfg.checkpoint_gen_at(Time::ZERO + us(4_500)), 4);
    }

    #[test]
    fn rejoin_record_decomposition_sums_to_latency() {
        let r = RejoinRecord {
            node: 3,
            restarted_at: Time::from_nanos(100),
            transfer_started_at: Time::from_nanos(150),
            transfer_completed_at: Time::from_nanos(300),
            replay_completed_at: Time::from_nanos(340),
            readmitted_at: Time::from_nanos(500),
            view: 2,
            views_traversed: 2,
            chunks: 4,
            chunks_resent: 0,
            bytes: 4_000,
            log_entries: 12,
            delta: false,
        };
        assert_eq!(
            r.announce_latency() + r.transfer_latency() + r.readmit_latency(),
            r.latency()
        );
        assert_eq!(r.latency(), Duration::from_nanos(400));
    }
}
