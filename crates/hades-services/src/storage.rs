//! Persistent storage service with atomic updates.
//!
//! Passive replication and mode switching both need *stable storage*: a
//! store whose updates are atomic with respect to crashes. [`StableStore`]
//! models the classic shadow-page technique: a write first lands in a
//! shadow slot, then a one-word *commit* flips the live version. A crash
//! anywhere before the commit leaves the previous value intact; a crash
//! after the commit leaves the new value. Checksums catch torn or corrupt
//! records on recovery.

use std::collections::HashMap;
use std::fmt;

/// Errors surfaced by the store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// The key has never been committed.
    NotFound,
    /// The stored record failed its checksum (corruption detected on
    /// recovery).
    Corrupt,
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::NotFound => write!(f, "key has no committed value"),
            StorageError::Corrupt => write!(f, "stored record failed its checksum"),
        }
    }
}

impl std::error::Error for StorageError {}

fn checksum(data: &[u8]) -> u64 {
    // FNV-1a: deterministic and dependency-free; adequate for detecting
    // torn writes in the model.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in data {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Record {
    data: Vec<u8>,
    sum: u64,
}

impl Record {
    fn new(data: Vec<u8>) -> Self {
        let sum = checksum(&data);
        Record { data, sum }
    }

    fn verify(&self) -> bool {
        checksum(&self.data) == self.sum
    }
}

/// Crash-atomic key-value stable storage (shadow-slot model).
///
/// Writing is a two-step protocol: [`StableStore::stage`] places the new
/// value in the shadow slot, [`StableStore::commit`] atomically makes it
/// live. [`StableStore::crash`] simulates a node crash: all staged
/// (uncommitted) data evaporates; committed data survives.
///
/// # Examples
///
/// ```
/// use hades_services::StableStore;
///
/// let mut store = StableStore::new();
/// store.write(b"mode", b"normal".to_vec());
/// store.stage(b"mode", b"degraded".to_vec());
/// store.crash(); // crash before commit
/// assert_eq!(store.read(b"mode")?, b"normal");
/// # Ok::<(), hades_services::StorageError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct StableStore {
    live: HashMap<Vec<u8>, Record>,
    shadow: HashMap<Vec<u8>, Record>,
    commits: u64,
    crashes: u64,
}

impl StableStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        StableStore::default()
    }

    /// Stages a value in the shadow slot for `key` (not yet visible).
    pub fn stage(&mut self, key: &[u8], value: Vec<u8>) {
        self.shadow.insert(key.to_vec(), Record::new(value));
    }

    /// Atomically commits the staged value for `key`. Returns `true` if a
    /// staged value existed.
    pub fn commit(&mut self, key: &[u8]) -> bool {
        match self.shadow.remove(key) {
            Some(rec) => {
                self.live.insert(key.to_vec(), rec);
                self.commits += 1;
                true
            }
            None => false,
        }
    }

    /// Convenience: stage + commit in one call.
    pub fn write(&mut self, key: &[u8], value: Vec<u8>) {
        self.stage(key, value);
        self.commit(key);
    }

    /// Reads the committed value for `key`.
    ///
    /// # Errors
    ///
    /// [`StorageError::NotFound`] when the key has no committed value;
    /// [`StorageError::Corrupt`] when the record fails its checksum.
    pub fn read(&self, key: &[u8]) -> Result<&[u8], StorageError> {
        match self.live.get(key) {
            None => Err(StorageError::NotFound),
            Some(rec) if !rec.verify() => Err(StorageError::Corrupt),
            Some(rec) => Ok(&rec.data),
        }
    }

    /// Simulates a crash: staged data is lost, committed data survives.
    pub fn crash(&mut self) {
        self.shadow.clear();
        self.crashes += 1;
    }

    /// Injects corruption into the committed record for `key` (for
    /// recovery tests). Returns `true` if the key existed.
    pub fn corrupt(&mut self, key: &[u8]) -> bool {
        match self.live.get_mut(key) {
            Some(rec) => {
                rec.sum ^= 0xDEAD_BEEF;
                true
            }
            None => false,
        }
    }

    /// Number of committed keys.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Whether the store has no committed keys.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Commits performed over the store's lifetime.
    pub fn commit_count(&self) -> u64 {
        self.commits
    }

    /// Crashes survived.
    pub fn crash_count(&self) -> u64 {
        self.crashes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn committed_value_is_readable() {
        let mut s = StableStore::new();
        s.write(b"k", b"v1".to_vec());
        assert_eq!(s.read(b"k").unwrap(), b"v1");
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn staged_value_is_invisible_until_commit() {
        let mut s = StableStore::new();
        s.write(b"k", b"old".to_vec());
        s.stage(b"k", b"new".to_vec());
        assert_eq!(s.read(b"k").unwrap(), b"old");
        assert!(s.commit(b"k"));
        assert_eq!(s.read(b"k").unwrap(), b"new");
    }

    #[test]
    fn crash_before_commit_preserves_old_value() {
        let mut s = StableStore::new();
        s.write(b"k", b"old".to_vec());
        s.stage(b"k", b"new".to_vec());
        s.crash();
        assert_eq!(s.read(b"k").unwrap(), b"old");
        assert!(!s.commit(b"k"), "staged data evaporated in the crash");
        assert_eq!(s.crash_count(), 1);
    }

    #[test]
    fn crash_after_commit_preserves_new_value() {
        let mut s = StableStore::new();
        s.write(b"k", b"old".to_vec());
        s.stage(b"k", b"new".to_vec());
        s.commit(b"k");
        s.crash();
        assert_eq!(s.read(b"k").unwrap(), b"new");
    }

    #[test]
    fn missing_key_reports_not_found() {
        let s = StableStore::new();
        assert_eq!(s.read(b"nope").unwrap_err(), StorageError::NotFound);
    }

    #[test]
    fn corruption_is_detected() {
        let mut s = StableStore::new();
        s.write(b"k", b"v".to_vec());
        assert!(s.corrupt(b"k"));
        assert_eq!(s.read(b"k").unwrap_err(), StorageError::Corrupt);
        assert!(!s.corrupt(b"zzz"));
    }

    #[test]
    fn commit_without_stage_is_noop() {
        let mut s = StableStore::new();
        assert!(!s.commit(b"k"));
        assert_eq!(s.commit_count(), 0);
    }

    #[test]
    fn independent_keys_do_not_interfere() {
        let mut s = StableStore::new();
        s.write(b"a", b"1".to_vec());
        s.stage(b"b", b"2".to_vec());
        s.crash();
        assert_eq!(s.read(b"a").unwrap(), b"1");
        assert_eq!(s.read(b"b").unwrap_err(), StorageError::NotFound);
    }

    #[test]
    fn error_display() {
        assert!(StorageError::NotFound.to_string().contains("no committed"));
        assert!(StorageError::Corrupt.to_string().contains("checksum"));
    }
}
