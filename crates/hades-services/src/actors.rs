//! Engine-driven service actors: the per-node middleware agent.
//!
//! The sibling modules ([`crate::detect`], [`crate::membership`],
//! [`crate::replication`]) are *self-contained* protocol simulations: each
//! owns its whole timeline and is convenient for studying one service in
//! isolation. A cluster runtime needs the same protocols as **actors** on
//! a shared engine, interleaved with the dispatcher and with each other —
//! the composition the paper deploys on every node.
//!
//! [`NodeAgent`] is that composition for one node. It runs four layers in
//! one state machine:
//!
//! * **crash detection** — emits heartbeats every `H` to all peers and
//!   suspects a peer whose silence exceeds `T₀ = H + δmax + γ` (the
//!   perfect-detector timeout of [`crate::detect`]); detection happens
//!   within [`crate::DetectorConfig::detection_bound`] of the crash;
//! * **membership** — on suspicion it floods a view-change proposal
//!   (`f + 1` rounds, FloodSet-style, as in [`crate::consensus`]) and
//!   installs the agreed view at a bounded time after the first round;
//!   proposals can both *remove* suspects and *re-admit* joiners
//!   (exclusion wins for current members, inclusion wins for returners);
//! * **passive replication management** — the lowest-numbered member of
//!   the current view is the primary; a view change that removes the
//!   primary promotes the next member, which is the takeover moment of
//!   passive/semi-active replication ([`crate::replication`]);
//! * **crash recovery** — on [`ActorEvent::Restart`] the agent comes back
//!   *cold* and runs the rejoin protocol of [`crate::recovery`]: it
//!   announces itself, the lowest-numbered surviving member serves its
//!   latest checkpoint as paced MTU-sized chunks over the shared network
//!   (size-proportional cost), the joiner replays the log tail locally
//!   and a view change re-admits it to membership.
//!
//! Membership travels as a [`MemberSet`]: proposals and transfer
//! preambles ship the set as independent 32-bit wire words (one message
//! per word), which is sound because every membership merge rule is
//! bitwise and can be applied word by word. The old single-`u64` packing
//! capped clusters at 48 nodes; the word-chunked encoding addresses
//! [`crate::memberset::MAX_NODES`].
//!
//! Every externally visible transition is appended to a shared
//! [`AgentLog`] the embedding runtime reads back after the run. The agent
//! assumes crashes are separated by more than one detection + agreement
//! window (the paper's bounded-failure model); overlapping failures keep
//! safety of the sets but may skip view numbers on some nodes. A state
//! transfer whose server dies mid-stream does *not* stall until the next
//! failure-free window: the joiner re-announces on the heartbeat cadence
//! (each re-announcement is a liveness mark for the stall watchdog), every
//! live node remembers the request, and whichever member the post-exclusion
//! view designates as server re-serves from its own preamble. When *every*
//! member is simultaneously rejoining (total failure), the lowest-numbered
//! announcer that has heard only fellow announcers for two stalled retry
//! rounds bootstraps a singleton view numbered past every view it has heard
//! of and serves the others back in.

use crate::memberset::{MemberSet, MAX_NODES};
use crate::membership::View;
use crate::recovery::{RecoveryConfig, RejoinRecord};
use hades_sim::mux::{ActorCtx, ActorEvent, ActorId, NetActor};
use hades_sim::NodeId;
use hades_time::{Duration, Time};
use std::cell::RefCell;
use std::collections::{BTreeSet, VecDeque};
use std::rc::Rc;

/// Message kind: heartbeat.
const MSG_HB: u64 = 1;
/// Message kind: one wire word of a view-change proposal (payload =
/// target view + word index + word bits).
const MSG_VC: u64 = 2;
/// Message kind: join request from a restarted node (payload = epoch).
const MSG_JOIN: u64 = 3;
/// Message kind: one state-transfer chunk (payload = epoch + seq + total).
const MSG_CKPT: u64 = 4;
/// Message kind: transfer preamble, part 1 (epoch + log tail + view
/// number).
const MSG_SYNC: u64 = 5;
/// Message kind: transfer preamble, part 2 — one wire word of the
/// membership set (epoch + word index + word bits).
const MSG_MASK: u64 = 6;
/// Message kind: selective-retransmission request from the joiner — one
/// missing chunk sequence number (epoch + seq).
const MSG_NACK: u64 = 7;
/// Message kind: *delta*-transfer preamble, part 1. Same payload layout
/// as [`MSG_SYNC`], but signals that the stream carries the log tail
/// only — the joiner's durable checkpoint already covers the snapshot.
const MSG_DSYNC: u64 = 8;

/// Timer kinds (upper 4 bits of the tag; dispatch is on `tag >> 60`).
const KIND_HB_TICK: u64 = 1;
const KIND_TIMEOUT: u64 = 2;
const KIND_ROUND: u64 = 3;
const KIND_DECIDE: u64 = 4;
const KIND_XFER: u64 = 5;
const KIND_REPLAY: u64 = 6;
const KIND_JOIN_RETRY: u64 = 7;
const KIND_NACK: u64 = 8;

/// Most missing chunks NACKed per gap-detection round; the next round
/// picks up the remainder once these retransmissions land.
const NACK_BATCH: u64 = 64;

fn tag(kind: u64, body: u64) -> u64 {
    (kind << 60) | body
}

/// The profiling label of [`NodeAgent`] actors (see
/// `hades_sim::mux::NetActor::label`).
pub const AGENT_LABEL: &str = "agent";

/// Short kind name of an agent protocol message tag, for traffic
/// attribution (`None` for tags the agent never sends).
pub fn agent_msg_name(tag: u64) -> Option<&'static str> {
    Some(match tag {
        MSG_HB => "hb",
        MSG_VC => "view_change",
        MSG_JOIN => "join",
        MSG_CKPT => "ckpt",
        MSG_SYNC => "sync",
        MSG_MASK => "mask",
        MSG_NACK => "nack",
        MSG_DSYNC => "dsync",
        _ => return None,
    })
}

/// Whether one agent observation is heartbeat work: the periodic
/// heartbeat-tick timer (kind bits of the composite timer tag) or an
/// `MSG_HB` message, received (`class == "message"`) or sent
/// (`class == "send"`).
pub fn agent_is_heartbeat(class: &str, tag: u64) -> bool {
    match class {
        "timer" => tag >> 60 == KIND_HB_TICK,
        "message" | "send" => tag == MSG_HB,
        _ => false,
    }
}

fn hb_tag(epoch: u64) -> u64 {
    tag(KIND_HB_TICK, epoch & 0xFFFF)
}

fn timeout_tag(peer: u32, gen: u32) -> u64 {
    tag(KIND_TIMEOUT, ((peer as u64) << 32) | gen as u64)
}

fn round_tag(target: u32, round: u32) -> u64 {
    tag(KIND_ROUND, ((target as u64) << 16) | round as u64)
}

fn xfer_tag(to: u32, seq: u64) -> u64 {
    tag(KIND_XFER, ((to as u64) << 32) | (seq & 0xFFFF_FFFF))
}

fn replay_tag(epoch: u64) -> u64 {
    tag(KIND_REPLAY, epoch & 0xFFFF)
}

/// View-change word: target view (16 bits) | word index (8 bits) | word
/// bits (32 bits).
fn vc_payload(target: u32, widx: u32, bits: u32) -> u64 {
    ((target as u64 & 0xFFFF) << 48) | ((widx as u64 & 0xFF) << 32) | bits as u64
}

fn vc_decode(payload: u64) -> (u32, u32, u32) {
    (
        ((payload >> 48) & 0xFFFF) as u32,
        ((payload >> 32) & 0xFF) as u32,
        payload as u32,
    )
}

/// Join announcement: epoch (16 bits) | announcer's last installed view
/// (16 bits) | durable checkpoint generation (32 bits). The checkpoint
/// cursor lets the server offer a delta transfer; the view lets a
/// total-failure bootstrap pick a view number past every view any
/// announcer has installed (view numbers never regress cluster-wide).
fn join_payload(epoch: u64, view: u32, ckpt_gen: u64) -> u64 {
    ((epoch & 0xFFFF) << 48) | ((view as u64 & 0xFFFF) << 32) | (ckpt_gen & 0xFFFF_FFFF)
}

fn join_decode(payload: u64) -> (u64, u32, u64) {
    (
        (payload >> 48) & 0xFFFF,
        ((payload >> 32) & 0xFFFF) as u32,
        payload & 0xFFFF_FFFF,
    )
}

/// Selective-retransmission request: epoch (16 bits) | missing chunk
/// sequence number (24 bits).
fn nack_payload(epoch: u64, seq: u64) -> u64 {
    ((epoch & 0xFFFF) << 48) | (seq & 0xFF_FFFF)
}

fn nack_decode(payload: u64) -> (u64, u64) {
    ((payload >> 48) & 0xFFFF, payload & 0xFF_FFFF)
}

fn sync_payload(epoch: u64, log_tail: u64, view: u32) -> u64 {
    ((epoch & 0xFFFF) << 48) | ((log_tail & 0xFFFF) << 32) | view as u64
}

fn sync_decode(payload: u64) -> (u64, u64, u32) {
    (
        (payload >> 48) & 0xFFFF,
        (payload >> 32) & 0xFFFF,
        payload as u32,
    )
}

fn ckpt_payload(epoch: u64, seq: u64, total: u64) -> u64 {
    ((epoch & 0xFFFF) << 48) | ((seq & 0xFF_FFFF) << 24) | (total & 0xFF_FFFF)
}

fn ckpt_decode(payload: u64) -> (u64, u64, u64) {
    (
        (payload >> 48) & 0xFFFF,
        (payload >> 24) & 0xFF_FFFF,
        payload & 0xFF_FFFF,
    )
}

/// Membership word of a transfer preamble: epoch (16 bits) | word index
/// (8 bits) | word bits (32 bits).
fn mask_payload(epoch: u64, widx: u32, bits: u32) -> u64 {
    ((epoch & 0xFFFF) << 48) | ((widx as u64 & 0xFF) << 32) | bits as u64
}

fn mask_decode(payload: u64) -> (u64, u32, u32) {
    (
        (payload >> 48) & 0xFFFF,
        ((payload >> 32) & 0xFF) as u32,
        payload as u32,
    )
}

/// Static configuration of one node's agent.
#[derive(Debug, Clone, Copy)]
pub struct AgentConfig {
    /// The node this agent serves.
    pub node: NodeId,
    /// Cluster size; agents are assumed registered in node order, so the
    /// agent of node *i* has actor id *i*.
    pub nodes: u32,
    /// Heartbeat emission period `H`.
    pub heartbeat_period: Duration,
    /// Clock precision `γ` folded into the suspicion timeout.
    pub clock_precision: Duration,
    /// Crash-fault bound `f`: the view-change flood runs `f + 1` rounds.
    pub f: u32,
    /// Sizing of checkpointed state transfer during rejoins.
    pub recovery: RecoveryConfig,
    /// Route view-change proposals through the Δ-multicast discipline
    /// (each participant multicasts its proposal once, re-multicasting
    /// only when a merge actually changes it) instead of the
    /// FloodSet-style `f + 1`-round rebroadcast. Same agreement bound,
    /// `O(n²)` messages per change instead of `O((f+1)·n²)`.
    pub vc_delta_multicast: bool,
    /// Per-link redundant-transmission budget of the Δ-multicast
    /// view-change transport: each proposal copy is retried up to
    /// `vc_attempts − 1` extra times when the network omits it, so the
    /// cheap transport also survives lossy links (the flood transport
    /// has round-level redundancy instead and always sends single-shot).
    pub vc_attempts: u32,
}

impl AgentConfig {
    /// The suspicion timeout `T₀ = H + δmax + γ`.
    pub fn timeout(&self, max_delay: Duration) -> Duration {
        self.heartbeat_period + max_delay + self.clock_precision
    }

    /// Worst-case detection latency `H + T₀`.
    pub fn detection_bound(&self, max_delay: Duration) -> Duration {
        self.heartbeat_period + self.timeout(max_delay)
    }

    /// One agreement round: `δmax + γ` plus a scheduling margin.
    pub fn round_length(&self, max_delay: Duration) -> Duration {
        max_delay + self.clock_precision + Duration::from_micros(1)
    }

    /// Bound on the time from first local suspicion to view install.
    pub fn agreement_bound(&self, max_delay: Duration) -> Duration {
        self.round_length(max_delay)
            .saturating_mul(self.f as u64 + 1)
    }

    /// Bound on the restart→re-admission latency of the rejoin protocol:
    /// the join announcement reaches the serving member within the
    /// detection bound (one `δmax` in the failure-free case, but bounded
    /// by `H + T₀` like any liveness observation), the state transfer and
    /// replay take at most [`RecoveryConfig::transfer_bound`], and the
    /// re-admission flood completes within one agreement window.
    pub fn rejoin_bound(&self, max_delay: Duration) -> Duration {
        self.detection_bound(max_delay)
            .saturating_add(self.recovery.transfer_bound(max_delay))
            .saturating_add(self.agreement_bound(max_delay))
    }

    /// Number of 32-bit wire words a membership of this cluster takes.
    fn wire_words(&self) -> u32 {
        MemberSet::wire_words(self.nodes)
    }
}

/// One externally visible agent transition, delivered to the optional
/// [`AgentTap`] **at the engine instant it happens** — the online face of
/// the post-run [`AgentLog`]. Taps are how an embedding control plane
/// (e.g. a reactive scenario driver) observes the run while it is still
/// going, instead of scraping logs afterwards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AgentEvent {
    /// This agent started suspecting a peer.
    Suspected {
        /// The suspected node.
        suspect: u32,
    },
    /// This agent dropped a suspicion: the suspect proved itself alive
    /// again by announcing a rejoin.
    SuspicionCleared {
        /// The node no longer suspected.
        suspect: u32,
    },
    /// This agent installed an agreed view.
    ViewInstalled {
        /// Monotone view number.
        number: u32,
        /// Agreed members, ascending.
        members: Vec<u32>,
    },
    /// This agent entered the rejoin protocol and broadcast its JOIN
    /// announcement (cold restart or self-heal re-entry).
    RejoinAnnounced,
    /// The first checkpoint chunk of this agent's state transfer
    /// arrived. Re-emitted when a newer view supersedes the stream and
    /// the chunk count restarts.
    TransferStarted,
    /// A checkpoint chunk arrived; `chunks` counts the current stream.
    TransferProgress {
        /// Chunks received so far in the current transfer stream.
        chunks: u64,
    },
    /// Preamble, membership words and every chunk arrived: the local
    /// replay of the log tail begins.
    TransferCompleted,
    /// The checkpoint replay finished; re-admission is pending.
    ReplayCompleted,
    /// This agent completed its own rejoin (re-admitted to the view).
    RejoinCompleted {
        /// The re-admitting view number.
        view: u32,
        /// When the node restarted (the rejoin's starting instant).
        restarted_at: Time,
    },
}

/// The online observation callback of a [`NodeAgent`]:
/// `(now, observing_node, event)`, invoked synchronously inside the
/// agent's handler at the emission instant. Taps must not re-enter the
/// engine; they record (and typically drop a [`hades_sim::Postbox`] wake
/// request for a control actor).
#[derive(Clone)]
pub struct AgentTap(pub Rc<AgentTapFn>);

/// The bare callback type behind [`AgentTap`]:
/// `(now, observing_node, event)`.
pub type AgentTapFn = dyn Fn(Time, u32, &AgentEvent);

impl std::fmt::Debug for AgentTap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("AgentTap")
    }
}

/// Everything one agent observed and decided, readable after the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AgentLog {
    /// The observing node.
    pub node: u32,
    /// Heartbeats received.
    pub heartbeats_seen: u64,
    /// Own suspicions: `(suspect, when)` in suspicion order.
    pub suspicions: Vec<(u32, Time)>,
    /// Installed views, starting with view 0.
    pub views: Vec<View>,
    /// Primary handovers: `(new_primary, when)` at each view install that
    /// moved the primary.
    pub primary_changes: Vec<(u32, Time)>,
    /// Cold restarts of this node, in order.
    pub restarts: Vec<Time>,
    /// Completed rejoin cycles of this node.
    pub rejoins: Vec<RejoinRecord>,
    /// State transfers this node served to rejoining peers.
    pub transfers_served: u64,
    /// State-transfer chunks this node sent.
    pub chunks_sent: u64,
    /// View-change proposal messages this node sent (flood rebroadcasts
    /// and per-word copies included), for the flood-vs-Δ-multicast
    /// complexity comparison.
    pub vc_messages_sent: u64,
    /// JOIN/preamble retransmissions this node issued while rejoining
    /// (lossy-link masking on the heartbeat cadence).
    pub join_retries: u64,
    /// Heartbeat copies this node sent that the network accepted.
    pub heartbeats_sent: u64,
    /// Heartbeat copies the network refused at send time (link down or
    /// receiver's node crashed) — suppressed rather than lost in flight.
    pub heartbeats_suppressed: u64,
}

impl AgentLog {
    fn new(node: u32) -> Self {
        AgentLog {
            node,
            heartbeats_seen: 0,
            suspicions: Vec::new(),
            views: Vec::new(),
            primary_changes: Vec::new(),
            restarts: Vec::new(),
            rejoins: Vec::new(),
            transfers_served: 0,
            chunks_sent: 0,
            vc_messages_sent: 0,
            join_retries: 0,
            heartbeats_sent: 0,
            heartbeats_suppressed: 0,
        }
    }

    /// The current primary: lowest-numbered member of the latest view.
    pub fn primary(&self) -> Option<u32> {
        self.views.last().and_then(|v| v.members.first().copied())
    }

    /// Member sequences of the installed views (for cross-node agreement
    /// checks, which must ignore the node-local install instants).
    pub fn view_members(&self) -> Vec<(u32, Vec<u32>)> {
        self.views
            .iter()
            .map(|v| (v.number, v.members.clone()))
            .collect()
    }
}

/// An in-flight view change.
#[derive(Debug, Clone)]
struct Change {
    target: u32,
    proposal: MemberSet,
}

/// An outbound state transfer in progress (server side).
#[derive(Debug, Clone)]
struct Transfer {
    to: u32,
    to_epoch: u64,
    /// The joiner's durable checkpoint generation (from its join
    /// announcement), kept so an aborted stream can be re-queued.
    to_ckpt_gen: u64,
    total: u64,
    next: u64,
    /// The preamble this transfer shipped, kept for lossy-link re-sends
    /// (view number and membership must stay the consistent pair the
    /// stream was started with).
    log_tail: u64,
    view: u32,
    mask: MemberSet,
    /// Whether the stream is a delta: log tail only, no snapshot bytes.
    delta: bool,
}

/// Timestamps of a rejoin in progress (joiner side).
#[derive(Debug, Clone, Copy, Default)]
struct PendingRejoin {
    restarted_at: Time,
    transfer_started_at: Option<Time>,
    transfer_completed_at: Option<Time>,
    replay_completed_at: Option<Time>,
}

/// The per-node middleware agent (detector + membership + replication
/// management + crash recovery) as a [`NetActor`].
///
/// # Examples
///
/// Running four agents standalone on an [`hades_sim::ActorEngine`]; node 2
/// crashes at 5 ms and restarts at 12 ms, and is re-admitted after a
/// checkpointed state transfer:
///
/// ```
/// use hades_services::actors::{AgentConfig, NodeAgent};
/// use hades_services::recovery::RecoveryConfig;
/// use hades_sim::{ActorEngine, FaultPlan, LinkConfig, Network, NodeId, SimRng};
/// use hades_time::{Duration, Time};
///
/// let plan = FaultPlan::new().crash_window(
///     NodeId(2),
///     Time::ZERO + Duration::from_millis(5),
///     Time::ZERO + Duration::from_millis(12),
/// );
/// let net = Network::homogeneous(
///     4,
///     LinkConfig::reliable(Duration::from_micros(10), Duration::from_micros(40)),
///     SimRng::seed_from(1),
/// ).with_fault_plan(plan);
/// let mut rt = ActorEngine::new(net);
/// let logs: Vec<_> = (0..4)
///     .map(|n| {
///         let (agent, log) = NodeAgent::new(AgentConfig {
///             node: NodeId(n),
///             nodes: 4,
///             heartbeat_period: Duration::from_millis(1),
///             clock_precision: Duration::from_micros(10),
///             f: 1,
///             recovery: RecoveryConfig::default(),
///             vc_delta_multicast: true,
///             vc_attempts: 1,
///         });
///         rt.add_actor(Box::new(agent));
///         log
///     })
///     .collect();
/// rt.run(Time::ZERO + Duration::from_millis(30));
/// let joiner = logs[2].borrow();
/// assert_eq!(joiner.rejoins.len(), 1, "node 2 rejoined");
/// assert_eq!(logs[0].borrow().views.last().unwrap().members, vec![0, 1, 2, 3]);
/// ```
#[derive(Debug)]
pub struct NodeAgent {
    cfg: AgentConfig,
    /// Heartbeat generation per peer; a timeout fires only if no newer
    /// heartbeat bumped the generation.
    gen: Vec<u32>,
    /// Peers this agent itself suspects.
    suspected_local: MemberSet,
    /// Union of own suspicions and exclusions adopted from peers'
    /// view-change proposals; removed from every proposal.
    excluded: MemberSet,
    /// Restarted peers awaiting re-admission; added to every proposal.
    joining: MemberSet,
    view_number: u32,
    view_mask: MemberSet,
    primary: u32,
    changing: Option<Change>,
    /// Incarnation counter: bumped on every restart so events armed by a
    /// previous life are discarded.
    epoch: u64,
    /// Whether this agent is between restart and re-admission.
    rejoining: bool,
    /// Joiner side: preamble and chunk progress of the inbound transfer.
    have_sync: bool,
    /// Which membership wire words of the preamble have arrived.
    mask_got: Vec<bool>,
    replayed: bool,
    log_tail: u64,
    xfer_total: Option<u64>,
    xfer_seen: u64,
    /// Chunk count at the last JOIN-retry check: no progress since means
    /// the stream stalled (lost JOIN, preamble or chunks) and the join
    /// announcement is retransmitted on the heartbeat cadence.
    xfer_seen_at_retry: u64,
    /// Consecutive stalled retry rounds with no preamble at all; two in a
    /// row (plus the conditions below) is the total-failure bootstrap
    /// trigger.
    stall_rounds: u32,
    /// Joiner side: join announcements heard *while rejoining* (announcer
    /// → announced view). A rejoining node's `view_mask` is stale, so
    /// these must not enter `pending_joins`; they feed the total-failure
    /// bootstrap instead.
    heard_joins: std::collections::BTreeMap<u32, u32>,
    /// Peers heard from (heartbeats) since this rejoin began. Bootstrap
    /// requires every such peer to be a join announcer itself — any
    /// established member heartbeating at us vetoes the bootstrap.
    hb_since_rejoin: MemberSet,
    /// Distinct chunk sequence numbers received (the stream's chunks
    /// carry their position, so losses leave identifiable gaps).
    xfer_got: BTreeSet<u64>,
    /// Whether the inbound stream is a delta (preamble was `MSG_DSYNC`).
    xfer_delta: bool,
    /// The node serving the inbound stream (source of the last chunk):
    /// where NACKs go.
    xfer_from: u32,
    /// Sequence numbers NACKed and not yet received again; receipt moves
    /// them into the resent count.
    nacked: BTreeSet<u64>,
    /// Chunks recovered through selective retransmission this rejoin.
    chunks_resent: u64,
    /// Whether a gap-detection (NACK) timer is pending.
    nack_armed: bool,
    /// Chunk count when the pending NACK timer was armed: progress since
    /// means the stream is still flowing and the round just re-arms.
    xfer_seen_at_nack: u64,
    /// Durable checkpoint cursor (checkpoint generation installed on
    /// stable storage). Survives crashes: it is exactly what makes a
    /// delta transfer sound, so [`NodeAgent::begin_rejoin`] must not
    /// reset it.
    durable_ckpt_gen: u64,
    pending: Option<PendingRejoin>,
    /// View number last installed before the most recent crash.
    pre_crash_view: u32,
    /// Server side: the outbound transfer in progress and the queue of
    /// joiners waiting behind it.
    serving: Option<Transfer>,
    /// The last stream this node finished serving, kept so late NACKs
    /// (losses discovered after the paced send completed) can be answered
    /// with targeted resends instead of a from-scratch re-serve.
    last_served: Option<Transfer>,
    pending_joins: VecDeque<(u32, u64, u64)>,
    log: Rc<RefCell<AgentLog>>,
    tap: Option<AgentTap>,
}

impl NodeAgent {
    /// Creates the agent and the shared log handle the embedding runtime
    /// keeps for after-run inspection.
    ///
    /// # Panics
    ///
    /// Panics if the cluster exceeds [`MAX_NODES`] (wire word indices are
    /// packed into 8 payload bits) or the agent's node is out of range.
    pub fn new(cfg: AgentConfig) -> (Self, Rc<RefCell<AgentLog>>) {
        assert!(
            cfg.nodes <= MAX_NODES,
            "membership wire words address up to {MAX_NODES} nodes"
        );
        assert!(cfg.node.0 < cfg.nodes, "agent node outside the cluster");
        let log = Rc::new(RefCell::new(AgentLog::new(cfg.node.0)));
        let agent = NodeAgent {
            cfg,
            gen: vec![0; cfg.nodes as usize],
            suspected_local: MemberSet::new(),
            excluded: MemberSet::new(),
            joining: MemberSet::new(),
            view_number: 0,
            view_mask: MemberSet::full(cfg.nodes),
            primary: 0,
            changing: None,
            epoch: 0,
            rejoining: false,
            have_sync: false,
            mask_got: vec![false; cfg.wire_words() as usize],
            replayed: false,
            log_tail: 0,
            xfer_total: None,
            xfer_seen: 0,
            xfer_seen_at_retry: 0,
            stall_rounds: 0,
            heard_joins: std::collections::BTreeMap::new(),
            hb_since_rejoin: MemberSet::new(),
            xfer_got: BTreeSet::new(),
            xfer_delta: false,
            xfer_from: 0,
            nacked: BTreeSet::new(),
            chunks_resent: 0,
            nack_armed: false,
            xfer_seen_at_nack: 0,
            durable_ckpt_gen: 0,
            pending: None,
            pre_crash_view: 0,
            serving: None,
            last_served: None,
            pending_joins: VecDeque::new(),
            log: log.clone(),
            tap: None,
        };
        (agent, log)
    }

    /// Installs the online observation tap (see [`AgentTap`]); events are
    /// delivered at their engine instant, in addition to the post-run
    /// [`AgentLog`].
    pub fn with_tap(mut self, tap: AgentTap) -> Self {
        self.tap = Some(tap);
        self
    }

    /// Invokes the tap, if any.
    fn emit(&self, now: Time, event: AgentEvent) {
        if let Some(tap) = &self.tap {
            (tap.0)(now, self.cfg.node.0, &event);
        }
    }

    fn have_mask(&self) -> bool {
        self.mask_got.iter().all(|g| *g)
    }

    fn broadcast(&self, ctx: &mut ActorCtx<'_>, tag: u64, payload: u64) {
        let mut sent = 0u64;
        let mut suppressed = 0u64;
        for peer in 0..self.cfg.nodes {
            if NodeId(peer) != self.cfg.node {
                if ctx.send(ActorId(peer), NodeId(peer), tag, payload) {
                    sent += 1;
                } else {
                    suppressed += 1;
                }
            }
        }
        if tag == MSG_HB {
            let mut log = self.log.borrow_mut();
            log.heartbeats_sent += sent;
            log.heartbeats_suppressed += suppressed;
        }
    }

    /// Sends the given wire words of a view-change proposal to every
    /// peer, counting accepted copies toward the flood-vs-multicast
    /// complexity comparison. The Δ-multicast transport retries each
    /// omitted copy up to `vc_attempts − 1` extra times; the flood
    /// transport relies on its round-level redundancy instead.
    fn send_proposal_words(&mut self, ctx: &mut ActorCtx<'_>, target: u32, words: &[(u32, u32)]) {
        let attempts = if self.cfg.vc_delta_multicast {
            self.cfg.vc_attempts.max(1)
        } else {
            1
        };
        let targets: Vec<(ActorId, NodeId)> = (0..self.cfg.nodes)
            .filter(|p| NodeId(*p) != self.cfg.node)
            .map(|p| (ActorId(p), NodeId(p)))
            .collect();
        let mut sent = 0u64;
        for (widx, bits) in words {
            sent += ctx.fanout(
                targets.iter().copied(),
                MSG_VC,
                vc_payload(target, *widx, *bits),
                attempts,
            ) as u64;
        }
        self.log.borrow_mut().vc_messages_sent += sent;
    }

    /// All wire words of `set`, for full-proposal sends.
    fn all_words(&self, set: &MemberSet) -> Vec<(u32, u32)> {
        (0..self.cfg.wire_words())
            .map(|w| (w, set.wire_word(w)))
            .collect()
    }

    /// Starts a view change (or folds more exclusions/joins into the one
    /// in flight) toward the next view. Proposal merging is FloodSet-style
    /// with a twist: exclusion wins for current members (intersection),
    /// inclusion wins for non-members being re-admitted (union), so every
    /// correct node converges on the same set after `f + 1` rounds. The
    /// merge is bitwise, so each wire word travels — and merges — on its
    /// own.
    ///
    /// Transport: under the default Δ-multicast discipline each node
    /// multicasts its proposal once when it joins the change and again
    /// only when a merge actually changes it (information diffuses
    /// through the members' own sends, so a proposer's crash cannot hide
    /// its contribution — its atomic multicast either reached everyone
    /// or no one). The flood transport rebroadcasts every round instead.
    fn begin_change(&mut self, now: Time, ctx: &mut ActorCtx<'_>) {
        let mut own = self.view_mask.union(&self.joining);
        own.subtract(&self.excluded);
        let words = self.cfg.wire_words();
        match &mut self.changing {
            Some(c) => {
                let target = c.target;
                let mut changed: Vec<(u32, u32)> = Vec::new();
                for w in 0..words {
                    if c.proposal
                        .merge_wire_word(w, own.wire_word(w), &self.view_mask)
                    {
                        changed.push((w, c.proposal.wire_word(w)));
                    }
                }
                if self.cfg.vc_delta_multicast && !changed.is_empty() {
                    self.send_proposal_words(ctx, target, &changed);
                }
            }
            None => {
                let target = self.view_number + 1;
                let all = self.all_words(&own);
                self.changing = Some(Change {
                    target,
                    proposal: own,
                });
                self.send_proposal_words(ctx, target, &all);
                let round = self.cfg.round_length(ctx.max_delay());
                if !self.cfg.vc_delta_multicast {
                    for r in 1..=self.cfg.f {
                        ctx.timer_at(now + round.saturating_mul(r as u64), round_tag(target, r));
                    }
                }
                ctx.timer_at(
                    now + round.saturating_mul(self.cfg.f as u64 + 1),
                    tag(KIND_DECIDE, target as u64),
                );
            }
        }
    }

    fn install(&mut self, target: u32, now: Time, ctx: &mut ActorCtx<'_>) {
        let matches = self.changing.as_ref().is_some_and(|c| c.target == target);
        if !matches {
            return;
        }
        let c = self.changing.take().expect("checked above");
        self.view_number = target;
        self.view_mask = c.proposal;
        self.joining.subtract(&self.view_mask);
        // Exclusions adopted from peers' proposals have served their
        // purpose once the view installs; keeping them would veto a later
        // re-admission of a recovered node (exclusion wins in the merge).
        // Own live suspicions persist — they re-enter the next proposal.
        self.excluded = self.suspected_local.clone();
        let members = self.view_mask.to_vec();
        {
            let mut log = self.log.borrow_mut();
            log.views.push(View {
                number: target,
                members: members.clone(),
                installed_at: now,
            });
            if let Some(&new_primary) = members.first() {
                if new_primary != self.primary {
                    self.primary = new_primary;
                    log.primary_changes.push((new_primary, now));
                }
            }
        }
        self.emit(
            now,
            AgentEvent::ViewInstalled {
                number: target,
                members: members.clone(),
            },
        );
        if self.rejoining && self.view_mask.contains(self.cfg.node.0) {
            self.finish_rejoin(target, now, ctx);
        } else if !self.rejoining && !self.view_mask.contains(self.cfg.node.0) {
            // The cluster excluded us while we are alive: our restart
            // raced the exclusion flood (the transfer shipped a mask that
            // still contained us), or a false suspicion won agreement.
            // Self-heal by running the rejoin protocol again from the
            // announce step instead of lingering outside the view.
            self.begin_rejoin(now, ctx);
        }
        // A transfer in flight to a node this view just excluded shipped
        // a membership that is now wrong (the joiner would take the fast
        // re-admission path on it): abort it and re-serve from the front
        // of the queue with the fresh view in the preamble.
        let aborted = self
            .serving
            .as_ref()
            .is_some_and(|t| !self.view_mask.contains(t.to));
        if aborted {
            let t = self.serving.take().expect("checked above");
            self.pending_joins.retain(|(j, _, _)| *j != t.to);
            self.pending_joins
                .push_front((t.to, t.to_epoch, t.to_ckpt_gen));
        }
        // Joins deferred behind this view change can be served now, with
        // the newly agreed membership in their preambles; requests of
        // joiners this view just re-admitted are settled and dropped.
        let vm = self.view_mask.clone();
        self.pending_joins.retain(|(j, _, _)| !vm.contains(*j));
        self.drain_pending_joins(now, ctx);
    }

    /// Serves queued join requests this node is the server for (the
    /// lowest-numbered view member other than the joiner), once no
    /// transfer and no view change is in flight. Requests this node is
    /// not the server for stay queued: a later view change may make it
    /// the server (e.g. when the previous server is excluded), and
    /// entries of re-admitted joiners are pruned at install.
    fn drain_pending_joins(&mut self, now: Time, ctx: &mut ActorCtx<'_>) {
        let mut i = 0;
        while i < self.pending_joins.len() {
            if self.serving.is_some() || self.changing.is_some() {
                return; // one transfer at a time; re-drained on install
            }
            let (joiner, epoch, ckpt_gen) = self.pending_joins[i];
            let server = self.view_mask.members().find(|m| *m != joiner);
            if server == Some(self.cfg.node.0) {
                self.pending_joins.remove(i);
                self.start_transfer(joiner, epoch, ckpt_gen, now, ctx);
            } else {
                i += 1;
            }
        }
    }

    /// The joiner is back in the view: close the rejoin record and resume
    /// detection duty.
    fn finish_rejoin(&mut self, view: u32, now: Time, ctx: &mut ActorCtx<'_>) {
        self.rejoining = false;
        self.heard_joins.clear();
        self.stall_rounds = 0;
        let p = self.pending.take().unwrap_or_default();
        let record = RejoinRecord {
            node: self.cfg.node.0,
            restarted_at: p.restarted_at,
            transfer_started_at: p.transfer_started_at.unwrap_or(now),
            transfer_completed_at: p.transfer_completed_at.unwrap_or(now),
            replay_completed_at: p.replay_completed_at.unwrap_or(now),
            readmitted_at: now,
            view,
            views_traversed: view.saturating_sub(self.pre_crash_view),
            chunks: self.xfer_seen,
            chunks_resent: self.chunks_resent,
            bytes: if self.xfer_delta {
                self.cfg.recovery.delta_bytes(self.log_tail)
            } else {
                self.cfg.recovery.bytes(self.log_tail)
            },
            log_entries: self.log_tail,
            delta: self.xfer_delta,
        };
        self.log.borrow_mut().rejoins.push(record);
        // The replayed state is current as of now: the durable cursor
        // advances to the checkpoint interval the rejoin landed in.
        self.durable_ckpt_gen = self
            .durable_ckpt_gen
            .max(self.cfg.recovery.checkpoint_gen_at(now));
        self.emit(
            now,
            AgentEvent::RejoinCompleted {
                view,
                restarted_at: p.restarted_at,
            },
        );
        // Resume watching the peers of the (re)joined view.
        let timeout = self.cfg.timeout(ctx.max_delay());
        for peer in self.view_mask.to_vec() {
            if NodeId(peer) != self.cfg.node {
                ctx.timer_at(now + timeout, timeout_tag(peer, self.gen[peer as usize]));
            }
        }
    }

    /// How long the joiner waits after the last transfer progress before
    /// NACKing the gaps: enough for the next paced chunk (plus jitter) to
    /// arrive on its own, far below the heartbeat-cadence JOIN retry.
    fn nack_delay(&self, max_delay: Duration) -> Duration {
        self.cfg
            .recovery
            .chunk_interval
            .saturating_mul(2)
            .saturating_add(max_delay.saturating_mul(2))
    }

    /// Arms the gap-detection timer if no round is pending and the
    /// inbound stream is still incomplete.
    fn arm_nack(&mut self, ctx: &mut ActorCtx<'_>) {
        let complete = self.xfer_total.is_some_and(|t| self.xfer_seen >= t);
        if self.nack_armed || complete {
            return;
        }
        self.nack_armed = true;
        self.xfer_seen_at_nack = self.xfer_seen;
        let delay = self.nack_delay(ctx.max_delay());
        ctx.timer_after(delay, tag(KIND_NACK, self.epoch & 0xFFFF));
    }

    /// Re-sends the stored preamble of the transfer in flight (the joiner
    /// lost it on a lossy link).
    fn resend_preamble(&self, ctx: &mut ActorCtx<'_>) {
        let Some(t) = &self.serving else { return };
        let to = ActorId(t.to);
        let node = NodeId(t.to);
        let kind = if t.delta { MSG_DSYNC } else { MSG_SYNC };
        ctx.send(to, node, kind, sync_payload(t.to_epoch, t.log_tail, t.view));
        for w in 0..self.cfg.wire_words() {
            ctx.send(
                to,
                node,
                MSG_MASK,
                mask_payload(t.to_epoch, w, t.mask.wire_word(w)),
            );
        }
    }

    /// Handles a join request on a live node: re-arm liveness tracking of
    /// the joiner and queue the request; the queue drain ships the state
    /// from whichever node the current view designates as server.
    fn handle_join(
        &mut self,
        joiner: u32,
        epoch: u64,
        ckpt_gen: u64,
        now: Time,
        ctx: &mut ActorCtx<'_>,
    ) {
        // The joiner is demonstrably alive again: retract any suspicion
        // and invalidate stale silence timers.
        if self.suspected_local.remove(joiner) {
            self.emit(now, AgentEvent::SuspicionCleared { suspect: joiner });
        }
        self.excluded.remove(joiner);
        self.gen[joiner as usize] += 1;
        ctx.timer_at(
            now + self.cfg.timeout(ctx.max_delay()),
            timeout_tag(joiner, self.gen[joiner as usize]),
        );
        if let Some(t) = &self.serving {
            if t.to == joiner && t.to_epoch == epoch {
                // A retransmitted JOIN of the joiner this transfer already
                // serves: the preamble (or early chunks) was lost on a
                // lossy link. Re-send the preamble the stream is based on;
                // the chunk pacing continues untouched.
                self.resend_preamble(ctx);
                return;
            }
            if t.to == joiner {
                // The joiner restarted again mid-transfer: the stream in
                // flight serves a dead incarnation — abort it and queue
                // the fresh epoch below.
                self.serving = None;
            }
        }
        // Every live node remembers the request — not only the node that
        // currently believes it is the server. Servership is re-evaluated
        // at every drain point (now, and after each view install), so if
        // the perceived server is itself dead and about to be excluded,
        // the next-lowest member picks the join up instead of the request
        // being silently dropped. Only the freshest request per joiner is
        // kept; entries of re-admitted joiners are pruned at install.
        self.pending_joins.retain(|(j, _, _)| *j != joiner);
        self.pending_joins.push_back((joiner, epoch, ckpt_gen));
        self.drain_pending_joins(now, ctx);
    }

    fn start_transfer(
        &mut self,
        joiner: u32,
        epoch: u64,
        ckpt_gen: u64,
        now: Time,
        ctx: &mut ActorCtx<'_>,
    ) {
        // The preamble carries the tail length in 16 bits: clamp it here,
        // on the serving side, so the chunk pacing, the payload and the
        // joiner's replay/byte accounting all agree even for checkpoint
        // cadences whose tail would exceed 65535 operations.
        let log_tail = self.cfg.recovery.log_tail_at(now).min(0xFFFF);
        // Delta transfer: the joiner's durable checkpoint cursor already
        // covers the snapshot this server would ship, so only the log
        // tail accumulated since that checkpoint needs to travel.
        let delta = self.cfg.recovery.delta_transfers
            && ckpt_gen >= self.cfg.recovery.checkpoint_gen_at(now);
        let total = if delta {
            self.cfg.recovery.delta_chunks(log_tail).min(0xFF_FFFF)
        } else {
            self.cfg.recovery.chunks(log_tail).min(0xFF_FFFF)
        };
        self.serving = Some(Transfer {
            to: joiner,
            to_epoch: epoch,
            to_ckpt_gen: ckpt_gen,
            total,
            next: 0,
            log_tail,
            view: self.view_number,
            mask: self.view_mask.clone(),
            delta,
        });
        self.resend_preamble(ctx);
        self.log.borrow_mut().transfers_served += 1;
        self.send_chunk(now, ctx);
    }

    /// Sends the next chunk of the outbound transfer and paces the one
    /// after it; on the last chunk, starts any queued transfer.
    fn send_chunk(&mut self, now: Time, ctx: &mut ActorCtx<'_>) {
        let Some(t) = &mut self.serving else { return };
        ctx.send(
            ActorId(t.to),
            NodeId(t.to),
            MSG_CKPT,
            ckpt_payload(t.to_epoch, t.next, t.total),
        );
        t.next += 1;
        let (done, next_seq, to) = (t.next >= t.total, t.next, t.to);
        self.log.borrow_mut().chunks_sent += 1;
        if done {
            // Keep the finished stream's identity: a loss the joiner
            // discovers only now (the tail chunks never arrived) comes
            // back as NACKs, answered from here with targeted resends.
            self.last_served = self.serving.take();
            self.drain_pending_joins(now, ctx);
        } else {
            ctx.timer_after(self.cfg.recovery.chunk_interval, xfer_tag(to, next_seq));
        }
    }

    /// Joiner side: once the preamble and every chunk arrived, start the
    /// local replay of the log tail.
    fn maybe_start_replay(&mut self, now: Time, ctx: &mut ActorCtx<'_>) {
        // `>=` rather than `==`: stray chunks of a superseded stream may
        // inflate the count, which at worst starts the replay early —
        // never stalls it.
        if self.replayed
            || !self.have_sync
            || !self.have_mask()
            || self.xfer_total.is_none_or(|t| self.xfer_seen < t)
        {
            return;
        }
        if let Some(p) = &mut self.pending {
            p.transfer_completed_at = Some(now);
        }
        self.emit(now, AgentEvent::TransferCompleted);
        ctx.timer_at(
            now + self.cfg.recovery.replay_time(self.log_tail),
            replay_tag(self.epoch),
        );
    }

    fn on_timer(&mut self, now: Time, t: u64, ctx: &mut ActorCtx<'_>) {
        match t >> 60 {
            KIND_HB_TICK => {
                if t & 0xFFFF != self.epoch & 0xFFFF {
                    return; // tick of a previous life
                }
                if !self.rejoining {
                    // A member applies operations continuously and
                    // persists each checkpoint as the cadence passes: the
                    // durable cursor tracks the latest boundary. A
                    // rejoining node is not applying state and must not
                    // advance it.
                    self.durable_ckpt_gen = self
                        .durable_ckpt_gen
                        .max(self.cfg.recovery.checkpoint_gen_at(now));
                }
                self.broadcast(ctx, MSG_HB, 0);
                ctx.timer_after(self.cfg.heartbeat_period, hb_tag(self.epoch));
            }
            KIND_TIMEOUT => {
                let peer = ((t >> 32) & 0x0FFF_FFFF) as u32;
                let gen = (t & 0xFFFF_FFFF) as u32;
                if self.rejoining
                    || self.gen[peer as usize] != gen
                    || self.suspected_local.contains(peer)
                {
                    return;
                }
                self.suspected_local.insert(peer);
                self.excluded.insert(peer);
                self.log.borrow_mut().suspicions.push((peer, now));
                self.emit(now, AgentEvent::Suspected { suspect: peer });
                if self.view_mask.contains(peer) {
                    self.begin_change(now, ctx);
                }
            }
            KIND_ROUND => {
                let target = ((t >> 16) & 0xFFFF) as u32;
                let words = match &self.changing {
                    Some(c) if c.target == target => Some(self.all_words(&c.proposal)),
                    _ => None,
                };
                if let Some(words) = words {
                    self.send_proposal_words(ctx, target, &words);
                }
            }
            KIND_DECIDE => self.install((t & 0xFFFF) as u32, now, ctx),
            KIND_XFER => {
                let to = ((t >> 32) & 0x0FFF_FFFF) as u32;
                let seq = t & 0xFFFF_FFFF;
                if self
                    .serving
                    .as_ref()
                    .is_some_and(|s| s.to == to && s.next == seq)
                {
                    self.send_chunk(now, ctx);
                }
            }
            KIND_JOIN_RETRY => {
                if t & 0xFFFF != self.epoch & 0xFFFF || !self.rejoining || self.replayed {
                    return;
                }
                let complete = self.xfer_total.is_some_and(|total| self.xfer_seen >= total);
                let stalled = !self.have_sync
                    || !self.have_mask()
                    || (!complete && self.xfer_seen == self.xfer_seen_at_retry);
                if stalled {
                    // The re-announcement is a liveness mark: the stall
                    // watchdog re-arms on it, because a joiner that keeps
                    // asking is making the only progress possible while no
                    // server exists (the true wedge — a joiner that went
                    // silent — stops re-announcing and still trips it).
                    self.emit(now, AgentEvent::RejoinAnnounced);
                    self.broadcast(
                        ctx,
                        MSG_JOIN,
                        join_payload(self.epoch, self.view_number, self.durable_ckpt_gen),
                    );
                    self.log.borrow_mut().join_retries += 1;
                    if !self.have_sync {
                        self.stall_rounds += 1;
                        let lowest_announcer = self
                            .heard_joins
                            .keys()
                            .next()
                            .is_some_and(|lowest| self.cfg.node.0 < *lowest);
                        let only_announcers_heard = self
                            .hb_since_rejoin
                            .members()
                            .all(|p| self.heard_joins.contains_key(&p));
                        if self.stall_rounds >= 2 && lowest_announcer && only_announcers_heard {
                            self.bootstrap_view(now, ctx);
                            return;
                        }
                    }
                }
                self.xfer_seen_at_retry = self.xfer_seen;
                ctx.timer_after(
                    self.cfg.heartbeat_period,
                    tag(KIND_JOIN_RETRY, self.epoch & 0xFFFF),
                );
            }
            KIND_NACK => {
                if t & 0xFFFF != self.epoch & 0xFFFF {
                    return; // round of a previous life
                }
                self.nack_armed = false;
                if !self.rejoining || self.replayed {
                    return;
                }
                let Some(total) = self.xfer_total else {
                    return;
                };
                if self.xfer_seen >= total {
                    return; // completed while the round was pending
                }
                if self.xfer_seen == self.xfer_seen_at_nack {
                    // No progress for a full round: the gaps are losses,
                    // not pacing. Ask the server for exactly the missing
                    // sequence numbers instead of re-serving the stream.
                    let server = (ActorId(self.xfer_from), NodeId(self.xfer_from));
                    let missing: Vec<u64> = (0..total)
                        .filter(|s| !self.xfer_got.contains(s))
                        .take(NACK_BATCH as usize)
                        .collect();
                    for seq in missing {
                        ctx.send(server.0, server.1, MSG_NACK, nack_payload(self.epoch, seq));
                        self.nacked.insert(seq);
                    }
                }
                self.arm_nack(ctx);
            }
            KIND_REPLAY => {
                if t & 0xFFFF != self.epoch & 0xFFFF || self.replayed || !self.rejoining {
                    return;
                }
                self.replayed = true;
                if let Some(p) = &mut self.pending {
                    p.replay_completed_at = Some(now);
                }
                self.emit(now, AgentEvent::ReplayCompleted);
                if self.view_mask.contains(self.cfg.node.0) {
                    // The outage was shorter than the detection window: the
                    // cluster never excluded us, so no view change is
                    // needed — we are back as soon as the state is current.
                    self.finish_rejoin(self.view_number, now, ctx);
                } else {
                    self.joining.insert(self.cfg.node.0);
                    self.begin_change(now, ctx);
                }
            }
            _ => {}
        }
    }

    fn on_restart(&mut self, now: Time, ctx: &mut ActorCtx<'_>) {
        self.log.borrow_mut().restarts.push(now);
        self.begin_rejoin(now, ctx);
    }

    /// Enters (or re-enters) the rejoin protocol from the announce step:
    /// fresh epoch, all volatile protocol state dropped. Used on a cold
    /// restart and by the self-heal path when the cluster excluded a
    /// live node.
    fn begin_rejoin(&mut self, now: Time, ctx: &mut ActorCtx<'_>) {
        self.epoch += 1;
        self.rejoining = true;
        self.have_sync = false;
        self.mask_got = vec![false; self.cfg.wire_words() as usize];
        self.replayed = false;
        self.log_tail = 0;
        self.xfer_total = None;
        self.xfer_seen = 0;
        self.xfer_seen_at_retry = 0;
        self.stall_rounds = 0;
        self.heard_joins.clear();
        self.hb_since_rejoin = MemberSet::new();
        self.xfer_got.clear();
        self.xfer_delta = false;
        self.nacked.clear();
        self.chunks_resent = 0;
        self.nack_armed = false;
        self.xfer_seen_at_nack = 0;
        self.pre_crash_view = self.view_number;
        self.pending = Some(PendingRejoin {
            restarted_at: now,
            ..PendingRejoin::default()
        });
        self.suspected_local = MemberSet::new();
        self.excluded = MemberSet::new();
        self.joining = MemberSet::new();
        self.changing = None;
        self.serving = None;
        self.last_served = None;
        self.pending_joins.clear();
        self.emit(now, AgentEvent::RejoinAnnounced);
        // Liveness first (peers resume watching us), then the join
        // announcement that triggers the state transfer — re-announced on
        // the heartbeat cadence while the transfer makes no progress, so
        // a lost JOIN or preamble cannot stall the rejoin on lossy links.
        self.broadcast(ctx, MSG_HB, 0);
        ctx.timer_after(self.cfg.heartbeat_period, hb_tag(self.epoch));
        self.broadcast(
            ctx,
            MSG_JOIN,
            join_payload(self.epoch, self.view_number, self.durable_ckpt_gen),
        );
        ctx.timer_after(
            self.cfg.heartbeat_period,
            tag(KIND_JOIN_RETRY, self.epoch & 0xFFFF),
        );
    }

    /// Total-failure bootstrap: every member restarted at once, so no
    /// live server exists and join announcements bounce between rejoining
    /// nodes forever. The lowest-numbered announcer — after two stalled
    /// retry rounds in which it heard *only* fellow announcers — installs
    /// a singleton view numbered past every view it has heard of (its own
    /// and every announcer's, so an established cluster history cannot be
    /// reused) and finishes its rejoin from durable state. The other
    /// announcers' heartbeat-cadence retries then reach a live member and
    /// take the ordinary transfer + re-admission path.
    fn bootstrap_view(&mut self, now: Time, ctx: &mut ActorCtx<'_>) {
        let heard_max = self.heard_joins.values().copied().max().unwrap_or(0);
        let target = self.view_number.max(heard_max) + 1;
        self.view_number = target;
        let mut mask = MemberSet::new();
        mask.insert(self.cfg.node.0);
        self.view_mask = mask;
        self.changing = None;
        let members = vec![self.cfg.node.0];
        {
            let mut log = self.log.borrow_mut();
            log.views.push(View {
                number: target,
                members: members.clone(),
                installed_at: now,
            });
            if self.primary != self.cfg.node.0 {
                self.primary = self.cfg.node.0;
                log.primary_changes.push((self.primary, now));
            }
        }
        self.emit(
            now,
            AgentEvent::ViewInstalled {
                number: target,
                members,
            },
        );
        self.finish_rejoin(target, now, ctx);
    }
}

impl NetActor for NodeAgent {
    fn node(&self) -> NodeId {
        self.cfg.node
    }

    fn label(&self) -> &'static str {
        AGENT_LABEL
    }

    fn handle(&mut self, now: Time, ev: ActorEvent, ctx: &mut ActorCtx<'_>) {
        match ev {
            ActorEvent::Start => {
                self.log.borrow_mut().views.push(View {
                    number: 0,
                    members: self.view_mask.to_vec(),
                    installed_at: now,
                });
                self.emit(
                    now,
                    AgentEvent::ViewInstalled {
                        number: 0,
                        members: self.view_mask.to_vec(),
                    },
                );
                // First heartbeat immediately, then every H.
                self.broadcast(ctx, MSG_HB, 0);
                ctx.timer_after(self.cfg.heartbeat_period, hb_tag(self.epoch));
                // Until the first heartbeat arrives, a peer is treated as
                // heard-from at time zero.
                let timeout = self.cfg.timeout(ctx.max_delay());
                for peer in 0..self.cfg.nodes {
                    if NodeId(peer) != self.cfg.node {
                        ctx.timer_at(now + timeout, timeout_tag(peer, 0));
                    }
                }
            }
            ActorEvent::Restart => self.on_restart(now, ctx),
            ActorEvent::Timer { tag } => self.on_timer(now, tag, ctx),
            ActorEvent::Message { from, tag, payload } => match tag {
                MSG_HB => {
                    let p = from.0;
                    self.log.borrow_mut().heartbeats_seen += 1;
                    self.gen[p as usize] += 1;
                    if self.rejoining {
                        self.hb_since_rejoin.insert(p);
                    }
                    ctx.timer_at(
                        now + self.cfg.timeout(ctx.max_delay()),
                        timeout_tag(p, self.gen[p as usize]),
                    );
                }
                MSG_VC => {
                    if self.rejoining && !self.have_sync {
                        return; // no view knowledge at all yet: sit it out
                    }
                    let (target, widx, bits) = vc_decode(payload);
                    if target > self.view_number + 1 && !self.rejoining {
                        // A flood for a view beyond our next one proves we
                        // missed at least one install while believing
                        // ourselves a member (our restart raced an
                        // exclusion flood): self-heal by re-entering the
                        // rejoin protocol rather than dropping floods
                        // forever.
                        self.begin_rejoin(now, ctx);
                        return;
                    }
                    if target != self.view_number + 1 || widx >= self.cfg.wire_words() {
                        return; // stale, too far ahead mid-rejoin, or junk
                    }
                    // `None` = echo nothing, `Some(None)` = join the
                    // change, `Some(Some(word))` = echo the merged word.
                    let action: Option<Option<(u32, u32)>> = match &mut self.changing {
                        Some(c) if c.target == target => {
                            if c.proposal.merge_wire_word(widx, bits, &self.view_mask) {
                                // Echo-on-change: the merge learned
                                // something the peers may not have.
                                Some(Some((widx, c.proposal.wire_word(widx))))
                            } else {
                                None
                            }
                        }
                        Some(_) => None,
                        None => {
                            // Adopt the exclusions and joins this word
                            // reveals and join the flood with our own
                            // knowledge folded in.
                            let vm = self.view_mask.wire_word(widx);
                            self.excluded
                                .set_wire_word(widx, self.excluded.wire_word(widx) | (vm & !bits));
                            self.joining
                                .set_wire_word(widx, self.joining.wire_word(widx) | (bits & !vm));
                            Some(None)
                        }
                    };
                    match action {
                        Some(Some(word)) if self.cfg.vc_delta_multicast => {
                            self.send_proposal_words(ctx, target, &[word]);
                        }
                        Some(None) => self.begin_change(now, ctx),
                        _ => {}
                    }
                }
                MSG_JOIN => {
                    let (epoch, view, ckpt_gen) = join_decode(payload);
                    if self.rejoining {
                        // Our own view_mask is stale, so this must not
                        // enter pending_joins (the drain could wrongly
                        // self-select as server). Record the announcer for
                        // the total-failure bootstrap; once some node is
                        // live again, the announcer's heartbeat-cadence
                        // retries take the ordinary path below.
                        self.heard_joins.insert(from.0, view);
                    } else {
                        self.handle_join(from.0, epoch, ckpt_gen, now, ctx);
                    }
                }
                MSG_SYNC | MSG_DSYNC if self.rejoining => {
                    let (epoch, log_tail, view) = sync_decode(payload);
                    if epoch != self.epoch & 0xFFFF {
                        return;
                    }
                    // A preamble for a *newer* view supersedes the transfer in
                    // progress (the server aborts and re-serves when a
                    // view change invalidates the mask it shipped):
                    // restart the chunk count — and the membership words —
                    // for the new stream. The first preamble must not
                    // reset: chunk 0 (or a mask word) may legitimately
                    // arrive before it.
                    if self.have_sync && view != self.view_number {
                        self.xfer_seen = 0;
                        self.xfer_total = None;
                        self.xfer_got.clear();
                        self.nacked.clear();
                        self.mask_got = vec![false; self.cfg.wire_words() as usize];
                    }
                    self.have_sync = true;
                    self.stall_rounds = 0;
                    self.xfer_delta = tag == MSG_DSYNC;
                    self.log_tail = log_tail;
                    self.view_number = view;
                    self.maybe_start_replay(now, ctx);
                }
                MSG_MASK if self.rejoining => {
                    let (epoch, widx, bits) = mask_decode(payload);
                    if epoch != self.epoch & 0xFFFF || widx >= self.cfg.wire_words() {
                        return;
                    }
                    self.view_mask.set_wire_word(widx, bits);
                    self.mask_got[widx as usize] = true;
                    self.maybe_start_replay(now, ctx);
                }
                MSG_CKPT if self.rejoining => {
                    let (epoch, seq, total) = ckpt_decode(payload);
                    if epoch != self.epoch & 0xFFFF {
                        return;
                    }
                    if self.xfer_seen == 0 {
                        if let Some(p) = &mut self.pending {
                            p.transfer_started_at = Some(now);
                        }
                        self.emit(now, AgentEvent::TransferStarted);
                    }
                    self.xfer_from = from.0;
                    self.xfer_total = Some(total);
                    if self.xfer_got.insert(seq) {
                        self.xfer_seen = self.xfer_got.len() as u64;
                        if self.nacked.remove(&seq) {
                            self.chunks_resent += 1;
                        }
                        self.emit(
                            now,
                            AgentEvent::TransferProgress {
                                chunks: self.xfer_seen,
                            },
                        );
                    }
                    self.arm_nack(ctx);
                    self.maybe_start_replay(now, ctx);
                }
                MSG_NACK if !self.rejoining => {
                    let (epoch, seq) = nack_decode(payload);
                    // The stream may still be pacing or may have finished:
                    // either way, resend exactly the requested chunk of
                    // the joiner's stream without disturbing the pacing.
                    let stream = self
                        .serving
                        .as_ref()
                        .into_iter()
                        .chain(self.last_served.as_ref())
                        .find(|t| t.to == from.0 && t.to_epoch & 0xFFFF == epoch && seq < t.total);
                    if let Some(t) = stream {
                        ctx.send(
                            ActorId(t.to),
                            NodeId(t.to),
                            MSG_CKPT,
                            ckpt_payload(t.to_epoch, seq, t.total),
                        );
                        self.log.borrow_mut().chunks_sent += 1;
                    }
                }
                _ => {}
            },
            // Control-plane wakes carry no agent-level meaning.
            ActorEvent::Notify { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hades_sim::{ActorEngine, FaultPlan, LinkConfig, Network, SimRng};

    fn us(n: u64) -> Duration {
        Duration::from_micros(n)
    }

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    fn cfg(node: u32, nodes: u32) -> AgentConfig {
        AgentConfig {
            node: NodeId(node),
            nodes,
            heartbeat_period: ms(1),
            clock_precision: us(10),
            f: 1,
            recovery: RecoveryConfig::default(),
            vc_delta_multicast: true,
            vc_attempts: 1,
        }
    }

    fn cluster(
        nodes: u32,
        plan: FaultPlan,
        seed: u64,
        horizon: Duration,
    ) -> Vec<Rc<RefCell<AgentLog>>> {
        let net = Network::homogeneous(
            nodes,
            LinkConfig::reliable(us(10), us(40)),
            SimRng::seed_from(seed),
        )
        .with_fault_plan(plan);
        let mut rt = ActorEngine::new(net);
        let logs: Vec<_> = (0..nodes)
            .map(|n| {
                let (agent, log) = NodeAgent::new(cfg(n, nodes));
                rt.add_actor(Box::new(agent));
                log
            })
            .collect();
        rt.run(Time::ZERO + horizon);
        logs
    }

    #[test]
    fn healthy_cluster_stays_in_view_zero() {
        let logs = cluster(4, FaultPlan::new(), 1, ms(20));
        for log in &logs {
            let log = log.borrow();
            assert!(log.suspicions.is_empty(), "no false suspicions");
            assert_eq!(log.views.len(), 1);
            assert_eq!(log.primary(), Some(0));
            assert!(log.heartbeats_seen > 0);
        }
    }

    #[test]
    fn crash_is_detected_by_all_survivors_within_bound() {
        let crash = Time::ZERO + ms(5);
        let plan = FaultPlan::new().crash_at(NodeId(2), crash);
        let logs = cluster(4, plan, 2, ms(20));
        let bound = cfg(0, 4).detection_bound(us(40));
        for n in [0usize, 1, 3] {
            let log = logs[n].borrow();
            assert_eq!(log.suspicions.len(), 1, "node {n} suspects exactly once");
            let (suspect, at) = log.suspicions[0];
            assert_eq!(suspect, 2);
            assert!(at >= crash, "no anticipation");
            assert!(
                at - crash <= bound,
                "latency {} > bound {bound}",
                at - crash
            );
        }
        assert!(
            logs[2].borrow().suspicions.is_empty(),
            "the dead observe nothing"
        );
    }

    #[test]
    fn survivors_agree_on_the_view_sequence() {
        let plan = FaultPlan::new().crash_at(NodeId(2), Time::ZERO + ms(5));
        let logs = cluster(4, plan, 3, ms(20));
        let reference = logs[0].borrow().view_members();
        assert_eq!(reference.len(), 2);
        assert_eq!(reference[1], (1, vec![0, 1, 3]));
        for n in [1usize, 3] {
            assert_eq!(
                logs[n].borrow().view_members(),
                reference,
                "node {n} agrees"
            );
        }
    }

    #[test]
    fn primary_crash_promotes_next_member() {
        let crash = Time::ZERO + ms(5);
        let plan = FaultPlan::new().crash_at(NodeId(0), crash);
        let logs = cluster(4, plan, 4, ms(20));
        for n in [1usize, 2, 3] {
            let log = logs[n].borrow();
            assert_eq!(log.primary(), Some(1), "node {n} promoted node 1");
            assert_eq!(log.primary_changes.len(), 1);
            let (new_primary, at) = log.primary_changes[0];
            assert_eq!(new_primary, 1);
            let ceiling = cfg(0, 4).detection_bound(us(40)) + cfg(0, 4).agreement_bound(us(40));
            assert!(at - crash <= ceiling, "takeover {} > {ceiling}", at - crash);
        }
    }

    #[test]
    fn two_separated_crashes_install_two_views() {
        let plan = FaultPlan::new()
            .crash_at(NodeId(3), Time::ZERO + ms(4))
            .crash_at(NodeId(1), Time::ZERO + ms(12));
        let logs = cluster(4, plan, 5, ms(25));
        let reference = logs[0].borrow().view_members();
        assert_eq!(
            reference,
            vec![(0, vec![0, 1, 2, 3]), (1, vec![0, 1, 2]), (2, vec![0, 2]),]
        );
        assert_eq!(logs[2].borrow().view_members(), reference);
    }

    #[test]
    fn deterministic_given_seed() {
        let mk = || {
            let plan = FaultPlan::new().crash_at(NodeId(1), Time::ZERO + ms(7));
            let logs = cluster(5, plan, 77, ms(25));
            logs.iter().map(|l| l.borrow().clone()).collect::<Vec<_>>()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn ninety_six_node_cluster_agrees_beyond_the_old_mask_cap() {
        // 96 nodes take three 32-bit wire words per membership — the
        // scenario the packed-u64 protocol (≤ 48 nodes) could not even
        // build. One crash: every survivor must agree on the two-view
        // sequence, with the suspect excluded.
        let crash = Time::ZERO + ms(4);
        let plan = FaultPlan::new().crash_at(NodeId(70), crash);
        let logs = cluster(96, plan, 9, ms(12));
        let reference = logs[0].borrow().view_members();
        assert_eq!(reference.len(), 2, "exactly one view change");
        let expected: Vec<u32> = (0..96).filter(|n| *n != 70).collect();
        assert_eq!(reference[1].1, expected);
        for n in (0..96usize).filter(|n| *n != 70) {
            assert_eq!(logs[n].borrow().view_members(), reference, "node {n}");
        }
    }

    #[test]
    fn restart_runs_the_full_rejoin_protocol() {
        let crash = Time::ZERO + ms(5);
        let restart = Time::ZERO + ms(12);
        let plan = FaultPlan::new().crash_window(NodeId(2), crash, restart);
        let logs = cluster(4, plan, 6, ms(30));

        let joiner = logs[2].borrow();
        assert_eq!(joiner.restarts, vec![restart]);
        assert_eq!(joiner.rejoins.len(), 1, "exactly one rejoin cycle");
        let r = joiner.rejoins[0];
        assert_eq!(r.node, 2);
        assert_eq!(r.restarted_at, restart);
        assert!(r.transfer_started_at > restart);
        assert!(r.transfer_completed_at >= r.transfer_started_at);
        assert!(r.replay_completed_at >= r.transfer_completed_at);
        assert!(r.readmitted_at > r.replay_completed_at);
        assert!(r.chunks >= 1, "the snapshot shipped in chunks");
        assert!(r.bytes >= RecoveryConfig::default().checkpoint_bytes);
        assert_eq!(r.views_traversed, 2, "out for removal + back for rejoin");

        // Every survivor converges on a final view containing node 2 again.
        for n in [0usize, 1, 3] {
            let log = logs[n].borrow();
            let last = log.views.last().unwrap();
            assert_eq!(last.members, vec![0, 1, 2, 3], "node {n} readmitted 2");
            assert_eq!(last.number, 2);
        }
        // The primary (node 0) served the transfer.
        assert_eq!(logs[0].borrow().transfers_served, 1);
        assert!(logs[0].borrow().chunks_sent >= 1);
        assert_eq!(logs[1].borrow().transfers_served, 0);
    }

    #[test]
    fn rejoin_latency_within_analytic_bound() {
        let plan =
            FaultPlan::new().crash_window(NodeId(1), Time::ZERO + ms(4), Time::ZERO + ms(11));
        let logs = cluster(5, plan, 9, ms(30));
        let joiner = logs[1].borrow();
        assert_eq!(joiner.rejoins.len(), 1);
        let bound = cfg(1, 5).rejoin_bound(us(40));
        let latency = joiner.rejoins[0].latency();
        assert!(latency <= bound, "rejoin {latency} > bound {bound}");
    }

    #[test]
    fn restarted_primary_is_served_by_next_member() {
        // Node 0 is the primary; it crashes, node 1 takes over, and when
        // node 0 returns it is node 1 (the new lowest member) that serves
        // the checkpoint — and node 0 comes back as a plain member but
        // regains the primary role (lowest id).
        let plan =
            FaultPlan::new().crash_window(NodeId(0), Time::ZERO + ms(5), Time::ZERO + ms(13));
        let logs = cluster(4, plan, 11, ms(32));
        let joiner = logs[0].borrow();
        assert_eq!(joiner.rejoins.len(), 1);
        assert_eq!(logs[1].borrow().transfers_served, 1, "new primary served");
        let survivor = logs[2].borrow();
        let last = survivor.views.last().unwrap();
        assert_eq!(last.members, vec![0, 1, 2, 3]);
        assert_eq!(survivor.primary(), Some(0), "primary role returns with 0");
    }

    #[test]
    fn restart_racing_the_exclusion_flood_still_rejoins() {
        // With H = 1 ms and δmax = 40 µs, survivors suspect ~1.05 ms after
        // the last heard heartbeat and install the exclusion view ~100 µs
        // later. A restart at crash + 150 µs lands inside (or just around)
        // that agreement window: the join must not be answered with the
        // pre-exclusion membership (fast-path trap), and the node must end
        // up re-admitted on every survivor regardless of the exact
        // interleaving.
        // Suspicions fire ~50-90 µs after the crash and the exclusion
        // flood installs ~100 µs later, so this sweep brackets the whole
        // danger zone: join-before-suspicion, join-during-flood and
        // join-after-install, under several delay draws.
        for offset_us in [30u64, 50, 60, 70, 80, 100, 150, 200, 400, 1_200] {
            for seed in 0..3u64 {
                let crash = Time::ZERO + ms(5);
                let restart = crash + us(offset_us);
                let plan = FaultPlan::new().crash_window(NodeId(2), crash, restart);
                let logs = cluster(4, plan, 31 + seed * 1000 + offset_us, ms(30));
                let joiner = logs[2].borrow();
                assert!(
                    !joiner.rejoins.is_empty(),
                    "offset {offset_us}µs seed {seed}: the joiner completed a rejoin"
                );
                for n in [0usize, 1, 3] {
                    let log = logs[n].borrow();
                    assert_eq!(
                        log.views.last().unwrap().members,
                        vec![0, 1, 2, 3],
                        "offset {offset_us}µs seed {seed}: node {n} ends with node 2 in the view"
                    );
                }
            }
        }
    }

    #[test]
    fn join_survives_the_perceived_server_being_down() {
        // Node 2 crashes at 10 ms; node 0 — the lowest member, i.e. the
        // server every survivor would designate — crashes at 20 ms; node
        // 2 restarts while node 0's exclusion is still undetected or in
        // flight. The join request must stay queued on the other
        // survivors and be served by the *new* lowest member once node
        // 0's exclusion installs, not silently dropped.
        for offset_us in [50u64, 100, 200, 800, 2_000] {
            let plan = FaultPlan::new()
                .crash_window(
                    NodeId(2),
                    Time::ZERO + ms(10),
                    Time::ZERO + ms(20) + us(offset_us),
                )
                .crash_at(NodeId(0), Time::ZERO + ms(20));
            let logs = cluster(4, plan, 57 + offset_us, ms(60));
            let joiner = logs[2].borrow();
            assert_eq!(
                joiner.rejoins.len(),
                1,
                "offset {offset_us}µs: the rejoin completed"
            );
            assert_eq!(
                logs[1].borrow().transfers_served,
                1,
                "offset {offset_us}µs: the new lowest member served"
            );
            for n in [1usize, 3] {
                assert_eq!(
                    logs[n].borrow().views.last().unwrap().members,
                    vec![1, 2, 3],
                    "offset {offset_us}µs: node {n} re-admitted node 2"
                );
            }
        }
    }

    #[test]
    fn repeated_crash_restart_cycles_converge() {
        let plan = FaultPlan::new()
            .crash_window(NodeId(3), Time::ZERO + ms(4), Time::ZERO + ms(10))
            .crash_window(NodeId(3), Time::ZERO + ms(22), Time::ZERO + ms(28));
        let logs = cluster(4, plan, 13, ms(48));
        let joiner = logs[3].borrow();
        assert_eq!(joiner.restarts.len(), 2);
        assert_eq!(joiner.rejoins.len(), 2, "both cycles completed");
        for n in [0usize, 1, 2] {
            let log = logs[n].borrow();
            assert_eq!(
                log.views.last().unwrap().members,
                vec![0, 1, 2, 3],
                "node {n} ends with everyone back"
            );
        }
    }

    #[test]
    fn rejoin_completes_on_lossy_links_via_join_retries() {
        // 10% per-message omissions: the single-shot JOIN (or the
        // transfer preamble) is regularly lost, which before the
        // heartbeat-cadence retransmission stalled the rejoin until the
        // horizon. A loss-tolerant timeout (γ floor raised) keeps the
        // detector from drowning the run in false suspicions, the flood
        // transport gives the view agreement its own redundancy, and a
        // small checkpoint keeps the re-served stream short.
        let mut completed_retries = 0u64;
        for seed in 0..5u64 {
            let lossy_cfg = |node: u32| AgentConfig {
                node: NodeId(node),
                nodes: 4,
                heartbeat_period: ms(1),
                clock_precision: us(3_500),
                f: 1,
                recovery: RecoveryConfig {
                    checkpoint_bytes: 2_000,
                    ..RecoveryConfig::default()
                },
                vc_delta_multicast: false,
                vc_attempts: 1,
            };
            let plan =
                FaultPlan::new().crash_window(NodeId(2), Time::ZERO + ms(8), Time::ZERO + ms(20));
            let net = Network::homogeneous(
                4,
                LinkConfig::reliable(us(10), us(40)).with_omissions(100),
                SimRng::seed_from(900 + seed),
            )
            .with_fault_plan(plan);
            let mut rt = ActorEngine::new(net);
            let logs: Vec<_> = (0..4)
                .map(|n| {
                    let (agent, log) = NodeAgent::new(lossy_cfg(n));
                    rt.add_actor(Box::new(agent));
                    log
                })
                .collect();
            rt.run(Time::ZERO + ms(80));
            let joiner = logs[2].borrow();
            assert!(
                !joiner.rejoins.is_empty(),
                "seed {seed}: the rejoin must not stall on a lossy link"
            );
            completed_retries += joiner.join_retries;
        }
        assert!(
            completed_retries > 0,
            "at least one run exercised the retransmission path"
        );
    }

    #[test]
    fn nack_recovers_lost_chunks_by_selective_retransmission() {
        // 10% per-message omissions over a ~47-chunk transfer: several
        // chunks are lost in flight on essentially every run. The
        // per-chunk gap detector NACKs exactly the missing sequence
        // numbers and the server resends them — the rejoin completes
        // without re-serving the whole stream from scratch.
        let mut resent_total = 0u64;
        for seed in 0..5u64 {
            let lossy_cfg = |node: u32| AgentConfig {
                node: NodeId(node),
                nodes: 4,
                heartbeat_period: ms(1),
                clock_precision: us(3_500),
                f: 1,
                recovery: RecoveryConfig::default(),
                vc_delta_multicast: false,
                vc_attempts: 1,
            };
            let plan =
                FaultPlan::new().crash_window(NodeId(2), Time::ZERO + ms(8), Time::ZERO + ms(20));
            let net = Network::homogeneous(
                4,
                LinkConfig::reliable(us(10), us(40)).with_omissions(100),
                SimRng::seed_from(2_400 + seed),
            )
            .with_fault_plan(plan);
            let mut rt = ActorEngine::new(net);
            let logs: Vec<_> = (0..4)
                .map(|n| {
                    let (agent, log) = NodeAgent::new(lossy_cfg(n));
                    rt.add_actor(Box::new(agent));
                    log
                })
                .collect();
            rt.run(Time::ZERO + ms(80));
            let joiner = logs[2].borrow();
            assert!(
                !joiner.rejoins.is_empty(),
                "seed {seed}: the rejoin completed despite chunk losses"
            );
            for r in &joiner.rejoins {
                assert!(
                    r.chunks_resent <= r.chunks,
                    "seed {seed}: resends are a subset of the received chunks"
                );
                resent_total += r.chunks_resent;
            }
        }
        assert!(
            resent_total > 0,
            "at least one run recovered chunks through NACKs"
        );
    }

    #[test]
    fn short_outage_ships_a_delta_transfer() {
        // With delta transfers on, a 2 ms outage inside one checkpoint
        // interval rejoins on the log tail alone: the joiner's durable
        // cursor (advanced by its own heartbeat ticks before the crash)
        // already covers the snapshot the server would ship.
        let run = |delta_on: bool| {
            let mk_cfg = |node: u32| AgentConfig {
                recovery: RecoveryConfig {
                    delta_transfers: delta_on,
                    ..RecoveryConfig::default()
                },
                ..cfg(node, 4)
            };
            let plan =
                FaultPlan::new().crash_window(NodeId(2), Time::ZERO + ms(22), Time::ZERO + ms(24));
            let net = Network::homogeneous(
                4,
                LinkConfig::reliable(us(10), us(40)),
                SimRng::seed_from(41),
            )
            .with_fault_plan(plan);
            let mut rt = ActorEngine::new(net);
            let logs: Vec<_> = (0..4)
                .map(|n| {
                    let (agent, log) = NodeAgent::new(mk_cfg(n));
                    rt.add_actor(Box::new(agent));
                    log
                })
                .collect();
            rt.run(Time::ZERO + ms(50));
            let joiner = logs[2].borrow();
            assert_eq!(joiner.rejoins.len(), 1, "delta_on={delta_on}");
            joiner.rejoins[0]
        };
        let delta = run(true);
        let full = run(false);
        assert!(delta.delta, "the short outage took the delta path");
        assert!(!full.delta, "the flag off forces a full transfer");
        assert!(
            delta.bytes < full.bytes,
            "delta shipped {} bytes, full {}",
            delta.bytes,
            full.bytes
        );
        assert!(
            delta.bytes < RecoveryConfig::default().checkpoint_bytes,
            "no snapshot bytes travelled"
        );
        assert!(delta.chunks < full.chunks, "and correspondingly few chunks");
    }

    #[test]
    fn long_outage_falls_back_to_a_full_transfer() {
        // An outage crossing a checkpoint boundary leaves the joiner's
        // durable cursor behind the server's retention window: the delta
        // flag alone must not shrink that transfer.
        let mk_cfg = |node: u32| AgentConfig {
            recovery: RecoveryConfig {
                delta_transfers: true,
                ..RecoveryConfig::default()
            },
            ..cfg(node, 4)
        };
        let plan =
            FaultPlan::new().crash_window(NodeId(2), Time::ZERO + ms(15), Time::ZERO + ms(45));
        let net = Network::homogeneous(
            4,
            LinkConfig::reliable(us(10), us(40)),
            SimRng::seed_from(43),
        )
        .with_fault_plan(plan);
        let mut rt = ActorEngine::new(net);
        let logs: Vec<_> = (0..4)
            .map(|n| {
                let (agent, log) = NodeAgent::new(mk_cfg(n));
                rt.add_actor(Box::new(agent));
                log
            })
            .collect();
        rt.run(Time::ZERO + ms(70));
        let joiner = logs[2].borrow();
        assert_eq!(joiner.rejoins.len(), 1);
        let r = joiner.rejoins[0];
        assert!(!r.delta, "stale cursor: full transfer");
        assert!(r.bytes >= RecoveryConfig::default().checkpoint_bytes);
    }

    #[test]
    fn delta_multicast_vc_survives_lossy_links_with_an_attempt_budget() {
        // 10% per-copy omissions with the *cheap* Δ-multicast view-change
        // transport: single-shot proposals regularly lose copies, and a
        // node that never hears any proposal for the next view cannot
        // install it — survivors drift apart. A per-copy budget of 4
        // masks the loss (0.1⁴ residual), so every survivor installs the
        // same exclusion view; this is the transport-level analogue of
        // the `ReplicaGroup` per-copy retry pattern.
        for seed in 0..5u64 {
            let lossy_cfg = |node: u32| AgentConfig {
                node: NodeId(node),
                nodes: 5,
                heartbeat_period: ms(1),
                clock_precision: us(3_500),
                f: 1,
                recovery: RecoveryConfig::default(),
                vc_delta_multicast: true,
                vc_attempts: 4,
            };
            let plan = FaultPlan::new().crash_at(NodeId(2), Time::ZERO + ms(6));
            let net = Network::homogeneous(
                5,
                LinkConfig::reliable(us(10), us(40)).with_omissions(100),
                SimRng::seed_from(1_700 + seed),
            )
            .with_fault_plan(plan);
            let mut rt = ActorEngine::new(net);
            let logs: Vec<_> = (0..5)
                .map(|n| {
                    let (agent, log) = NodeAgent::new(lossy_cfg(n));
                    rt.add_actor(Box::new(agent));
                    log
                })
                .collect();
            rt.run(Time::ZERO + ms(40));
            let reference = logs[0].borrow().view_members();
            assert_eq!(
                reference.last().map(|(_, m)| m.clone()),
                Some(vec![0, 1, 3, 4]),
                "seed {seed}: the exclusion view installed"
            );
            for n in [1usize, 3, 4] {
                assert_eq!(
                    logs[n].borrow().view_members(),
                    reference,
                    "seed {seed}: node {n} agrees despite omissions"
                );
            }
        }
    }

    #[test]
    fn deterministic_rejoin_given_seed() {
        let mk = || {
            let plan =
                FaultPlan::new().crash_window(NodeId(2), Time::ZERO + ms(5), Time::ZERO + ms(12));
            let logs = cluster(4, plan, 21, ms(30));
            logs.iter().map(|l| l.borrow().clone()).collect::<Vec<_>>()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn transfer_server_crash_mid_stream_fails_over() {
        // Node 2 restarts at 13 ms and node 0 (the lowest survivor, so
        // the designated server) starts the ~47-chunk, ~1 ms stream —
        // then crashes 500 µs in. The join must not stall until the next
        // failure-free window: the request is remembered on every live
        // node, node 0's exclusion view makes node 1 the server, and the
        // superseding preamble (newer view) resets the joiner's stream
        // so node 1's re-serve completes the rejoin.
        let plan = FaultPlan::new()
            .crash_window(NodeId(2), Time::ZERO + ms(5), Time::ZERO + ms(13))
            .crash_at(NodeId(0), Time::ZERO + ms(13) + us(500));
        let logs = cluster(4, plan, 17, ms(40));
        let joiner = logs[2].borrow();
        assert_eq!(joiner.rejoins.len(), 1, "the rejoin completed");
        assert!(
            joiner.rejoins[0].readmitted_at > Time::ZERO + ms(13) + us(500),
            "re-admission happened after the server's crash"
        );
        assert_eq!(logs[0].borrow().transfers_served, 1, "node 0 started");
        assert_eq!(logs[1].borrow().transfers_served, 1, "node 1 re-served");
        for n in [1usize, 3] {
            assert_eq!(
                logs[n].borrow().views.last().unwrap().members,
                vec![1, 2, 3],
                "node {n} excluded the dead server and re-admitted node 2"
            );
        }
    }

    #[test]
    fn total_failure_bootstraps_and_readmits_everyone() {
        // Every member crashes at once and restarts at once: no live
        // server exists and every JOIN lands on a fellow rejoiner. The
        // lowest announcer (node 0) must bootstrap a singleton view after
        // two stalled retry rounds and serve the others back in — the
        // deadlock that previously stalled all four until the horizon.
        let mut plan = FaultPlan::new();
        for n in 0..4 {
            plan = plan.crash_window(NodeId(n), Time::ZERO + ms(5), Time::ZERO + ms(15));
        }
        let logs = cluster(4, plan, 23, ms(60));
        let boot = logs[0].borrow();
        assert_eq!(boot.rejoins.len(), 1, "node 0 completed its rejoin");
        assert!(
            boot.views.iter().any(|v| v.members == vec![0]),
            "node 0 bootstrapped a singleton view"
        );
        for (n, cell) in logs.iter().enumerate() {
            let log = cell.borrow();
            assert_eq!(log.rejoins.len(), 1, "node {n} rejoined");
            assert_eq!(
                log.views.last().unwrap().members,
                vec![0, 1, 2, 3],
                "node {n} ends with full membership"
            );
        }
    }

    #[test]
    fn staggered_total_failure_recovers_after_last_restart() {
        // The graduated `serverless-stall` corpus shape: node 0 is out
        // [15, 35) ms; nodes 1–3 crash at 34 ms (before node 0's
        // announcements can be served) and return at 70 ms. While alone,
        // node 0 hears no announcer and must NOT bootstrap (an
        // established cluster may merely be partitioned away); once the
        // others announce, it is the lowest announcer hearing only
        // announcers, bootstraps past every heard view, and re-serves the
        // cluster before the horizon.
        let plan = FaultPlan::new()
            .crash_window(NodeId(0), Time::ZERO + ms(15), Time::ZERO + ms(35))
            .crash_window(NodeId(1), Time::ZERO + ms(34), Time::ZERO + ms(70))
            .crash_window(NodeId(2), Time::ZERO + ms(34), Time::ZERO + ms(70))
            .crash_window(NodeId(3), Time::ZERO + ms(34), Time::ZERO + ms(70));
        let logs = cluster(4, plan, 7, ms(100));
        let boot = logs[0].borrow();
        let singleton = boot
            .views
            .iter()
            .find(|v| v.members == vec![0])
            .expect("node 0 bootstrapped a singleton view");
        assert!(
            singleton.installed_at >= Time::ZERO + ms(70),
            "no bootstrap while alone: the others announced first"
        );
        assert!(
            singleton.number >= 2,
            "the bootstrap view is numbered past the heard history"
        );
        for (n, cell) in logs.iter().enumerate() {
            let log = cell.borrow();
            assert!(!log.rejoins.is_empty(), "node {n} rejoined");
            assert_eq!(
                log.views.last().unwrap().members,
                vec![0, 1, 2, 3],
                "node {n} ends with full membership"
            );
        }
    }
}
