//! Engine-driven service actors: the per-node middleware agent.
//!
//! The sibling modules ([`crate::detect`], [`crate::membership`],
//! [`crate::replication`]) are *self-contained* protocol simulations: each
//! owns its whole timeline and is convenient for studying one service in
//! isolation. A cluster runtime needs the same protocols as **actors** on
//! a shared engine, interleaved with the dispatcher and with each other —
//! the composition the paper deploys on every node.
//!
//! [`NodeAgent`] is that composition for one node. It runs three layers in
//! one state machine:
//!
//! * **crash detection** — emits heartbeats every `H` to all peers and
//!   suspects a peer whose silence exceeds `T₀ = H + δmax + γ` (the
//!   perfect-detector timeout of [`crate::detect`]); detection happens
//!   within [`crate::DetectorConfig::detection_bound`] of the crash;
//! * **membership** — on suspicion it floods a view-change proposal
//!   (`f + 1` rounds, FloodSet-style, as in [`crate::consensus`]) and
//!   installs the agreed view at a bounded time after the first round;
//! * **passive replication management** — the lowest-numbered member of
//!   the current view is the primary; a view change that removes the
//!   primary promotes the next member, which is the takeover moment of
//!   passive/semi-active replication ([`crate::replication`]).
//!
//! Every externally visible transition is appended to a shared
//! [`AgentLog`] the embedding runtime reads back after the run. The agent
//! assumes crashes are separated by more than one detection + agreement
//! window (the paper's bounded-failure model); overlapping failures keep
//! safety of the masks but may skip view numbers on some nodes.

use crate::membership::View;
use hades_sim::mux::{ActorCtx, ActorEvent, NetActor};
use hades_sim::NodeId;
use hades_time::{Duration, Time};
use std::cell::RefCell;
use std::rc::Rc;

/// Message kind: heartbeat.
const MSG_HB: u64 = 1;
/// Message kind: view-change proposal (payload = view number + mask).
const MSG_VC: u64 = 2;

/// Timer kinds (upper bits of the tag).
const TAG_HB_TICK: u64 = 1 << 60;
const TAG_TIMEOUT: u64 = 2 << 60;
const TAG_ROUND: u64 = 3 << 60;
const TAG_DECIDE: u64 = 4 << 60;

fn timeout_tag(peer: u32, gen: u32) -> u64 {
    TAG_TIMEOUT | ((peer as u64) << 32) | gen as u64
}

fn round_tag(target: u32, round: u32) -> u64 {
    TAG_ROUND | ((target as u64) << 16) | round as u64
}

fn vc_payload(target: u32, mask: u64) -> u64 {
    ((target as u64) << 48) | mask
}

fn vc_decode(payload: u64) -> (u32, u64) {
    ((payload >> 48) as u32, payload & ((1 << 48) - 1))
}

/// Static configuration of one node's agent.
#[derive(Debug, Clone, Copy)]
pub struct AgentConfig {
    /// The node this agent serves.
    pub node: NodeId,
    /// Cluster size; agents are assumed registered in node order, so the
    /// agent of node *i* has actor id *i*.
    pub nodes: u32,
    /// Heartbeat emission period `H`.
    pub heartbeat_period: Duration,
    /// Clock precision `γ` folded into the suspicion timeout.
    pub clock_precision: Duration,
    /// Crash-fault bound `f`: the view-change flood runs `f + 1` rounds.
    pub f: u32,
}

impl AgentConfig {
    /// The suspicion timeout `T₀ = H + δmax + γ`.
    pub fn timeout(&self, max_delay: Duration) -> Duration {
        self.heartbeat_period + max_delay + self.clock_precision
    }

    /// Worst-case detection latency `H + T₀`.
    pub fn detection_bound(&self, max_delay: Duration) -> Duration {
        self.heartbeat_period + self.timeout(max_delay)
    }

    /// One agreement round: `δmax + γ` plus a scheduling margin.
    pub fn round_length(&self, max_delay: Duration) -> Duration {
        max_delay + self.clock_precision + Duration::from_micros(1)
    }

    /// Bound on the time from first local suspicion to view install.
    pub fn agreement_bound(&self, max_delay: Duration) -> Duration {
        self.round_length(max_delay)
            .saturating_mul(self.f as u64 + 1)
    }
}

/// Everything one agent observed and decided, readable after the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AgentLog {
    /// The observing node.
    pub node: u32,
    /// Heartbeats received.
    pub heartbeats_seen: u64,
    /// Own suspicions: `(suspect, when)` in suspicion order.
    pub suspicions: Vec<(u32, Time)>,
    /// Installed views, starting with view 0.
    pub views: Vec<View>,
    /// Primary handovers: `(new_primary, when)` at each view install that
    /// moved the primary.
    pub primary_changes: Vec<(u32, Time)>,
}

impl AgentLog {
    fn new(node: u32) -> Self {
        AgentLog {
            node,
            heartbeats_seen: 0,
            suspicions: Vec::new(),
            views: Vec::new(),
            primary_changes: Vec::new(),
        }
    }

    /// The current primary: lowest-numbered member of the latest view.
    pub fn primary(&self) -> Option<u32> {
        self.views.last().and_then(|v| v.members.first().copied())
    }

    /// Member sequences of the installed views (for cross-node agreement
    /// checks, which must ignore the node-local install instants).
    pub fn view_members(&self) -> Vec<(u32, Vec<u32>)> {
        self.views
            .iter()
            .map(|v| (v.number, v.members.clone()))
            .collect()
    }
}

/// An in-flight view change.
#[derive(Debug, Clone, Copy)]
struct Change {
    target: u32,
    proposal: u64,
}

/// The per-node middleware agent (detector + membership + replication
/// management) as a [`NetActor`].
///
/// # Examples
///
/// Running four agents standalone on an [`hades_sim::ActorEngine`]:
///
/// ```
/// use hades_services::actors::{AgentConfig, NodeAgent};
/// use hades_sim::{ActorEngine, FaultPlan, LinkConfig, Network, NodeId, SimRng};
/// use hades_time::{Duration, Time};
///
/// let plan = FaultPlan::new().crash_at(NodeId(2), Time::ZERO + Duration::from_millis(5));
/// let net = Network::homogeneous(
///     4,
///     LinkConfig::reliable(Duration::from_micros(10), Duration::from_micros(40)),
///     SimRng::seed_from(1),
/// ).with_fault_plan(plan);
/// let mut rt = ActorEngine::new(net);
/// let logs: Vec<_> = (0..4)
///     .map(|n| {
///         let (agent, log) = NodeAgent::new(AgentConfig {
///             node: NodeId(n),
///             nodes: 4,
///             heartbeat_period: Duration::from_millis(1),
///             clock_precision: Duration::from_micros(10),
///             f: 1,
///         });
///         rt.add_actor(Box::new(agent));
///         log
///     })
///     .collect();
/// rt.run(Time::ZERO + Duration::from_millis(20));
/// let survivor = logs[0].borrow();
/// assert_eq!(survivor.views.last().unwrap().members, vec![0, 1, 3]);
/// ```
#[derive(Debug)]
pub struct NodeAgent {
    cfg: AgentConfig,
    /// Heartbeat generation per peer; a timeout fires only if no newer
    /// heartbeat bumped the generation.
    gen: Vec<u32>,
    /// Peers this agent itself suspects.
    suspected_local: u64,
    /// Union of own suspicions and exclusions adopted from peers'
    /// view-change proposals; removed from every proposal.
    excluded: u64,
    view_number: u32,
    view_mask: u64,
    primary: u32,
    changing: Option<Change>,
    log: Rc<RefCell<AgentLog>>,
}

impl NodeAgent {
    /// Creates the agent and the shared log handle the embedding runtime
    /// keeps for after-run inspection.
    ///
    /// # Panics
    ///
    /// Panics if the cluster has more than 48 nodes (membership masks are
    /// packed into the message payload) or the agent's node is out of
    /// range.
    pub fn new(cfg: AgentConfig) -> (Self, Rc<RefCell<AgentLog>>) {
        assert!(cfg.nodes <= 48, "membership masks support up to 48 nodes");
        assert!(cfg.node.0 < cfg.nodes, "agent node outside the cluster");
        let log = Rc::new(RefCell::new(AgentLog::new(cfg.node.0)));
        let agent = NodeAgent {
            cfg,
            gen: vec![0; cfg.nodes as usize],
            suspected_local: 0,
            excluded: 0,
            view_number: 0,
            view_mask: (1u64 << cfg.nodes) - 1,
            primary: 0,
            changing: None,
            log: log.clone(),
        };
        (agent, log)
    }

    fn bit(node: u32) -> u64 {
        1u64 << node
    }

    fn members_of(mask: u64, nodes: u32) -> Vec<u32> {
        (0..nodes).filter(|i| mask & Self::bit(*i) != 0).collect()
    }

    fn broadcast(&self, ctx: &mut ActorCtx<'_>, tag: u64, payload: u64) {
        for peer in 0..self.cfg.nodes {
            if NodeId(peer) != self.cfg.node {
                ctx.send(hades_sim::mux::ActorId(peer), NodeId(peer), tag, payload);
            }
        }
    }

    /// Starts a view change (or folds more exclusions into the one in
    /// flight) toward the next view without the excluded members.
    fn begin_change(&mut self, now: Time, ctx: &mut ActorCtx<'_>) {
        let proposal = self.view_mask & !self.excluded;
        match &mut self.changing {
            Some(c) => c.proposal &= proposal,
            None => {
                let target = self.view_number + 1;
                self.changing = Some(Change { target, proposal });
                self.broadcast(ctx, MSG_VC, vc_payload(target, proposal));
                let round = self.cfg.round_length(ctx.max_delay());
                for r in 1..=self.cfg.f {
                    ctx.timer_at(now + round.saturating_mul(r as u64), round_tag(target, r));
                }
                ctx.timer_at(
                    now + round.saturating_mul(self.cfg.f as u64 + 1),
                    TAG_DECIDE | target as u64,
                );
            }
        }
    }

    fn install(&mut self, target: u32, now: Time) {
        let Some(c) = self.changing else { return };
        if c.target != target {
            return;
        }
        self.view_number = target;
        self.view_mask = c.proposal;
        self.changing = None;
        let members = Self::members_of(self.view_mask, self.cfg.nodes);
        let mut log = self.log.borrow_mut();
        log.views.push(View {
            number: target,
            members: members.clone(),
            installed_at: now,
        });
        if let Some(&new_primary) = members.first() {
            if new_primary != self.primary {
                self.primary = new_primary;
                log.primary_changes.push((new_primary, now));
            }
        }
    }
}

impl NetActor for NodeAgent {
    fn node(&self) -> NodeId {
        self.cfg.node
    }

    fn handle(&mut self, now: Time, ev: ActorEvent, ctx: &mut ActorCtx<'_>) {
        match ev {
            ActorEvent::Start => {
                self.log.borrow_mut().views.push(View {
                    number: 0,
                    members: Self::members_of(self.view_mask, self.cfg.nodes),
                    installed_at: now,
                });
                // First heartbeat immediately, then every H.
                self.broadcast(ctx, MSG_HB, 0);
                ctx.timer_after(self.cfg.heartbeat_period, TAG_HB_TICK);
                // Until the first heartbeat arrives, a peer is treated as
                // heard-from at time zero.
                let timeout = self.cfg.timeout(ctx.max_delay());
                for peer in 0..self.cfg.nodes {
                    if NodeId(peer) != self.cfg.node {
                        ctx.timer_at(now + timeout, timeout_tag(peer, 0));
                    }
                }
            }
            ActorEvent::Timer { tag } if tag == TAG_HB_TICK => {
                self.broadcast(ctx, MSG_HB, 0);
                ctx.timer_after(self.cfg.heartbeat_period, TAG_HB_TICK);
            }
            ActorEvent::Message { from, tag, .. } if tag == MSG_HB => {
                let p = from.0;
                self.log.borrow_mut().heartbeats_seen += 1;
                self.gen[p as usize] += 1;
                ctx.timer_at(
                    now + self.cfg.timeout(ctx.max_delay()),
                    timeout_tag(p, self.gen[p as usize]),
                );
            }
            ActorEvent::Timer { tag } if tag & TAG_TIMEOUT != 0 && tag < TAG_ROUND => {
                let peer = ((tag >> 32) & 0x0FFF_FFFF) as u32;
                let gen = (tag & 0xFFFF_FFFF) as u32;
                if self.gen[peer as usize] != gen || self.suspected_local & Self::bit(peer) != 0 {
                    return;
                }
                self.suspected_local |= Self::bit(peer);
                self.excluded |= Self::bit(peer);
                self.log.borrow_mut().suspicions.push((peer, now));
                if self.view_mask & Self::bit(peer) != 0 {
                    self.begin_change(now, ctx);
                }
            }
            ActorEvent::Message { tag, payload, .. } if tag == MSG_VC => {
                let (target, mask) = vc_decode(payload);
                if target != self.view_number + 1 {
                    return; // stale or too far ahead
                }
                match &mut self.changing {
                    Some(c) if c.target == target => c.proposal &= mask,
                    Some(_) => {}
                    None => {
                        // Adopt the exclusions agreed by a faster peer and
                        // join the flood with our own knowledge folded in.
                        self.excluded |= self.view_mask & !mask;
                        self.begin_change(now, ctx);
                    }
                }
            }
            ActorEvent::Timer { tag } if tag & TAG_ROUND != 0 && tag < TAG_DECIDE => {
                let target = ((tag >> 16) & 0xFFFF) as u32;
                if let Some(c) = self.changing {
                    if c.target == target {
                        self.broadcast(ctx, MSG_VC, vc_payload(c.target, c.proposal));
                    }
                }
            }
            ActorEvent::Timer { tag } if tag & TAG_DECIDE != 0 => {
                self.install((tag & 0xFFFF) as u32, now);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hades_sim::{ActorEngine, FaultPlan, LinkConfig, Network, SimRng};

    fn us(n: u64) -> Duration {
        Duration::from_micros(n)
    }

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    fn cfg(node: u32, nodes: u32) -> AgentConfig {
        AgentConfig {
            node: NodeId(node),
            nodes,
            heartbeat_period: ms(1),
            clock_precision: us(10),
            f: 1,
        }
    }

    fn cluster(
        nodes: u32,
        plan: FaultPlan,
        seed: u64,
        horizon: Duration,
    ) -> Vec<Rc<RefCell<AgentLog>>> {
        let net = Network::homogeneous(
            nodes,
            LinkConfig::reliable(us(10), us(40)),
            SimRng::seed_from(seed),
        )
        .with_fault_plan(plan);
        let mut rt = ActorEngine::new(net);
        let logs: Vec<_> = (0..nodes)
            .map(|n| {
                let (agent, log) = NodeAgent::new(cfg(n, nodes));
                rt.add_actor(Box::new(agent));
                log
            })
            .collect();
        rt.run(Time::ZERO + horizon);
        logs
    }

    #[test]
    fn healthy_cluster_stays_in_view_zero() {
        let logs = cluster(4, FaultPlan::new(), 1, ms(20));
        for log in &logs {
            let log = log.borrow();
            assert!(log.suspicions.is_empty(), "no false suspicions");
            assert_eq!(log.views.len(), 1);
            assert_eq!(log.primary(), Some(0));
            assert!(log.heartbeats_seen > 0);
        }
    }

    #[test]
    fn crash_is_detected_by_all_survivors_within_bound() {
        let crash = Time::ZERO + ms(5);
        let plan = FaultPlan::new().crash_at(NodeId(2), crash);
        let logs = cluster(4, plan, 2, ms(20));
        let bound = cfg(0, 4).detection_bound(us(40));
        for n in [0usize, 1, 3] {
            let log = logs[n].borrow();
            assert_eq!(log.suspicions.len(), 1, "node {n} suspects exactly once");
            let (suspect, at) = log.suspicions[0];
            assert_eq!(suspect, 2);
            assert!(at >= crash, "no anticipation");
            assert!(
                at - crash <= bound,
                "latency {} > bound {bound}",
                at - crash
            );
        }
        assert!(
            logs[2].borrow().suspicions.is_empty(),
            "the dead observe nothing"
        );
    }

    #[test]
    fn survivors_agree_on_the_view_sequence() {
        let plan = FaultPlan::new().crash_at(NodeId(2), Time::ZERO + ms(5));
        let logs = cluster(4, plan, 3, ms(20));
        let reference = logs[0].borrow().view_members();
        assert_eq!(reference.len(), 2);
        assert_eq!(reference[1], (1, vec![0, 1, 3]));
        for n in [1usize, 3] {
            assert_eq!(
                logs[n].borrow().view_members(),
                reference,
                "node {n} agrees"
            );
        }
    }

    #[test]
    fn primary_crash_promotes_next_member() {
        let crash = Time::ZERO + ms(5);
        let plan = FaultPlan::new().crash_at(NodeId(0), crash);
        let logs = cluster(4, plan, 4, ms(20));
        for n in [1usize, 2, 3] {
            let log = logs[n].borrow();
            assert_eq!(log.primary(), Some(1), "node {n} promoted node 1");
            assert_eq!(log.primary_changes.len(), 1);
            let (new_primary, at) = log.primary_changes[0];
            assert_eq!(new_primary, 1);
            let ceiling = cfg(0, 4).detection_bound(us(40)) + cfg(0, 4).agreement_bound(us(40));
            assert!(at - crash <= ceiling, "takeover {} > {ceiling}", at - crash);
        }
    }

    #[test]
    fn two_separated_crashes_install_two_views() {
        let plan = FaultPlan::new()
            .crash_at(NodeId(3), Time::ZERO + ms(4))
            .crash_at(NodeId(1), Time::ZERO + ms(12));
        let logs = cluster(4, plan, 5, ms(25));
        let reference = logs[0].borrow().view_members();
        assert_eq!(
            reference,
            vec![(0, vec![0, 1, 2, 3]), (1, vec![0, 1, 2]), (2, vec![0, 2]),]
        );
        assert_eq!(logs[2].borrow().view_members(), reference);
    }

    #[test]
    fn deterministic_given_seed() {
        let mk = || {
            let plan = FaultPlan::new().crash_at(NodeId(1), Time::ZERO + ms(7));
            let logs = cluster(5, plan, 77, ms(25));
            logs.iter().map(|l| l.borrow().clone()).collect::<Vec<_>>()
        };
        assert_eq!(mk(), mk());
    }
}
