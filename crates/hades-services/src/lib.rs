//! # hades-services — generic robustness services (Section 2.2.1)
//!
//! The application-independent half of HADES: services exhibiting
//! reliability, timeliness and data-consistency properties shared by a
//! large spectrum of safety-critical domains. In the paper each service is
//! designed as a HEUG so its cost folds into the feasibility test; here
//! each service is a protocol simulation over the bounded-delay network of
//! `hades-sim`, with explicit worst-case bounds exposed for exactly that
//! purpose:
//!
//! * [`clocksync`] — the Lundelius–Lynch fault-tolerant clock
//!   synchronization protocol (\[LL88\]) tolerating Byzantine clocks;
//! * [`comm`] — time-bounded reliable point-to-point communication,
//!   reliable broadcast by diffusion, and Δ-protocol atomic multicast;
//! * [`detect`] — a heartbeat crash detector with bounded detection
//!   latency;
//! * [`consensus`] — synchronous flooding consensus tolerating crash
//!   faults;
//! * [`replication`] — active, passive and semi-active replication
//!   (\[Pol96\]), with measured failover behaviour;
//! * [`storage`] — persistent stable storage with atomic updates;
//! * [`depend`] — dependency tracking and orphan elimination (\[NMT97\]);
//! * [`membership`] — detector-triggered, consensus-agreed view changes;
//! * [`memberset`] — variable-length membership bitsets with a compact
//!   wire encoding (the post-`u64` representation circulated by every
//!   membership-carrying protocol, unbounded by the old 48-node cap);
//! * [`checkpoint`] — state capture with bounded-replay recovery;
//! * [`recovery`] — the crash→restart→rejoin lifecycle: sizing of
//!   checkpointed state transfer and the analytic rejoin-latency bounds;
//! * [`actors`] — the same protocols as engine-driven actors
//!   ([`actors::NodeAgent`]) for composition into a shared-engine cluster
//!   runtime (`hades-cluster`);
//! * [`group`] — replication groups over Δ-atomic multicast: the three
//!   replication styles as in-cluster actors ([`group::ReplicaGroup`])
//!   serving a client request stream on the shared network.

#![warn(missing_docs)]

pub mod actors;
pub mod checkpoint;
pub mod clocksync;
pub mod comm;
pub mod consensus;
pub mod depend;
pub mod detect;
pub mod group;
pub mod memberset;
pub mod membership;
pub mod recovery;
pub mod replication;
pub mod storage;

pub use actors::{AgentConfig, AgentEvent, AgentLog, AgentTap, NodeAgent};
pub use checkpoint::{CheckpointService, Replayable};
pub use clocksync::{ClockSyncConfig, ClockSyncRun, PrecisionReport};
pub use comm::{
    BroadcastOutcome, BroadcastSim, DeltaInbox, DeltaMulticast, P2pConfig, P2pOutcome, ReliableP2p,
};
pub use consensus::{ConsensusConfig, ConsensusOutcome, FloodConsensus};
pub use depend::DependencyTracker;
pub use detect::{DetectorConfig, DetectorOutcome, HeartbeatDetector};
pub use group::{
    FixedSchedule, GroupConfig, GroupEvent, GroupLog, GroupTap, ReplicaGroup, RequestSource,
};
pub use memberset::{MemberSet, MAX_NODES};
pub use membership::{MembershipOutcome, MembershipSim, View};
pub use recovery::{RecoveryConfig, RejoinRecord};
pub use replication::{ReplicaStyle, ReplicationOutcome, ReplicationSim};
pub use storage::{StableStore, StorageError};
