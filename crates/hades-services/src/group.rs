//! Replication groups over Δ-atomic multicast: in-cluster active,
//! semi-active and passive replication as engine-driven actors.
//!
//! [`crate::replication::ReplicationSim`] compares the three replication
//! styles of \[Pol96\] in closed form, on a private timeline. This module
//! runs the same styles **on the shared DES network**: a
//! [`ReplicaGroup`] is one member of a replicated service, client
//! requests enter through an actor-ised Δ-protocol atomic multicast
//! (the [`crate::comm::DeltaInbox`] delivery discipline of
//! [`crate::comm::DeltaMulticast`]), and the group re-binds to the agreed
//! membership view on every view change:
//!
//! * **request entry** — the *gateway* (lowest live member) timestamps
//!   request `k` at its scheduled submission tick and multicasts it to
//!   every member; each member delivers it at `ts + Δ` in `(ts, sender)`
//!   order, so all members see the same request sequence;
//! * **active** — every member executes every delivered request and
//!   emits its output (a vote); the voter suppresses all but the first
//!   copy per request, so one replica crash is masked with zero outage;
//! * **semi-active** — every member receives every request, but only the
//!   *leader* executes at delivery and emits; it multicasts the decided
//!   order to the followers, which execute in that order with their
//!   outputs suppressed. A leader crash hands leadership to the next
//!   live member, which orders (and emits) whatever was delivered but
//!   never ordered;
//! * **passive** — only the *primary* executes; every
//!   `checkpoint_every` requests it multicasts its checkpoint watermark
//!   to the backups (which buffer, but do not execute, the delivered
//!   requests). A primary crash promotes the next member, which folds
//!   its buffer up to the watermark (the checkpoint install) and
//!   replays the requests delivered since — re-emission of
//!   post-checkpoint outputs is possible and is what the duplicate
//!   counters of the report quantify.
//!
//! Membership is not re-derived by the group itself: a member follows
//! the agreed view history of the co-located [`crate::NodeAgent`]
//! (its shared [`AgentLog`]), intersected with the group's member list.
//! A member that restarts comes back cold (pending deliveries lost, its
//! service state restored from local stable storage, cf.
//! [`crate::storage`]) and holds back from leadership until its agent
//! installs a view at or after the restart — the group-level face of the
//! rejoin protocol.
//!
//! The module assumes the Δ-protocol's premises: bounded transit
//! (`δmax ≤ Δ`) and view installs synchronized within one agreement
//! round. Per-link omission failures are masked by the redundant
//! transmission budget [`GroupConfig::attempts`] (the reliable-multicast
//! substrate of the paper's "Rel. Mcast" box).

use crate::actors::AgentLog;
use crate::comm::DeltaInbox;
use crate::replication::ReplicaStyle;
use hades_sim::mux::{ActorCtx, ActorEvent, ActorId, NetActor};
use hades_sim::NodeId;
use hades_time::{Duration, Time};
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::rc::Rc;

/// Message kind: one client request, Δ-multicast by the gateway.
const GMSG_REQ: u64 = 1;
/// Message kind: the semi-active leader's decided order (seq + request).
const GMSG_ORDER: u64 = 2;
/// Message kind: an active member's output vote (request + digest).
const GMSG_VOTE: u64 = 3;
/// Message kind: passive checkpoint watermark (highest executed
/// request; the backup reconstructs the state fold from its own
/// delivery buffer, so no separate state message can race it).
const GMSG_CKPT: u64 = 4;
/// Message kind: a restarted member requests the group fold (payload =
/// its epoch) — the group-level face of the rejoin state transfer.
const GMSG_PULL: u64 = 5;
/// Message kind: catch-up snapshot, high half of the state fold
/// (payload = joiner epoch + bits 63..32).
const GMSG_SNAP_HI: u64 = 6;
/// Message kind: catch-up snapshot, low half of the state fold.
const GMSG_SNAP_LO: u64 = 7;
/// Message kind: catch-up snapshot watermark (payload = joiner epoch +
/// covered-id floor + executed count mod 4096).
const GMSG_SNAP_MARK: u64 = 8;

/// Timer kind: submission tick (every request period).
const GK_TICK: u64 = 1;
/// Timer kind: Δ-delivery instant of an accepted request.
const GK_DELIVER: u64 = 2;
/// Timer kind: end of the post-restart order-resync window.
const GK_RESYNC: u64 = 3;
/// Timer kind: catch-up PULL retransmission while no snapshot arrived.
const GK_PULL: u64 = 4;
/// Timer kind: leader-side deferred snapshot reply (the deferral lets
/// every request already in the Δ-pipeline at the pull instant execute
/// first, so snapshot coverage and the joiner's live stream overlap
/// instead of leaving a gap).
const GK_SNAP: u64 = 5;

/// [`hades_sim::mux::ActorEvent::Notify`] tag: an out-of-band wake
/// (closed-loop schedule extension, or a control-plane workload retune)
/// asking this member to re-run its submission tick. Public so an
/// embedding control plane can wake group members after retuning their
/// shared [`RequestSource`].
pub const GN_WAKE: u64 = 1;

/// The profiling label of [`ReplicaGroup`] actors (see
/// `hades_sim::mux::NetActor::label`).
pub const GROUP_LABEL: &str = "group";

/// Short kind name of a group protocol message tag, for traffic
/// attribution (`None` for tags the group never sends).
pub fn group_msg_name(tag: u64) -> Option<&'static str> {
    Some(match tag {
        GMSG_REQ => "req",
        GMSG_ORDER => "order",
        GMSG_VOTE => "vote",
        GMSG_CKPT => "ckpt",
        GMSG_PULL => "pull",
        GMSG_SNAP_HI => "snap_hi",
        GMSG_SNAP_LO => "snap_lo",
        GMSG_SNAP_MARK => "snap_mark",
        _ => return None,
    })
}

fn tag(kind: u64, body: u64) -> u64 {
    (kind << 60) | body
}

/// Request payload: id in the top 20 bits, sender timestamp (ns) below.
/// The packing bounds the protocol to ~4.9 h of virtual time (2^44 ns)
/// and 2^20 requests — asserted at submission rather than silently
/// wrapping into order divergence.
fn req_payload(id: u64, ts: Time) -> u64 {
    let ns = (ts - Time::ZERO).as_nanos();
    assert!(id < 1 << 20, "request id {id} exceeds the 20-bit payload");
    assert!(
        ns < 1 << 44,
        "timestamp {ns} ns exceeds the 44-bit payload (~4.9 h horizon cap)"
    );
    (id << 44) | ns
}

fn req_decode(payload: u64) -> (u64, Time) {
    (
        (payload >> 44) & 0xF_FFFF,
        Time::from_nanos(payload & ((1 << 44) - 1)),
    )
}

/// Order: leader node (6 bits) | stream sequence number (38 bits) |
/// request id (20 bits). Order streams are per-leader — a new leader
/// always starts at sequence 0 and followers re-anchor on the stream
/// switch — so a leader taking over with stale knowledge can never
/// collide with (or be dropped against) its predecessor's numbering.
fn order_payload(leader: u32, seq: u64, id: u64) -> u64 {
    ((leader as u64 & 0x3F) << 58) | ((seq & 0x3F_FFFF_FFFF) << 20) | (id & 0xF_FFFF)
}

fn order_decode(payload: u64) -> (u32, u64, u64) {
    (
        (payload >> 58) as u32,
        (payload >> 20) & 0x3F_FFFF_FFFF,
        payload & 0xF_FFFF,
    )
}

/// Vote: request id (20 bits) | executed count mod 4096 (12 bits) |
/// state digest (32 bits). The count lets receivers skip the digest
/// cross-check against members whose history legitimately differs (a
/// restarted replica missed its blackout window).
fn vote_payload(id: u64, count: u64, digest: u64) -> u64 {
    ((id & 0xF_FFFF) << 44) | ((count & 0xFFF) << 32) | (digest & 0xFFFF_FFFF)
}

fn vote_decode(payload: u64) -> (u64, u64, u64) {
    (
        (payload >> 44) & 0xF_FFFF,
        (payload >> 32) & 0xFFF,
        payload & 0xFFFF_FFFF,
    )
}

/// Catch-up snapshot part: joiner epoch (16 bits) | 32 payload bits.
fn snap_payload(epoch: u64, bits: u64) -> u64 {
    ((epoch & 0xFFFF) << 48) | (bits & 0xFFFF_FFFF)
}

fn snap_decode(payload: u64) -> (u64, u64) {
    ((payload >> 48) & 0xFFFF, payload & 0xFFFF_FFFF)
}

/// Snapshot watermark: joiner epoch (16) | covered-id floor (20) |
/// executed count mod 4096 (12). Ids below `floor` are folded into the
/// shipped state and must not be re-executed by the joiner.
fn snap_mark_payload(epoch: u64, floor: u64, count: u64) -> u64 {
    ((epoch & 0xFFFF) << 48) | ((floor & 0xF_FFFF) << 12) | (count & 0xFFF)
}

fn snap_mark_decode(payload: u64) -> (u64, u64, u64) {
    (
        (payload >> 48) & 0xFFFF,
        (payload >> 12) & 0xF_FFFF,
        payload & 0xFFF,
    )
}

/// The actor-side request stream of a replicated service: the gateway
/// asks it *when* to submit, and feeds every first client-visible
/// response back into it — the hook that closes the loop between the
/// group's measured behaviour and the client's submission schedule.
///
/// One source instance is **shared by every member** of the group
/// (behind `Rc<RefCell<…>>`), so an interim gateway taking over after a
/// crash sees exactly the schedule the dead gateway was working from.
/// All calls happen inside engine event handlers, in the deterministic
/// total order; implementations must be deterministic functions of the
/// call sequence.
pub trait RequestSource: std::fmt::Debug {
    /// Number of requests scheduled at or before `now` — request ids
    /// `0..n` are the gateway's responsibility by `now`.
    fn submissions_through(&mut self, now: Time) -> u64;

    /// The next scheduled submission instant strictly after `now`, if
    /// any is known yet. Closed-loop sources return `None` while the
    /// next request still waits on a response.
    fn next_submission_after(&mut self, now: Time) -> Option<Time>;

    /// Reports the **first** client-visible output of request `id`,
    /// observed at `at` (members report their own emissions; the shared
    /// source keeps the first report, which — engine time being
    /// monotone — is the earliest one). Returns a newly scheduled
    /// submission instant when the report extended the schedule, so the
    /// reporting member can arm the wake-up.
    fn on_response(&mut self, id: u64, at: Time) -> Option<Time>;

    /// Rescales the source's future pacing to `permille` of its
    /// **nominal** rate from `now` on (1000 = nominal, 500 = half rate,
    /// 0 = pause). Repeated retunes must not compound — each call is
    /// absolute against the nominal rate — and a pause must be
    /// resumable by a later positive retune. Closed-loop sources scale
    /// their think time; open-loop sources re-pace the remaining
    /// nominal tail.
    fn throttle(&mut self, now: Time, permille: u32);

    /// Number of requests this source has **abandoned** so far: given up
    /// on client-side (e.g. a closed loop timing out an outstanding
    /// request whose group died) and re-issued or dropped. Open-loop
    /// sources never abandon; the default is 0.
    fn abandoned(&self) -> u64 {
        0
    }
}

/// The open-loop [`RequestSource`]: a pre-materialized, strictly
/// increasing submission schedule (the lowering of an offline workload).
///
/// Throttling keeps the **nominal** schedule immutable and re-paces the
/// not-yet-issued tail: on `throttle(now, p > 0)` the remaining
/// requests replay from `now` with their nominal inter-arrival gaps
/// scaled by `1000/p` (so repeated retunes never compound), and
/// `throttle(now, 0)` pauses the tail until a later positive retune
/// resumes it. A retune to the rate already in force is a no-op — a
/// driver re-asserting the same rate every tick must not perpetually
/// push the next submission out.
#[derive(Debug, Clone)]
pub struct FixedSchedule {
    /// The nominal schedule (never rescaled).
    nominal: Vec<Time>,
    /// The effective schedule under the retunes applied so far
    /// (`Time::MAX` = paused entry).
    effective: Vec<Time>,
    /// The pacing currently in force (permille of nominal).
    permille: u32,
}

impl FixedSchedule {
    /// Wraps `times` (must be strictly increasing).
    ///
    /// # Panics
    ///
    /// Panics when `times` is not strictly increasing.
    pub fn new(times: Vec<Time>) -> Self {
        assert!(
            times.windows(2).all(|w| w[0] < w[1]),
            "the submission schedule must be strictly increasing"
        );
        FixedSchedule {
            effective: times.clone(),
            nominal: times,
            permille: 1000,
        }
    }
}

impl RequestSource for FixedSchedule {
    fn submissions_through(&mut self, now: Time) -> u64 {
        self.effective.partition_point(|t| *t <= now) as u64
    }

    fn next_submission_after(&mut self, now: Time) -> Option<Time> {
        self.effective
            .get(self.effective.partition_point(|t| *t <= now))
            .copied()
            .filter(|t| *t != Time::MAX)
    }

    fn on_response(&mut self, _id: u64, _at: Time) -> Option<Time> {
        None
    }

    fn throttle(&mut self, now: Time, permille: u32) {
        if permille == self.permille {
            return; // same rate re-asserted: nothing to re-pace
        }
        self.permille = permille;
        let idx = self.effective.partition_point(|t| *t <= now);
        if permille == 0 {
            // Pause: park the tail where a later retune can revive it.
            for t in self.effective[idx..].iter_mut() {
                *t = Time::MAX;
            }
            return;
        }
        // Replay the remaining nominal tail from `now`, gaps scaled
        // against the *nominal* schedule — never the current effective
        // one, so repeated retunes stay absolute instead of compounding.
        let mut t = now;
        for k in idx..self.nominal.len() {
            let prev = if k == 0 {
                Time::ZERO
            } else {
                self.nominal[k - 1]
            };
            let gap = (self.nominal[k] - prev).as_nanos() as u128 * 1000 / permille as u128;
            t += Duration::from_nanos(gap.clamp(1, u64::MAX as u128) as u64);
            self.effective[k] = t;
        }
    }
}

/// One externally visible group transition, delivered to the optional
/// [`GroupTap`] at the engine instant it happens (the online face of the
/// post-run [`GroupLog`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroupEvent {
    /// Leadership moved to the tapped member.
    Handoff {
        /// The member that held leadership before.
        from: u32,
        /// The member that took over (the tapped member).
        to: u32,
    },
    /// The tapped member (the gateway) submitted a client request into
    /// the group's Δ-order.
    Submitted {
        /// The request id.
        id: u64,
    },
    /// The tapped member delivered an ordered request to its service —
    /// the Δ-order decision point for that member.
    Delivered {
        /// The request id.
        id: u64,
        /// The request's Δ-order timestamp (its submission instant).
        ts: Time,
    },
    /// The tapped member emitted the group's client-visible output for a
    /// request (first copy per member; style-level dedup already
    /// applied).
    Emitted {
        /// The request id.
        id: u64,
    },
}

/// The online observation callback of a [`ReplicaGroup`] member:
/// `(now, group, node, event)`, invoked synchronously at the emission
/// instant. Taps must not re-enter the engine.
#[derive(Clone)]
pub struct GroupTap(pub Rc<GroupTapFn>);

/// The bare callback type behind [`GroupTap`]:
/// `(now, group, node, event)`.
pub type GroupTapFn = dyn Fn(Time, u32, u32, &GroupEvent);

impl std::fmt::Debug for GroupTap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("GroupTap")
    }
}

/// Static configuration of one replica-group member.
#[derive(Debug, Clone)]
pub struct GroupConfig {
    /// The group this member belongs to (report key).
    pub group: u32,
    /// The node this member runs on; must appear in `members`.
    pub node: NodeId,
    /// The group's member nodes, ascending.
    pub members: Vec<u32>,
    /// The replication style the group runs.
    pub style: ReplicaStyle,
    /// Client request period: request `k` is scheduled at
    /// `first_request_at + k · request_period` (unless
    /// [`GroupConfig::source`] overrides the law).
    pub request_period: Duration,
    /// Scheduled submission instant of request 0.
    pub first_request_at: Time,
    /// The shared request source driving the gateway: open-loop
    /// ([`FixedSchedule`], lowered from a deployment-spec `Workload`) or
    /// closed-loop (fed back through [`RequestSource::on_response`]).
    /// `None` runs the periodic law above.
    pub source: Option<Rc<RefCell<dyn RequestSource>>>,
    /// The Δ of the atomic multicast (delivery at `ts + Δ`); must be at
    /// least the network's `δmax` for loss-free ordering.
    pub delta: Duration,
    /// Per-link redundant-transmission budget of the multicast fan-out
    /// (masks up to `attempts − 1` consecutive omissions per copy).
    pub attempts: u32,
    /// Actor addresses of every member, as `(node, actor)` pairs in
    /// `members` order.
    pub peers: Vec<(u32, ActorId)>,
}

impl GroupConfig {
    /// The analytic delivery bound of the Δ-multicast: a request
    /// submitted on schedule is delivered at every live member exactly
    /// `Δ` after its submission.
    pub fn delivery_bound(&self) -> Duration {
        self.delta
    }

    /// The analytic client-visible output bound in the failure-free
    /// case: delivery (`Δ`) plus one network hop for the vote (active)
    /// or the decided order (semi-active follower).
    pub fn output_bound(&self, max_delay: Duration) -> Duration {
        self.delta + max_delay
    }

    /// Number of scheduled submissions with instant `≤ now` — request
    /// ids `0..count` are the gateway's responsibility by `now`.
    fn submissions_through(&self, now: Time) -> u64 {
        match &self.source {
            Some(s) => s.borrow_mut().submissions_through(now),
            None => {
                if now < self.first_request_at {
                    0
                } else {
                    (now - self.first_request_at).as_nanos() / self.request_period.as_nanos().max(1)
                        + 1
                }
            }
        }
    }

    /// The next scheduled submission instant strictly after `now`;
    /// `None` once an explicit source is exhausted (or, closed-loop,
    /// still waiting on a response).
    fn next_submission_after(&self, now: Time) -> Option<Time> {
        match &self.source {
            Some(s) => s.borrow_mut().next_submission_after(now),
            None => Some(if now < self.first_request_at {
                self.first_request_at
            } else {
                self.first_request_at
                    + self
                        .request_period
                        .saturating_mul(self.submissions_through(now))
            }),
        }
    }
}

/// Everything one group member observed and decided, readable after the
/// run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupLog {
    /// The group.
    pub group: u32,
    /// The member's node.
    pub node: u32,
    /// Requests this member submitted as the gateway: `(id, at)`.
    pub submitted: Vec<(u64, Time)>,
    /// The member's delivery sequence: `(id, ts, delivered_at)` in
    /// delivery order — the sequence the agreement checks compare.
    pub delivered: Vec<(u64, Time, Time)>,
    /// Client-visible outputs this member emitted: `(id, at)`. For
    /// active replication these are the member's votes (the voter keeps
    /// the first copy per request); for semi-active and passive only
    /// the leader/primary emits.
    pub emitted: Vec<(u64, Time)>,
    /// Duplicate outputs this member suppressed (redundant votes seen,
    /// or follower executions whose output was withheld).
    pub suppressed: u64,
    /// Active-style vote digests that disagreed with the local state.
    pub vote_mismatches: u64,
    /// Leadership takeovers this member performed: `(old, new, at)`.
    pub handoffs: Vec<(u32, u32, Time)>,
    /// View re-binds observed (installed view number changed).
    pub rebinds: u64,
    /// Cold restarts of this member.
    pub restarts: Vec<Time>,
    /// Requests re-executed during a passive takeover replay.
    pub replayed: u64,
    /// Completed catch-up snapshots this member adopted after a restart
    /// (the group fold shipped alongside the rejoin checkpoint).
    pub catchups: u64,
    /// Group-protocol messages this member pushed into the network.
    pub messages_sent: u64,
    /// Multicast copies discarded for arriving past `ts + Δ`.
    pub late_discards: u64,
    /// The member's service state (an order-sensitive fold of the
    /// executed requests, so equal states certify equal orders).
    pub final_state: u64,
}

impl GroupLog {
    fn new(group: u32, node: u32) -> Self {
        GroupLog {
            group,
            node,
            submitted: Vec::new(),
            delivered: Vec::new(),
            emitted: Vec::new(),
            suppressed: 0,
            vote_mismatches: 0,
            handoffs: Vec::new(),
            rebinds: 0,
            restarts: Vec::new(),
            replayed: 0,
            catchups: 0,
            messages_sent: 0,
            late_discards: 0,
            final_state: 0,
        }
    }

    /// The delivery sequence as request ids only.
    pub fn delivery_order(&self) -> Vec<u64> {
        self.delivered.iter().map(|(id, _, _)| *id).collect()
    }

    /// Whether this member's delivery sequence is a subsequence of
    /// `reference` — the consistency a member that missed requests
    /// (downtime, unmasked omissions) must still satisfy.
    pub fn order_consistent_with(&self, reference: &[u64]) -> bool {
        let mut it = reference.iter();
        self.delivery_order().iter().all(|id| it.any(|r| r == id))
    }
}

/// One member of a replication group, as a [`NetActor`] on the shared
/// engine.
///
/// # Examples
///
/// A standalone three-member active group (no membership agents: the
/// static member list is the view). The gateway submits a request every
/// millisecond; every member delivers the same sequence at `ts + Δ`:
///
/// ```
/// use hades_services::group::{GroupConfig, ReplicaGroup};
/// use hades_services::ReplicaStyle;
/// use hades_sim::mux::ActorId;
/// use hades_sim::{ActorEngine, LinkConfig, Network, NodeId, SimRng};
/// use hades_time::{Duration, Time};
///
/// let net = Network::homogeneous(
///     3,
///     LinkConfig::reliable(Duration::from_micros(10), Duration::from_micros(40)),
///     SimRng::seed_from(1),
/// );
/// let delta = Duration::from_micros(50);
/// let mut rt = ActorEngine::new(net);
/// let peers: Vec<(u32, ActorId)> = (0..3).map(|n| (n, ActorId(n))).collect();
/// let logs: Vec<_> = (0..3)
///     .map(|n| {
///         let (member, log) = ReplicaGroup::new(
///             GroupConfig {
///                 group: 0,
///                 node: NodeId(n),
///                 members: vec![0, 1, 2],
///                 style: ReplicaStyle::Active,
///                 request_period: Duration::from_millis(1),
///                 first_request_at: Time::ZERO + Duration::from_millis(1),
///                 source: None,
///                 delta,
///                 attempts: 1,
///                 peers: peers.clone(),
///             },
///             None,
///         );
///         rt.add_actor(Box::new(member));
///         log
///     })
///     .collect();
/// rt.run(Time::ZERO + Duration::from_millis(10));
/// let reference = logs[0].borrow().delivery_order();
/// assert!(!reference.is_empty());
/// for log in &logs {
///     assert_eq!(log.borrow().delivery_order(), reference);
/// }
/// ```
#[derive(Debug)]
pub struct ReplicaGroup {
    cfg: GroupConfig,
    /// The co-located membership agent's log; `None` runs the group on
    /// its static member list (no failover).
    view_source: Option<Rc<RefCell<AgentLog>>>,
    inbox: DeltaInbox,
    /// Order-sensitive fold of the executed requests.
    state: u64,
    executed: HashSet<u64>,
    /// Ids below this floor are covered by an adopted catch-up snapshot:
    /// folded into `state` already, never re-executed.
    executed_floor: u64,
    /// Executed-request count, floor-covered ids included (the vote
    /// cross-check compares it mod 4096).
    executed_count: u64,
    /// Highest executed request id (`executed.max()` without the scan).
    last_executed: Option<u64>,
    /// Between restart and snapshot adoption (active/semi-active):
    /// deliveries buffer instead of executing, so the adopted fold and
    /// the live stream splice without overlap.
    catching_up: bool,
    /// Received snapshot parts: state halves and `(floor, count)`.
    snap_hi: Option<u64>,
    snap_lo: Option<u64>,
    snap_mark: Option<(u64, u64)>,
    /// Leader side: queued `(node, epoch)` pulls awaiting the deferred
    /// snapshot reply.
    pending_pulls: Vec<(u32, u64)>,
    /// Delivered but not yet executed (semi-active followers await the
    /// order; passive backups await a takeover): `id → (ts, sender)`.
    pending: HashMap<u64, (Time, u32)>,
    /// Semi-active: buffered decided orders `seq → id` of the current
    /// stream.
    orders: BTreeMap<u64, u64>,
    next_seq: u64,
    /// The leader whose order stream this member is following.
    cur_order_leader: Option<u32>,
    /// While re-anchoring onto a (new) order stream — after a restart or
    /// a leadership change — incoming orders are buffered for one Δ (so
    /// a reordered in-flight copy is not dropped) and the stream is
    /// adopted at the lowest buffered sequence number.
    order_resync: bool,
    emitted_ids: HashSet<u64>,
    /// Passive: watermark of the last received checkpoint.
    ckpt_watermark: Option<u64>,
    executions_since_ckpt: u64,
    /// Lowest request id this member may submit as gateway: bumped past
    /// the blackout at restart — requests scheduled while it was down
    /// were the interim gateway's responsibility, and re-submitting them
    /// would append stale ids to its own Δ-order.
    makeup_floor: u64,
    cur_leader: u32,
    seen_view: Option<u32>,
    /// Set at restart: leadership is withheld until the co-located agent
    /// installs a view at or after this instant (re-admission), so a
    /// stale pre-crash view cannot make a rejoining member submit
    /// concurrently with the interim gateway.
    await_view_since: Option<Time>,
    epoch: u64,
    log: Rc<RefCell<GroupLog>>,
    tap: Option<GroupTap>,
}

impl ReplicaGroup {
    /// Creates one group member and the shared log handle the embedding
    /// runtime reads after the run. `view_source` is the co-located
    /// membership agent's log (group membership re-binds to its agreed
    /// views); `None` pins the view to the static member list.
    ///
    /// # Panics
    ///
    /// Panics if the member list is empty, unsorted, does not contain
    /// the member's own node, disagrees with `peers`, or the request
    /// period is zero (the submission tick would stop advancing time).
    pub fn new(
        cfg: GroupConfig,
        view_source: Option<Rc<RefCell<AgentLog>>>,
    ) -> (Self, Rc<RefCell<GroupLog>>) {
        assert!(!cfg.members.is_empty(), "a group needs members");
        assert!(
            cfg.source.is_some() || !cfg.request_period.is_zero(),
            "the request period must be positive"
        );
        assert!(
            cfg.members.windows(2).all(|w| w[0] < w[1]),
            "group members must be ascending"
        );
        assert!(
            cfg.members.contains(&cfg.node.0),
            "the member's node must be in the group"
        );
        assert_eq!(
            cfg.members.len(),
            cfg.peers.len(),
            "one peer address per member"
        );
        assert!(
            cfg.members
                .iter()
                .zip(cfg.peers.iter())
                .all(|(m, (n, _))| m == n),
            "peer addresses must follow the member list"
        );
        let log = Rc::new(RefCell::new(GroupLog::new(cfg.group, cfg.node.0)));
        let member = ReplicaGroup {
            inbox: DeltaInbox::new(cfg.delta),
            cur_leader: cfg.members[0],
            cfg,
            view_source,
            state: 0,
            executed: HashSet::new(),
            executed_floor: 0,
            executed_count: 0,
            last_executed: None,
            catching_up: false,
            snap_hi: None,
            snap_lo: None,
            snap_mark: None,
            pending_pulls: Vec::new(),
            pending: HashMap::new(),
            orders: BTreeMap::new(),
            next_seq: 0,
            cur_order_leader: None,
            order_resync: false,
            emitted_ids: HashSet::new(),
            ckpt_watermark: None,
            executions_since_ckpt: 0,
            makeup_floor: 0,
            seen_view: None,
            await_view_since: None,
            epoch: 0,
            log: log.clone(),
            tap: None,
        };
        (member, log)
    }

    /// Installs the online observation tap (see [`GroupTap`]).
    pub fn with_tap(mut self, tap: GroupTap) -> Self {
        self.tap = Some(tap);
        self
    }

    fn me(&self) -> u32 {
        self.cfg.node.0
    }

    /// The members currently live per the agreed view (static list when
    /// no agent is attached), honouring the post-restart leadership
    /// holdback.
    fn live_members(&mut self, now: Time) -> Vec<u32> {
        let Some(source) = &self.view_source else {
            return self.cfg.members.clone();
        };
        let source = source.borrow();
        let Some(view) = source.views.iter().rev().find(|v| v.installed_at <= now) else {
            return self.cfg.members.clone();
        };
        if view.number != self.seen_view.unwrap_or(u32::MAX) {
            // First observation of this install: one re-bind.
            if self.seen_view.is_some() {
                self.log.borrow_mut().rebinds += 1;
            }
            self.seen_view = Some(view.number);
        }
        if let Some(since) = self.await_view_since {
            // Re-admission shows up as a fresh view install — or, when
            // the outage was shorter than the detection window, as a
            // completed fast-path rejoin with no view change at all.
            let readmitted = view.installed_at >= since
                || source.rejoins.iter().any(|r| r.readmitted_at >= since);
            if readmitted {
                self.await_view_since = None;
            }
        }
        let mut live: Vec<u32> = self
            .cfg
            .members
            .iter()
            .copied()
            .filter(|m| view.members.contains(m))
            .collect();
        if self.await_view_since.is_some() {
            // Rejoin in progress: this member must not count itself live
            // (a stale pre-crash view could otherwise hand it leadership
            // concurrently with the interim leader).
            live.retain(|m| *m != self.me());
        }
        live
    }

    /// Re-reads the agreed view and re-binds leadership; runs the
    /// style-specific takeover when leadership lands here.
    fn rebind(&mut self, now: Time, ctx: &mut ActorCtx<'_>) {
        let live = self.live_members(now);
        let leader = live.first().copied().unwrap_or(self.cfg.members[0]);
        if leader != self.cur_leader {
            let old = self.cur_leader;
            self.cur_leader = leader;
            if leader == self.me() {
                self.take_over(old, now, ctx);
            } else {
                // Follower side: every leadership change starts a fresh
                // order stream at sequence 0 — re-anchor on its first
                // burst even when the leader *id* repeats (a returning
                // leader's second tenure must not be dropped against its
                // first tenure's sequence numbers).
                self.cur_order_leader = None;
                self.orders.clear();
                self.order_resync = true;
            }
        }
    }

    fn fanout(&mut self, ctx: &mut ActorCtx<'_>, tag: u64, payload: u64) {
        let targets: Vec<(ActorId, NodeId)> = self
            .cfg
            .peers
            .iter()
            .map(|(n, a)| (*a, NodeId(*n)))
            .collect();
        let accepted = ctx.fanout(targets, tag, payload, self.cfg.attempts);
        self.log.borrow_mut().messages_sent += accepted as u64;
    }

    /// Order-sensitive state fold (FNV-style): equal states certify
    /// identical execution orders. Ids below the catch-up floor are
    /// already folded into the adopted snapshot and never re-execute.
    fn execute(&mut self, id: u64) -> bool {
        if id < self.executed_floor || !self.executed.insert(id) {
            return false;
        }
        self.executed_count += 1;
        self.last_executed = Some(self.last_executed.map_or(id, |m| m.max(id)));
        self.state = self
            .state
            .wrapping_mul(0x100_0000_01b3)
            .wrapping_add(id + 1);
        self.log.borrow_mut().final_state = self.state;
        true
    }

    /// Records a client-visible output and feeds it back into the shared
    /// request source — the closed-loop response hook. When the report
    /// extends the schedule (the closed-loop client's next request), this
    /// member arms its own tick at the new instant and wakes every peer
    /// there too, so whichever member is gateway *then* submits it.
    /// Invokes the tap, if any.
    fn observe(&self, now: Time, event: GroupEvent) {
        if let Some(tap) = &self.tap {
            (tap.0)(now, self.cfg.group, self.me(), &event);
        }
    }

    fn emit(&mut self, id: u64, now: Time, ctx: &mut ActorCtx<'_>) {
        if !self.emitted_ids.insert(id) {
            return;
        }
        self.log.borrow_mut().emitted.push((id, now));
        self.observe(now, GroupEvent::Emitted { id });
        let next = self
            .cfg
            .source
            .as_ref()
            .and_then(|s| s.borrow_mut().on_response(id, now));
        if let Some(next) = next {
            ctx.timer_at(next, tag(GK_TICK, self.epoch & 0xFFFF));
            let me = self.me();
            for (n, actor) in self.cfg.peers.clone() {
                if n != me {
                    ctx.notify_at(actor, next, GN_WAKE);
                }
            }
        }
    }

    fn arm_next_tick(&mut self, now: Time, ctx: &mut ActorCtx<'_>) {
        // An exhausted explicit schedule arms nothing: the stream is over.
        if let Some(next) = self.cfg.next_submission_after(now) {
            ctx.timer_at(next, tag(GK_TICK, self.epoch & 0xFFFF));
        }
    }

    /// Submission tick: the gateway submits the scheduled request plus
    /// any request it has no knowledge of (a predecessor gateway died
    /// before submitting it).
    fn on_tick(&mut self, now: Time, ctx: &mut ActorCtx<'_>) {
        self.rebind(now, ctx);
        // The floor chases the contiguously-known prefix so a tick scans
        // only genuinely unknown ids, not the whole run so far.
        while self.inbox.knows(self.makeup_floor) {
            self.makeup_floor += 1;
        }
        if self.cur_leader == self.me() {
            let upto = self.cfg.submissions_through(now);
            for id in self.makeup_floor..upto {
                if !self.inbox.knows(id) {
                    // Fresh timestamp: a catch-up submission cannot be
                    // retrofitted into the past of the Δ-order.
                    self.log.borrow_mut().submitted.push((id, now));
                    self.observe(now, GroupEvent::Submitted { id });
                    if let Some(due) = self.inbox.accept(id, now, self.me(), now) {
                        ctx.timer_at(due, tag(GK_DELIVER, self.epoch & 0xFFFF));
                    }
                    self.fanout(ctx, GMSG_REQ, req_payload(id, now));
                }
            }
        }
        self.arm_next_tick(now, ctx);
    }

    /// Δ-delivery instant: release everything due, in `(ts, sender)`
    /// order, and apply the style.
    fn on_deliver(&mut self, now: Time, ctx: &mut ActorCtx<'_>) {
        self.rebind(now, ctx);
        let due = self.inbox.due(now);
        for (id, ts, sender) in due {
            self.log.borrow_mut().delivered.push((id, ts, now));
            self.observe(now, GroupEvent::Delivered { id, ts });
            match self.cfg.style {
                ReplicaStyle::Active => {
                    if self.catching_up {
                        // Buffer until the catch-up snapshot arrives: the
                        // adopted fold covers everything below its floor,
                        // and buffered deliveries splice in above it.
                        self.pending.insert(id, (ts, sender));
                        continue;
                    }
                    self.execute(id);
                    // Every member votes; the voter keeps the first copy.
                    self.emit(id, now, ctx);
                    let digest = self.state & 0xFFFF_FFFF;
                    let count = self.executed_count;
                    self.fanout(ctx, GMSG_VOTE, vote_payload(id, count, digest));
                }
                ReplicaStyle::SemiActive => {
                    if self.cur_leader == self.me() && !self.catching_up {
                        self.execute(id);
                        self.emit(id, now, ctx);
                        let seq = self.next_seq;
                        self.next_seq += 1;
                        let me = self.me();
                        self.fanout(ctx, GMSG_ORDER, order_payload(me, seq, id));
                    } else {
                        self.pending.insert(id, (ts, sender));
                    }
                }
                ReplicaStyle::Passive { checkpoint_every } => {
                    if self.cur_leader == self.me() {
                        self.execute(id);
                        self.emit(id, now, ctx);
                        self.executions_since_ckpt += 1;
                        if self.executions_since_ckpt >= checkpoint_every as u64 {
                            self.executions_since_ckpt = 0;
                            self.fanout(ctx, GMSG_CKPT, id);
                        }
                    } else {
                        self.pending.insert(id, (ts, sender));
                    }
                }
            }
        }
    }

    /// Applies buffered semi-active orders in contiguous sequence.
    fn apply_orders(&mut self) {
        if self.catching_up {
            return; // orders buffer until the snapshot is adopted
        }
        while let Some(id) = self.orders.remove(&self.next_seq) {
            self.next_seq += 1;
            self.pending.remove(&id);
            if self.execute(id) {
                // Executed under the leader's order, output withheld.
                self.log.borrow_mut().suppressed += 1;
            }
        }
    }

    /// Ends the post-restart order-resync window: adopt the stream at
    /// the lowest buffered sequence number (in-flight reordering is
    /// bounded by `δmax ≤ Δ`, so every copy of the burst has arrived)
    /// and apply contiguously.
    fn finish_order_resync(&mut self) {
        if !self.order_resync {
            return;
        }
        if self.catching_up {
            // A snapshot pull is still in flight. In the steady path the
            // follower is strictly behind the leader, so the adoption
            // overwrite would stay consistent — but a leadership change
            // mid-pull can pair a stale snapshot with a newer order
            // stream, whose executed folds the overwrite would silently
            // lose. Keep buffering; the adoption re-runs the resync.
            return;
        }
        self.order_resync = false;
        if let Some(&seq) = self.orders.keys().next() {
            self.next_seq = seq;
        }
        self.apply_orders();
    }

    /// Pending deliveries in Δ-order — the takeover work list.
    fn pending_in_order(&self) -> Vec<u64> {
        let mut v: Vec<(Time, u32, u64)> = self
            .pending
            .iter()
            .map(|(id, (ts, sender))| (*ts, *sender, *id))
            .collect();
        v.sort_unstable();
        v.into_iter().map(|(_, _, id)| id).collect()
    }

    /// Abandons an unanswered catch-up: leadership (or the end of the
    /// run) cannot wait on a snapshot that may never arrive, so the
    /// member falls back to the pre-catch-up behaviour — buffered
    /// deliveries execute now, the blackout window stays skipped.
    fn abort_catchup(&mut self, now: Time, ctx: &mut ActorCtx<'_>) {
        if !self.catching_up {
            return;
        }
        self.catching_up = false;
        if matches!(self.cfg.style, ReplicaStyle::Active) {
            for id in self.pending_in_order() {
                self.pending.remove(&id);
                if self.execute(id) {
                    self.emit(id, now, ctx);
                }
            }
        }
    }

    /// Style-specific leadership takeover.
    fn take_over(&mut self, old: u32, now: Time, ctx: &mut ActorCtx<'_>) {
        self.abort_catchup(now, ctx);
        self.log.borrow_mut().handoffs.push((old, self.me(), now));
        self.observe(
            now,
            GroupEvent::Handoff {
                from: old,
                to: self.me(),
            },
        );
        match self.cfg.style {
            ReplicaStyle::Active => {
                // Nothing to repair: outputs were never interrupted (the
                // voter has the surviving members' votes); the next tick
                // makes this member the submitting gateway.
            }
            ReplicaStyle::SemiActive => {
                // Settle any in-flight resync first: buffered orders
                // execute as the previous leader decided before this
                // member re-orders the leftovers. Then open a fresh
                // order stream — streams are per-leader, starting at
                // sequence 0, so no knowledge of the predecessor's
                // numbering is needed.
                self.finish_order_resync();
                self.next_seq = 0;
                self.cur_order_leader = Some(self.me());
                // Order, execute and emit everything delivered but never
                // ordered by the dead leader.
                for id in self.pending_in_order() {
                    self.pending.remove(&id);
                    self.execute(id);
                    self.emit(id, now, ctx);
                    let seq = self.next_seq;
                    self.next_seq += 1;
                    let me = self.me();
                    self.fanout(ctx, GMSG_ORDER, order_payload(me, seq, id));
                }
            }
            ReplicaStyle::Passive { .. } => {
                // Reconstruct the checkpointed state by folding the
                // buffered deliveries up to the watermark (the backup's
                // Δ-order matches the primary's, so the fold does too —
                // and unlike shipping the state alongside the watermark
                // in a second message, this cannot race a reordered or
                // dropped copy), then replay what was delivered since.
                // Re-emissions past the watermark are the passive
                // style's duplicate-output exposure.
                let w = self.ckpt_watermark;
                let (covered, replay): (Vec<u64>, Vec<u64>) = self
                    .pending_in_order()
                    .into_iter()
                    .partition(|id| w.is_some_and(|w| *id <= w));
                for id in covered {
                    self.pending.remove(&id);
                    self.execute(id); // checkpoint install, no output
                }
                self.log.borrow_mut().replayed += replay.len() as u64;
                for id in replay {
                    self.pending.remove(&id);
                    self.execute(id);
                    self.emit(id, now, ctx);
                }
            }
        }
        // A closed-loop source only advances when responses flow; the
        // dead gateway's pending tick died with it, so the new leader
        // runs one tick immediately — submitting whatever the source had
        // scheduled during the outage — instead of waiting for a timer
        // that nobody will arm. A redundant tick is harmless (makeup
        // submissions dedup against the inbox).
        self.on_tick(now, ctx);
    }

    fn on_restart(&mut self, now: Time, ctx: &mut ActorCtx<'_>) {
        self.epoch += 1;
        self.log.borrow_mut().restarts.push(now);
        // Volatile protocol state is gone; the executed set and the
        // service state survive on local stable storage (the requests of
        // the down window are lost to this member).
        self.inbox.clear_pending();
        self.pending.clear();
        self.orders.clear();
        self.pending_pulls.clear();
        self.cur_order_leader = None;
        self.order_resync = true;
        // Requests scheduled during the blackout are off limits; a
        // restart before the stream even started leaves everything
        // submittable.
        self.makeup_floor = self.cfg.submissions_through(now);
        self.await_view_since = Some(now);
        self.arm_next_tick(now, ctx);
        // Group state transfer: instead of permanently skipping the
        // blackout window, an active/semi-active member pulls the group
        // fold from the current leader (the group-level payload of the
        // rejoin checkpoint) and splices its live stream on top.
        if !matches!(self.cfg.style, ReplicaStyle::Passive { .. }) && self.cfg.members.len() > 1 {
            self.catching_up = true;
            self.snap_hi = None;
            self.snap_lo = None;
            self.snap_mark = None;
            self.fanout(ctx, GMSG_PULL, self.epoch & 0xFFFF);
            ctx.timer_after(
                self.cfg.delta.saturating_mul(4),
                tag(GK_PULL, self.epoch & 0xFFFF),
            );
        }
    }

    /// Adopts the catch-up snapshot once all three parts arrived: the
    /// state fold stands in for every request below the floor, and the
    /// deliveries buffered since the restart splice in above it.
    fn maybe_adopt_snapshot(&mut self, now: Time, ctx: &mut ActorCtx<'_>) {
        if !self.catching_up {
            return;
        }
        let (Some(hi), Some(lo), Some((floor, count))) =
            (self.snap_hi, self.snap_lo, self.snap_mark)
        else {
            return;
        };
        self.catching_up = false;
        self.state = (hi << 32) | lo;
        self.executed_floor = self.executed_floor.max(floor);
        self.executed_count = count;
        if floor > 0 {
            self.last_executed = Some(self.last_executed.map_or(floor - 1, |m| m.max(floor - 1)));
        }
        {
            let mut log = self.log.borrow_mut();
            log.final_state = self.state;
            log.catchups += 1;
        }
        match self.cfg.style {
            ReplicaStyle::Active => {
                // Execute (and vote) the buffered live stream above the
                // floor, in Δ-order; covered ids are settled by the fold.
                for id in self.pending_in_order() {
                    self.pending.remove(&id);
                    if self.execute(id) {
                        self.emit(id, now, ctx);
                        let digest = self.state & 0xFFFF_FFFF;
                        let count = self.executed_count;
                        self.fanout(ctx, GMSG_VOTE, vote_payload(id, count, digest));
                    }
                }
            }
            ReplicaStyle::SemiActive => {
                // Covered ids are settled; the rest stays buffered for
                // the leader's order stream (or this member's own
                // takeover, should leadership land here).
                let covered: Vec<u64> = self
                    .pending
                    .keys()
                    .copied()
                    .filter(|id| *id < self.executed_floor)
                    .collect();
                for id in covered {
                    self.pending.remove(&id);
                }
                // Orders received while the pull was in flight were held
                // back (executing them pre-adoption would lose their
                // folds to the snapshot overwrite): settle the buffered
                // stream now — ids below the floor dedup away.
                self.finish_order_resync();
                if self.cur_leader == self.me() {
                    for id in self.pending_in_order() {
                        self.pending.remove(&id);
                        if self.execute(id) {
                            self.emit(id, now, ctx);
                            let seq = self.next_seq;
                            self.next_seq += 1;
                            let me = self.me();
                            self.fanout(ctx, GMSG_ORDER, order_payload(me, seq, id));
                        }
                    }
                }
            }
            ReplicaStyle::Passive { .. } => {}
        }
    }

    /// Leader side: answers every queued pull with the current fold.
    /// Runs one deferral window after the pull arrived, so everything in
    /// the Δ-pipeline at the pull instant is already folded in and the
    /// snapshot overlaps the joiner's live stream instead of leaving a
    /// gap.
    fn serve_pending_pulls(&mut self, now: Time, ctx: &mut ActorCtx<'_>) {
        self.rebind(now, ctx);
        let pulls = std::mem::take(&mut self.pending_pulls);
        if pulls.is_empty() || self.catching_up || self.cur_leader != self.me() {
            return; // the puller's retransmission finds the current leader
        }
        let floor = self
            .last_executed
            .map_or(0, |x| x + 1)
            .max(self.executed_floor)
            .min(0xF_FFFF);
        for (node, epoch) in pulls {
            let Some((_, actor)) = self.cfg.peers.iter().find(|(n, _)| *n == node).copied() else {
                continue;
            };
            let to = NodeId(node);
            for (kind, payload) in [
                (GMSG_SNAP_HI, snap_payload(epoch, self.state >> 32)),
                (GMSG_SNAP_LO, snap_payload(epoch, self.state & 0xFFFF_FFFF)),
                (
                    GMSG_SNAP_MARK,
                    snap_mark_payload(epoch, floor, self.executed_count),
                ),
            ] {
                let accepted = ctx.fanout([(actor, to)], kind, payload, self.cfg.attempts);
                self.log.borrow_mut().messages_sent += accepted as u64;
            }
        }
    }

    fn sync_inbox_counters(&mut self) {
        let mut log = self.log.borrow_mut();
        log.late_discards = self.inbox.late_discards();
    }
}

impl NetActor for ReplicaGroup {
    fn node(&self) -> NodeId {
        self.cfg.node
    }

    fn label(&self) -> &'static str {
        GROUP_LABEL
    }

    fn handle(&mut self, now: Time, ev: ActorEvent, ctx: &mut ActorCtx<'_>) {
        match ev {
            ActorEvent::Start => {
                self.rebind(now, ctx);
                self.arm_next_tick(now, ctx);
            }
            // Out-of-band wake: a closed-loop response elsewhere (or a
            // control-plane workload retune) extended/changed the shared
            // schedule — run a submission tick so the current gateway
            // picks it up, whoever that is by now.
            ActorEvent::Notify { tag: GN_WAKE } => self.on_tick(now, ctx),
            ActorEvent::Notify { .. } => {}
            ActorEvent::Restart => self.on_restart(now, ctx),
            ActorEvent::Timer { tag: t } => {
                if t & 0xFFFF != self.epoch & 0xFFFF {
                    return; // timer of a previous life
                }
                match t >> 60 {
                    GK_TICK => self.on_tick(now, ctx),
                    GK_DELIVER => self.on_deliver(now, ctx),
                    GK_RESYNC => self.finish_order_resync(),
                    GK_PULL
                        // Re-announce the pull while no snapshot arrived
                        // (lost PULL or reply copies, or a leader change
                        // mid-answer).
                        if self.catching_up => {
                            self.fanout(ctx, GMSG_PULL, self.epoch & 0xFFFF);
                            ctx.timer_after(
                                self.cfg.delta.saturating_mul(4),
                                tag(GK_PULL, self.epoch & 0xFFFF),
                            );
                        }
                    GK_SNAP => self.serve_pending_pulls(now, ctx),
                    _ => {}
                }
            }
            ActorEvent::Message {
                from,
                tag: t,
                payload,
            } => {
                self.rebind(now, ctx);
                match t {
                    GMSG_REQ => {
                        let (id, ts) = req_decode(payload);
                        if let Some(due) = self.inbox.accept(id, ts, from.0, now) {
                            ctx.timer_at(due, tag(GK_DELIVER, self.epoch & 0xFFFF));
                        }
                        self.sync_inbox_counters();
                    }
                    GMSG_ORDER => {
                        let (leader, seq, id) = order_decode(payload);
                        if self.cur_leader == self.me() {
                            return; // leaders decide, they don't follow
                        }
                        if self.cur_order_leader != Some(leader) {
                            // Stream switch (leadership changed, or the
                            // first stream this member ever sees): drop
                            // leftovers of the old stream and re-anchor.
                            self.cur_order_leader = Some(leader);
                            self.orders.clear();
                            self.order_resync = true;
                        }
                        if self.order_resync {
                            // Buffer the whole burst for one Δ before
                            // adopting the stream: a lower-seq copy
                            // reordered in flight must not be dropped.
                            if self.orders.is_empty() {
                                ctx.timer_at(
                                    now + self.cfg.delta,
                                    tag(GK_RESYNC, self.epoch & 0xFFFF),
                                );
                            }
                            self.orders.insert(seq, id);
                        } else if seq >= self.next_seq {
                            self.orders.insert(seq, id);
                            self.apply_orders();
                        }
                    }
                    GMSG_VOTE => {
                        let (id, count, digest) = vote_decode(payload);
                        if self.executed.contains(&id) {
                            // A redundant copy of an output this member
                            // already produced: the voter suppresses it.
                            // The digest cross-check is only meaningful
                            // between members with the same history —
                            // this member's latest execution is the voted
                            // request and both executed the same number
                            // of requests (a restarted replica's shorter
                            // history is not a divergence).
                            let comparable = self.last_executed == Some(id)
                                && self.executed_count & 0xFFF == count;
                            let mut log = self.log.borrow_mut();
                            log.suppressed += 1;
                            if comparable && self.state & 0xFFFF_FFFF != digest {
                                log.vote_mismatches += 1;
                            }
                        }
                    }
                    // Watermarks only ever advance; a reordered older
                    // copy must not roll the checkpoint back.
                    GMSG_CKPT if self.ckpt_watermark.is_none_or(|w| payload > w) => {
                        self.ckpt_watermark = Some(payload);
                    }
                    GMSG_PULL
                        // Only the current leader answers, after one
                        // deferral window; everyone else stays silent and
                        // the puller's retransmission finds the leader.
                        if from.0 != self.me() && self.cur_leader == self.me() && !self.catching_up
                        => {
                            let epoch = payload & 0xFFFF;
                            self.pending_pulls.retain(|(n, _)| *n != from.0);
                            self.pending_pulls.push((from.0, epoch));
                            ctx.timer_at(
                                now + self.cfg.delta.saturating_mul(2),
                                tag(GK_SNAP, self.epoch & 0xFFFF),
                            );
                        }
                    GMSG_SNAP_HI if self.catching_up => {
                        let (epoch, bits) = snap_decode(payload);
                        if epoch == self.epoch & 0xFFFF {
                            self.snap_hi = Some(bits);
                            self.maybe_adopt_snapshot(now, ctx);
                        }
                    }
                    GMSG_SNAP_LO if self.catching_up => {
                        let (epoch, bits) = snap_decode(payload);
                        if epoch == self.epoch & 0xFFFF {
                            self.snap_lo = Some(bits);
                            self.maybe_adopt_snapshot(now, ctx);
                        }
                    }
                    GMSG_SNAP_MARK if self.catching_up => {
                        let (epoch, floor, count) = snap_mark_decode(payload);
                        if epoch == self.epoch & 0xFFFF {
                            self.snap_mark = Some((floor, count));
                            self.maybe_adopt_snapshot(now, ctx);
                        }
                    }
                    _ => {}
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::membership::View;
    use hades_sim::{ActorEngine, FaultPlan, LinkConfig, Network, SimRng};

    fn us(n: u64) -> Duration {
        Duration::from_micros(n)
    }

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    fn t_ms(n: u64) -> Time {
        Time::ZERO + ms(n)
    }

    /// A synthetic view schedule shared by all members: each entry is
    /// picked up once its install instant passes.
    fn view_schedule(views: Vec<(u32, Vec<u32>, Time)>) -> Rc<RefCell<AgentLog>> {
        Rc::new(RefCell::new(AgentLog {
            node: 0,
            heartbeats_seen: 0,
            suspicions: Vec::new(),
            views: views
                .into_iter()
                .map(|(number, members, installed_at)| View {
                    number,
                    members,
                    installed_at,
                })
                .collect(),
            primary_changes: Vec::new(),
            restarts: Vec::new(),
            rejoins: Vec::new(),
            transfers_served: 0,
            chunks_sent: 0,
            vc_messages_sent: 0,
            join_retries: 0,
            heartbeats_sent: 0,
            heartbeats_suppressed: 0,
        }))
    }

    #[allow(clippy::too_many_arguments)]
    fn run_group(
        style: ReplicaStyle,
        nodes: u32,
        plan: FaultPlan,
        views: Option<Rc<RefCell<AgentLog>>>,
        seed: u64,
        horizon: Duration,
        attempts: u32,
        omissions_permille: u32,
    ) -> Vec<Rc<RefCell<GroupLog>>> {
        let link = LinkConfig::reliable(us(10), us(40)).with_omissions(omissions_permille);
        let net = Network::homogeneous(nodes, link, SimRng::seed_from(seed)).with_fault_plan(plan);
        let mut rt = ActorEngine::new(net);
        let members: Vec<u32> = (0..nodes).collect();
        let peers: Vec<(u32, ActorId)> = members.iter().map(|n| (*n, ActorId(*n))).collect();
        let logs: Vec<_> = (0..nodes)
            .map(|n| {
                let (member, log) = ReplicaGroup::new(
                    GroupConfig {
                        group: 0,
                        node: NodeId(n),
                        members: members.clone(),
                        style,
                        request_period: ms(1),
                        first_request_at: t_ms(1),
                        source: None,
                        delta: us(60),
                        attempts,
                        peers: peers.clone(),
                    },
                    views.clone(),
                );
                rt.add_actor(Box::new(member));
                log
            })
            .collect();
        rt.run(Time::ZERO + horizon);
        logs
    }

    #[test]
    fn active_group_delivers_identical_order_and_unique_outputs() {
        let logs = run_group(
            ReplicaStyle::Active,
            3,
            FaultPlan::new(),
            None,
            1,
            ms(12),
            1,
            0,
        );
        let reference = logs[0].borrow().delivery_order();
        assert!(reference.len() >= 10, "requests flowed: {reference:?}");
        assert_eq!(reference, (0..reference.len() as u64).collect::<Vec<_>>());
        let mut unique = HashSet::new();
        let mut emissions = 0u64;
        for log in &logs {
            let log = log.borrow();
            assert_eq!(log.delivery_order(), reference, "node {} order", log.node);
            // Delivery exactly at ts + Δ.
            for (_, ts, at) in &log.delivered {
                assert_eq!(*at, *ts + us(60));
            }
            emissions += log.emitted.len() as u64;
            unique.extend(log.emitted.iter().map(|(id, _)| *id));
            assert!(log.suppressed > 0, "the voter saw redundant copies");
            assert_eq!(log.vote_mismatches, 0);
        }
        assert_eq!(unique.len() as u64, reference.len() as u64);
        assert_eq!(
            emissions,
            reference.len() as u64 * 3,
            "every member voted every request; the voter kept one copy each"
        );
        // All members executed everything: identical order-sensitive
        // state folds.
        let s0 = logs[0].borrow().final_state;
        assert!(logs.iter().all(|l| l.borrow().final_state == s0));
    }

    #[test]
    fn semi_active_leader_emits_followers_suppress() {
        let logs = run_group(
            ReplicaStyle::SemiActive,
            3,
            FaultPlan::new(),
            None,
            2,
            ms(12),
            1,
            0,
        );
        let leader = logs[0].borrow();
        let follower = logs[1].borrow();
        assert!(!leader.emitted.is_empty());
        assert_eq!(leader.suppressed, 0);
        assert!(follower.emitted.is_empty(), "followers never emit");
        assert!(follower.suppressed > 0, "followers executed silently");
        assert_eq!(
            leader.final_state, follower.final_state,
            "followers executed the leader's decided order"
        );
        assert_eq!(leader.delivery_order(), follower.delivery_order());
    }

    #[test]
    fn semi_active_crash_hands_over_and_preserves_order() {
        let crash = t_ms(5);
        let vc = t_ms(6); // the agreed exclusion view installs ~1 ms later
        let plan = FaultPlan::new().crash_at(NodeId(0), crash);
        let views = view_schedule(vec![(0, vec![0, 1, 2], Time::ZERO), (1, vec![1, 2], vc)]);
        let logs = run_group(
            ReplicaStyle::SemiActive,
            3,
            plan,
            Some(views),
            3,
            ms(20),
            1,
            0,
        );
        let new_leader = logs[1].borrow();
        assert_eq!(new_leader.handoffs.len(), 1, "node 1 took over");
        let (from, to, at) = new_leader.handoffs[0];
        assert_eq!((from, to), (0, 1));
        assert!(at >= vc);
        // Requests kept flowing: the new gateway resubmitted what the
        // dead leader never multicast, and ordering resumed.
        let follower = logs[2].borrow();
        assert_eq!(new_leader.delivery_order(), follower.delivery_order());
        assert_eq!(new_leader.final_state, follower.final_state);
        let expected: Vec<u64> = (0..new_leader.delivery_order().len() as u64).collect();
        assert_eq!(
            new_leader.delivery_order(),
            expected,
            "no request lost across the handoff"
        );
        assert!(new_leader.delivery_order().len() >= 15, "traffic sustained");
        // Exactly one emission per request across the group.
        let mut all: Vec<u64> = logs
            .iter()
            .flat_map(|l| {
                l.borrow()
                    .emitted
                    .iter()
                    .map(|(id, _)| *id)
                    .collect::<Vec<_>>()
            })
            .collect();
        all.sort_unstable();
        let deduped: Vec<u64> = {
            let mut d = all.clone();
            d.dedup();
            d
        };
        assert_eq!(all, deduped, "no duplicate outputs across the handoff");
    }

    #[test]
    fn returning_leader_second_tenure_does_not_collide_with_its_first() {
        // Leader node 0 crashes at 5 ms and is re-admitted at 16.03 ms —
        // inside the Δ-window of the request the interim leader submits
        // at its 16 ms tick, so the interim leader resigns before
        // ordering anything. Node 0's second tenure restarts its order
        // stream at sequence 0; followers that never saw an interim
        // order must re-anchor on the leadership change instead of
        // dropping seq 0 against the first tenure's numbering — the
        // order-sensitive state folds expose any silent divergence.
        let crash = t_ms(5);
        let restart = t_ms(15);
        let plan = FaultPlan::new().crash_window(NodeId(0), crash, restart);
        let views = view_schedule(vec![
            (0, vec![0, 1, 2], Time::ZERO),
            (1, vec![1, 2], t_ms(7)),
            (2, vec![0, 1, 2], t_ms(16) + us(30)),
        ]);
        let link = LinkConfig::reliable(us(10), us(40));
        let net = Network::homogeneous(3, link, SimRng::seed_from(17)).with_fault_plan(plan);
        let mut rt = ActorEngine::new(net);
        let members = vec![0, 1, 2];
        let peers: Vec<(u32, ActorId)> = members.iter().map(|n| (*n, ActorId(*n))).collect();
        let logs: Vec<_> = (0..3)
            .map(|n| {
                let (member, log) = ReplicaGroup::new(
                    GroupConfig {
                        group: 0,
                        node: NodeId(n),
                        members: members.clone(),
                        style: ReplicaStyle::SemiActive,
                        request_period: ms(15),
                        first_request_at: t_ms(1),
                        source: None,
                        delta: us(60),
                        attempts: 1,
                        peers: peers.clone(),
                    },
                    Some(views.clone()),
                );
                rt.add_actor(Box::new(member));
                log
            })
            .collect();
        rt.run(Time::ZERO + ms(50));
        let leader = logs[0].borrow();
        for n in [1usize, 2] {
            let follower = logs[n].borrow();
            assert_eq!(
                follower.final_state, leader.final_state,
                "node {n} silently diverged from the returning leader"
            );
        }
        assert!(leader.delivery_order().len() >= 3, "requests kept flowing");
    }

    #[test]
    fn passive_backup_takes_over_from_checkpoint() {
        let crash = t_ms(8);
        let vc = t_ms(9);
        let plan = FaultPlan::new().crash_at(NodeId(0), crash);
        let views = view_schedule(vec![(0, vec![0, 1, 2], Time::ZERO), (1, vec![1, 2], vc)]);
        let logs = run_group(
            ReplicaStyle::Passive {
                checkpoint_every: 3,
            },
            3,
            plan,
            Some(views),
            4,
            ms(20),
            1,
            0,
        );
        let old = logs[0].borrow();
        let new = logs[1].borrow();
        assert!(old.emitted.len() >= 6, "the primary served before dying");
        assert_eq!(new.handoffs.len(), 1);
        assert!(new.replayed > 0, "the takeover replayed the log tail");
        assert!(
            new.replayed <= 3 + 2,
            "replay bounded by one checkpoint interval (+ in-flight): {}",
            new.replayed
        );
        // The new primary kept serving after the takeover.
        assert!(new.emitted.len() >= 5, "service resumed: {:?}", new.emitted);
        // Re-emission past the watermark is possible and visible.
        let mut all: Vec<u64> = old
            .emitted
            .iter()
            .chain(new.emitted.iter())
            .map(|(id, _)| *id)
            .collect();
        let total = all.len();
        all.sort_unstable();
        all.dedup();
        assert!(total >= all.len(), "duplicates only ever add emissions");
    }

    #[test]
    fn group_run_is_deterministic() {
        let mk = || {
            let plan = FaultPlan::new().crash_at(NodeId(0), t_ms(5));
            let views = view_schedule(vec![
                (0, vec![0, 1, 2], Time::ZERO),
                (1, vec![1, 2], t_ms(6)),
            ]);
            let logs = run_group(
                ReplicaStyle::SemiActive,
                3,
                plan,
                Some(views),
                7,
                ms(18),
                1,
                0,
            );
            logs.iter().map(|l| l.borrow().clone()).collect::<Vec<_>>()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn omissions_are_masked_by_the_attempt_budget() {
        // 15% per-copy loss, 8 attempts: the chance of an unmasked miss
        // over the whole run is negligible, so every member still
        // delivers the identical sequence.
        let logs = run_group(
            ReplicaStyle::Active,
            3,
            FaultPlan::new(),
            None,
            9,
            ms(15),
            8,
            150,
        );
        let reference = logs[0].borrow().delivery_order();
        assert!(reference.len() >= 12);
        for log in &logs {
            assert_eq!(log.borrow().delivery_order(), reference);
        }
    }

    #[test]
    fn restarted_active_member_catches_up_to_the_full_fold() {
        // Node 1 is down for 7 ms of a 30 ms run — it misses ~7 requests
        // permanently (they were delivered while it was dead). Before the
        // catch-up protocol its order-sensitive state fold could never
        // equal the survivors' again; with the group fold pulled from the
        // leader at rejoin, every member ends with the identical state.
        let crash = t_ms(5);
        let restart = t_ms(12);
        let plan = FaultPlan::new().crash_window(NodeId(1), crash, restart);
        let logs = run_group(ReplicaStyle::Active, 3, plan, None, 21, ms(30), 1, 0);
        let joiner = logs[1].borrow();
        assert_eq!(joiner.restarts, vec![restart]);
        assert_eq!(joiner.catchups, 1, "the snapshot was adopted");
        let reference = logs[0].borrow();
        assert!(
            joiner.delivery_order().len() < reference.delivery_order().len(),
            "the blackout window is genuinely missing from its own deliveries"
        );
        assert_eq!(
            joiner.final_state, reference.final_state,
            "the adopted fold covers the blackout window"
        );
        assert_eq!(logs[2].borrow().final_state, reference.final_state);
    }

    #[test]
    fn restarted_semi_active_follower_defers_orders_until_adoption() {
        // A fast request stream (100 µs) floods the restart window with
        // decided orders: several arrive at the returning follower while
        // its snapshot pull is still in flight. Executing them before
        // adoption would fold ids the snapshot overwrite then silently
        // loses; the fix holds them back and settles the buffered stream
        // at adoption — every member must end on the identical fold.
        for seed in 0..6u64 {
            let crash = t_ms(5);
            let restart = t_ms(12);
            let plan = FaultPlan::new().crash_window(NodeId(1), crash, restart);
            let link = LinkConfig::reliable(us(10), us(40));
            let net =
                Network::homogeneous(3, link, SimRng::seed_from(100 + seed)).with_fault_plan(plan);
            let mut rt = ActorEngine::new(net);
            let members = vec![0, 1, 2];
            let peers: Vec<(u32, ActorId)> = members.iter().map(|n| (*n, ActorId(*n))).collect();
            let logs: Vec<_> = (0..3)
                .map(|n| {
                    let (member, log) = ReplicaGroup::new(
                        GroupConfig {
                            group: 0,
                            node: NodeId(n),
                            members: members.clone(),
                            style: ReplicaStyle::SemiActive,
                            request_period: us(100),
                            first_request_at: t_ms(1),
                            source: None,
                            delta: us(60),
                            attempts: 1,
                            peers: peers.clone(),
                        },
                        None,
                    );
                    rt.add_actor(Box::new(member));
                    log
                })
                .collect();
            rt.run(Time::ZERO + ms(30));
            let joiner = logs[1].borrow();
            assert_eq!(joiner.catchups, 1, "seed {seed}: snapshot adopted");
            let leader = logs[0].borrow();
            assert_eq!(
                joiner.final_state, leader.final_state,
                "seed {seed}: the returning follower's fold diverged"
            );
            assert_eq!(logs[2].borrow().final_state, leader.final_state);
        }
    }

    #[test]
    fn explicit_schedule_drives_submissions_and_ends_the_stream() {
        // A replayed-trace schedule: three bursts, then silence. The
        // gateway must submit exactly the scheduled instants and stop.
        let times: Vec<Time> = [1_000u64, 1_200, 5_000, 5_100, 5_200, 9_000]
            .iter()
            .map(|us_| Time::ZERO + us(*us_))
            .collect();
        let link = LinkConfig::reliable(us(10), us(40));
        let net = Network::homogeneous(3, link, SimRng::seed_from(3));
        let mut rt = ActorEngine::new(net);
        let members = vec![0, 1, 2];
        let peers: Vec<(u32, ActorId)> = members.iter().map(|n| (*n, ActorId(*n))).collect();
        let schedule: Rc<RefCell<dyn RequestSource>> =
            Rc::new(RefCell::new(FixedSchedule::new(times.clone())));
        let logs: Vec<_> = (0..3)
            .map(|n| {
                let (member, log) = ReplicaGroup::new(
                    GroupConfig {
                        group: 0,
                        node: NodeId(n),
                        members: members.clone(),
                        style: ReplicaStyle::Active,
                        request_period: Duration::ZERO,
                        first_request_at: Time::ZERO,
                        source: Some(schedule.clone()),
                        delta: us(60),
                        attempts: 1,
                        peers: peers.clone(),
                    },
                    None,
                );
                rt.add_actor(Box::new(member));
                log
            })
            .collect();
        rt.run(Time::ZERO + ms(20));
        let gateway = logs[0].borrow();
        assert_eq!(
            gateway
                .submitted
                .iter()
                .map(|(_, at)| *at)
                .collect::<Vec<_>>(),
            times,
            "one submission per scheduled instant, at that instant"
        );
        let reference = gateway.delivery_order();
        assert_eq!(reference, vec![0, 1, 2, 3, 4, 5]);
        for log in &logs {
            assert_eq!(log.borrow().delivery_order(), reference);
        }
    }

    #[test]
    fn fixed_schedule_throttle_is_absolute_against_nominal_and_resumable() {
        let t = |n: u64| Time::ZERO + us(n);
        let mut s = FixedSchedule::new(vec![t(100), t(200), t(300), t(400)]);
        // Half rate from 150 µs: the remaining nominal gaps (100 µs)
        // replay from now at 200 µs each.
        s.throttle(t(150), 500);
        assert_eq!(s.next_submission_after(t(150)), Some(t(350)));
        // Re-asserting the SAME rate later is a no-op — a driver doing
        // so every tick must not perpetually push the stream out.
        s.throttle(t(250), 500);
        assert_eq!(s.next_submission_after(t(250)), Some(t(350)));
        // Re-issuing a retune must NOT compound: back to nominal means
        // nominal 100 µs gaps again, not half of the stretched ones.
        s.throttle(t(360), 1000);
        assert_eq!(s.next_submission_after(t(360)), Some(t(460)));
        assert_eq!(s.next_submission_after(t(460)), Some(t(560)));
        // Pause parks the tail; a later retune revives it.
        s.throttle(t(470), 0);
        assert_eq!(s.next_submission_after(t(470)), None);
        assert_eq!(
            s.submissions_through(t(10_000)),
            3,
            "paused tail not issued"
        );
        s.throttle(t(600), 1000);
        assert_eq!(s.next_submission_after(t(600)), Some(t(700)));
    }

    #[test]
    fn subsequence_consistency_helper() {
        let mut log = GroupLog::new(0, 0);
        log.delivered = vec![
            (0, Time::ZERO, Time::ZERO),
            (2, Time::ZERO, Time::ZERO),
            (3, Time::ZERO, Time::ZERO),
        ];
        assert!(log.order_consistent_with(&[0, 1, 2, 3]));
        assert!(!log.order_consistent_with(&[0, 3, 2]));
    }
}
