//! Dependency tracking and orphan elimination (\[NMT97\]).
//!
//! When a failure invalidates a computation (a crashed node's unfinished
//! task instance, a message that never arrived), every computation that
//! consumed its effects becomes an *orphan* and must be eliminated before
//! it propagates inconsistent state — "managing dependencies is a key
//! problem in fault-tolerant distributed algorithms". The dispatcher uses
//! this service together with its precedence bookkeeping to implement
//! low-cost orphan detection (Section 3.3).

use std::collections::{BTreeSet, HashMap, HashSet};

/// A tracked computation: `(task, instance)` in dispatcher terms, but the
/// tracker is generic over whatever u64 pairs the caller uses.
pub type NodeKey = (u32, u64);

/// The dependency graph: edges point from a computation to the
/// computations that *depend on* it (consumed its outputs).
///
/// # Examples
///
/// ```
/// use hades_services::DependencyTracker;
///
/// let mut d = DependencyTracker::new();
/// d.record((0, 0));
/// d.record((1, 0));
/// d.add_dependency((0, 0), (1, 0)); // task 1 consumed task 0's output
/// let orphans = d.invalidate((0, 0));
/// assert_eq!(orphans, vec![(1, 0)]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DependencyTracker {
    dependents: HashMap<NodeKey, BTreeSet<NodeKey>>,
    known: HashSet<NodeKey>,
    invalidated: HashSet<NodeKey>,
}

impl DependencyTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        DependencyTracker::default()
    }

    /// Registers a computation.
    pub fn record(&mut self, node: NodeKey) {
        self.known.insert(node);
    }

    /// Records that `consumer` depends on `producer` (read its message,
    /// its checkpoint, its resource state, ...). Unknown endpoints are
    /// registered implicitly.
    pub fn add_dependency(&mut self, producer: NodeKey, consumer: NodeKey) {
        self.known.insert(producer);
        self.known.insert(consumer);
        self.dependents
            .entry(producer)
            .or_default()
            .insert(consumer);
    }

    /// Whether a computation has been invalidated (directly or as an
    /// orphan).
    pub fn is_invalidated(&self, node: NodeKey) -> bool {
        self.invalidated.contains(&node)
    }

    /// Number of registered computations.
    pub fn len(&self) -> usize {
        self.known.len()
    }

    /// Whether nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.known.is_empty()
    }

    /// Direct dependents of a computation, in key order.
    pub fn dependents_of(&self, node: NodeKey) -> Vec<NodeKey> {
        self.dependents
            .get(&node)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Invalidates `root` and returns the transitively orphaned
    /// computations (excluding `root` itself), in deterministic order.
    /// Already-invalidated computations are not reported twice.
    pub fn invalidate(&mut self, root: NodeKey) -> Vec<NodeKey> {
        let mut orphans = Vec::new();
        let mut frontier = vec![root];
        self.invalidated.insert(root);
        while let Some(n) = frontier.pop() {
            if let Some(deps) = self.dependents.get(&n) {
                for d in deps.clone() {
                    if self.invalidated.insert(d) {
                        orphans.push(d);
                        frontier.push(d);
                    }
                }
            }
            frontier.sort_unstable();
            frontier.dedup();
        }
        orphans.sort_unstable();
        orphans
    }

    /// Computations that survive (registered, never invalidated).
    pub fn survivors(&self) -> Vec<NodeKey> {
        let mut v: Vec<NodeKey> = self
            .known
            .iter()
            .filter(|n| !self.invalidated.contains(*n))
            .copied()
            .collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalidation_cascades_transitively() {
        let mut d = DependencyTracker::new();
        // 0 → 1 → 2, 0 → 3; 4 independent.
        d.add_dependency((0, 0), (1, 0));
        d.add_dependency((1, 0), (2, 0));
        d.add_dependency((0, 0), (3, 0));
        d.record((4, 0));
        let orphans = d.invalidate((0, 0));
        assert_eq!(orphans, vec![(1, 0), (2, 0), (3, 0)]);
        assert!(d.is_invalidated((2, 0)));
        assert_eq!(d.survivors(), vec![(4, 0)]);
    }

    #[test]
    fn diamond_dependency_reported_once() {
        let mut d = DependencyTracker::new();
        // 0 → 1, 0 → 2, 1 → 3, 2 → 3.
        d.add_dependency((0, 0), (1, 0));
        d.add_dependency((0, 0), (2, 0));
        d.add_dependency((1, 0), (3, 0));
        d.add_dependency((2, 0), (3, 0));
        let orphans = d.invalidate((0, 0));
        assert_eq!(orphans, vec![(1, 0), (2, 0), (3, 0)]);
    }

    #[test]
    fn leaf_invalidation_orphans_nothing() {
        let mut d = DependencyTracker::new();
        d.add_dependency((0, 0), (1, 0));
        let orphans = d.invalidate((1, 0));
        assert!(orphans.is_empty());
        assert!(d.is_invalidated((1, 0)));
        assert!(!d.is_invalidated((0, 0)));
    }

    #[test]
    fn repeated_invalidation_is_idempotent() {
        let mut d = DependencyTracker::new();
        d.add_dependency((0, 0), (1, 0));
        assert_eq!(d.invalidate((0, 0)), vec![(1, 0)]);
        assert!(
            d.invalidate((0, 0)).is_empty(),
            "second call reports nothing"
        );
    }

    #[test]
    fn instances_are_distinct() {
        let mut d = DependencyTracker::new();
        d.add_dependency((0, 0), (1, 0));
        d.add_dependency((0, 1), (1, 1));
        let orphans = d.invalidate((0, 0));
        assert_eq!(orphans, vec![(1, 0)]);
        assert!(!d.is_invalidated((1, 1)), "other instance unaffected");
    }

    #[test]
    fn direct_dependents_query() {
        let mut d = DependencyTracker::new();
        d.add_dependency((0, 0), (2, 0));
        d.add_dependency((0, 0), (1, 0));
        assert_eq!(d.dependents_of((0, 0)), vec![(1, 0), (2, 0)]);
        assert!(d.dependents_of((9, 9)).is_empty());
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
    }
}
