//! Replication services: passive, active and semi-active (\[Pol96\]).
//!
//! HADES promises transparent fault tolerance through replication
//! (Section 2.2.1, item ii). The three classic styles trade overhead
//! against failover latency:
//!
//! * **Active** — all replicas execute every request and vote; a crash is
//!   masked instantly (zero failover) at the price of `n×` execution and
//!   per-request voting traffic.
//! * **Semi-active** — all replicas execute but only the leader emits
//!   output; a follower takes over after crash *detection*, with no state
//!   transfer.
//! * **Passive** — only the primary executes, checkpointing its state to
//!   backups every `k` requests; failover pays detection plus replay of
//!   the requests since the last checkpoint.

use crate::detect::DetectorConfig;
use hades_sim::{Network, NodeId};
use hades_time::{Duration, Time};

/// The replication style to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicaStyle {
    /// All replicas execute; output by majority vote.
    Active,
    /// All replicas execute; only the leader outputs.
    SemiActive,
    /// Primary executes; state checkpointed every `checkpoint_every`
    /// requests.
    Passive {
        /// Requests between checkpoints.
        checkpoint_every: u32,
    },
}

impl ReplicaStyle {
    /// Short label for reports.
    pub fn name(&self) -> &'static str {
        match self {
            ReplicaStyle::Active => "active",
            ReplicaStyle::SemiActive => "semi-active",
            ReplicaStyle::Passive { .. } => "passive",
        }
    }
}

/// Measured behaviour of one replicated run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicationOutcome {
    /// Style simulated.
    pub style_name: &'static str,
    /// Requests processed with correct output.
    pub served: u64,
    /// Requests whose response was delayed by the failover (served after
    /// re-execution or takeover, not lost).
    pub delayed_by_failover: u64,
    /// Time from the crash until the group produced output again
    /// (zero when no crash or when masking is instantaneous).
    pub failover_latency: Duration,
    /// Total replica-execution work units (redundancy overhead).
    pub execution_work: u64,
    /// Protocol messages exchanged (votes, checkpoints, heartbeats are
    /// counted via the detector bound, not simulated per-beat).
    pub messages: u64,
    /// Final state value agreed by the surviving replicas.
    pub final_state: u64,
}

/// A deterministic replicated-server simulation.
///
/// The replicated service is a state machine `state += request`; requests
/// arrive at a fixed period; the crash of one replica is injected through
/// the network's fault plan. Determinism makes the three styles directly
/// comparable (experiment E10).
///
/// # Examples
///
/// ```
/// use hades_services::{ReplicaStyle, ReplicationSim};
/// use hades_sim::{FaultPlan, LinkConfig, Network, NodeId, SimRng};
/// use hades_time::{Duration, Time};
///
/// let plan = FaultPlan::new().crash_at(NodeId(0), Time::ZERO + Duration::from_millis(5));
/// let net = Network::homogeneous(
///     3,
///     LinkConfig::reliable(Duration::from_micros(5), Duration::from_micros(20)),
///     SimRng::seed_from(1),
/// ).with_fault_plan(plan);
/// let out = ReplicationSim::new(ReplicaStyle::Active, 20, Duration::from_millis(1))
///     .execute(net);
/// assert_eq!(out.served, 20, "active replication masks the crash");
/// assert_eq!(out.failover_latency, Duration::ZERO);
/// ```
#[derive(Debug)]
pub struct ReplicationSim {
    style: ReplicaStyle,
    requests: u64,
    request_period: Duration,
    detector: DetectorConfig,
}

impl ReplicationSim {
    /// Creates a run: `requests` requests, one every `request_period`.
    pub fn new(style: ReplicaStyle, requests: u64, request_period: Duration) -> Self {
        ReplicationSim {
            style,
            requests,
            request_period,
            detector: DetectorConfig {
                heartbeat_period: request_period / 2,
                clock_precision: Duration::from_micros(10),
                horizon: request_period.saturating_mul(requests + 4),
            },
        }
    }

    /// Overrides the failure-detector configuration used for passive and
    /// semi-active failover.
    pub fn with_detector(mut self, detector: DetectorConfig) -> Self {
        self.detector = detector;
        self
    }

    /// Runs the scenario on `net`. The fault plan's crash of the
    /// lowest-numbered crashed replica (if any) drives the failover path.
    pub fn execute(self, net: Network) -> ReplicationOutcome {
        let n = net.node_count() as u64;
        let crash = net.fault_plan().crashes().first().copied();
        let detection_latency = self.detector.detection_bound(&net);
        let mut state: u64 = 0;
        let mut served = 0u64;
        let mut delayed = 0u64;
        let mut work = 0u64;
        let mut messages = 0u64;
        let mut failover_latency = Duration::ZERO;
        let mut failover_done_at: Option<Time> = None;
        let crashed_node_is_leader = crash.map(|(node, _)| node == NodeId(0)).unwrap_or(false);
        let mut last_checkpoint_state = 0u64;
        let mut since_checkpoint: u32 = 0;
        for i in 0..self.requests {
            let t = Time::ZERO + self.request_period.saturating_mul(i);
            state += i + 1;
            let alive = |node: u32| {
                crash
                    .map(|(c, at)| !(NodeId(node) == c && t >= at))
                    .unwrap_or(true)
            };
            let alive_count = (0..n as u32).filter(|x| alive(*x)).count() as u64;
            match self.style {
                ReplicaStyle::Active => {
                    // Every live replica executes and votes.
                    work += alive_count;
                    messages += alive_count * (alive_count - 1);
                    // Majority of n masks one crash instantly.
                    served += 1;
                }
                ReplicaStyle::SemiActive => {
                    work += alive_count;
                    messages += alive_count - 1; // leader's output notification
                    if crashed_node_is_leader && !alive(0) {
                        // Output resumes once the takeover happened.
                        let (_, at) = crash.expect("crashed leader");
                        let resumed = at + detection_latency;
                        if t < resumed {
                            delayed += 1;
                        }
                        if failover_done_at.is_none() {
                            failover_done_at = Some(resumed);
                            failover_latency = detection_latency;
                        }
                    }
                    served += 1;
                }
                ReplicaStyle::Passive { checkpoint_every } => {
                    if alive(0) || !crashed_node_is_leader {
                        // Primary executes alone.
                        work += 1;
                        since_checkpoint += 1;
                        if since_checkpoint >= checkpoint_every {
                            messages += n - 1; // checkpoint multicast
                            last_checkpoint_state = state;
                            since_checkpoint = 0;
                        }
                        served += 1;
                    } else {
                        // Primary dead: the backup must detect, restore the
                        // checkpoint and replay the gap.
                        let (_, at) = crash.expect("crashed primary");
                        let replayed = state - last_checkpoint_state;
                        let resumed = at
                            + detection_latency
                            + self.request_period.saturating_mul(replayed.min(8) / 4);
                        if t < resumed {
                            delayed += 1;
                        }
                        if failover_done_at.is_none() {
                            failover_done_at = Some(resumed);
                            failover_latency = resumed - at;
                        }
                        work += 2; // backup executes + replays amortised
                        served += 1;
                    }
                }
            }
        }
        ReplicationOutcome {
            style_name: self.style.name(),
            served,
            delayed_by_failover: delayed,
            failover_latency,
            execution_work: work,
            messages,
            final_state: state,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hades_sim::{FaultPlan, LinkConfig, SimRng};

    fn us(n: u64) -> Duration {
        Duration::from_micros(n)
    }

    fn net(plan: FaultPlan, seed: u64) -> Network {
        Network::homogeneous(
            3,
            LinkConfig::reliable(us(5), us(20)),
            SimRng::seed_from(seed),
        )
        .with_fault_plan(plan)
    }

    fn crash_leader_at_ms(ms: u64) -> FaultPlan {
        FaultPlan::new().crash_at(NodeId(0), Time::ZERO + Duration::from_millis(ms))
    }

    const PERIOD: Duration = Duration::from_millis(1);

    #[test]
    fn active_masks_crash_with_zero_failover() {
        let out = ReplicationSim::new(ReplicaStyle::Active, 20, PERIOD)
            .execute(net(crash_leader_at_ms(5), 1));
        assert_eq!(out.served, 20);
        assert_eq!(out.delayed_by_failover, 0);
        assert_eq!(out.failover_latency, Duration::ZERO);
    }

    #[test]
    fn active_costs_n_fold_work() {
        let healthy =
            ReplicationSim::new(ReplicaStyle::Active, 10, PERIOD).execute(net(FaultPlan::new(), 2));
        assert_eq!(healthy.execution_work, 30, "3 replicas x 10 requests");
        let passive = ReplicationSim::new(
            ReplicaStyle::Passive {
                checkpoint_every: 4,
            },
            10,
            PERIOD,
        )
        .execute(net(FaultPlan::new(), 2));
        assert_eq!(passive.execution_work, 10, "primary only");
        assert!(passive.messages < healthy.messages);
    }

    #[test]
    fn semi_active_failover_is_detection_bound() {
        let out = ReplicationSim::new(ReplicaStyle::SemiActive, 20, PERIOD)
            .execute(net(crash_leader_at_ms(5), 3));
        assert!(out.failover_latency > Duration::ZERO);
        assert!(out.delayed_by_failover > 0);
        assert_eq!(out.served, 20, "no request lost, some delayed");
    }

    #[test]
    fn passive_failover_exceeds_semi_active() {
        let semi = ReplicationSim::new(ReplicaStyle::SemiActive, 20, PERIOD)
            .execute(net(crash_leader_at_ms(5), 4));
        let passive = ReplicationSim::new(
            ReplicaStyle::Passive {
                checkpoint_every: 4,
            },
            20,
            PERIOD,
        )
        .execute(net(crash_leader_at_ms(5), 4));
        assert!(
            passive.failover_latency >= semi.failover_latency,
            "passive {} < semi {}",
            passive.failover_latency,
            semi.failover_latency
        );
    }

    #[test]
    fn crash_of_follower_is_free_for_passive() {
        let plan = FaultPlan::new().crash_at(NodeId(2), Time::ZERO + Duration::from_millis(5));
        let out = ReplicationSim::new(
            ReplicaStyle::Passive {
                checkpoint_every: 4,
            },
            20,
            PERIOD,
        )
        .execute(net(plan, 5));
        assert_eq!(out.failover_latency, Duration::ZERO);
        assert_eq!(out.delayed_by_failover, 0);
    }

    #[test]
    fn all_styles_reach_same_final_state() {
        let styles = [
            ReplicaStyle::Active,
            ReplicaStyle::SemiActive,
            ReplicaStyle::Passive {
                checkpoint_every: 4,
            },
        ];
        let finals: Vec<u64> = styles
            .iter()
            .map(|s| {
                ReplicationSim::new(*s, 15, PERIOD)
                    .execute(net(crash_leader_at_ms(7), 6))
                    .final_state
            })
            .collect();
        assert_eq!(finals[0], finals[1]);
        assert_eq!(finals[1], finals[2]);
        assert_eq!(finals[0], (1..=15).sum::<u64>());
    }

    #[test]
    fn style_names() {
        assert_eq!(ReplicaStyle::Active.name(), "active");
        assert_eq!(ReplicaStyle::SemiActive.name(), "semi-active");
        assert_eq!(
            ReplicaStyle::Passive {
                checkpoint_every: 1
            }
            .name(),
            "passive"
        );
    }
}
