//! Synchronous flooding consensus tolerating crash faults.
//!
//! The consensus service of Figure 1. On a synchronous substrate the
//! classic FloodSet algorithm decides in `f + 1` rounds despite up to `f`
//! crash failures: each round, every correct node broadcasts the set of
//! values it has seen; after `f + 1` rounds all correct nodes have the same
//! set and decide by a deterministic rule (minimum value). Rounds are paced
//! by the synchronized clocks: round `r` spans
//! `[r · (δmax + ε), (r+1) · (δmax + ε))`.

use hades_sim::{Delivery, Network, NodeId};
use hades_time::{Duration, Time};
use std::collections::{BTreeMap, BTreeSet};

/// Configuration of one consensus instance.
#[derive(Debug, Clone)]
pub struct ConsensusConfig {
    /// Crash-fault bound `f`; the protocol runs `f + 1` rounds.
    pub f: u32,
    /// Initial proposal of each node (index = node id).
    pub proposals: Vec<u64>,
    /// Start time of round 0.
    pub start: Time,
}

/// Result of a consensus execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConsensusOutcome {
    /// Decision of every node that survived to the end.
    pub decisions: BTreeMap<u32, u64>,
    /// When the protocol terminated (end of round `f`).
    pub decided_at: Time,
    /// Total messages sent.
    pub messages: u64,
    /// Round duration used.
    pub round_length: Duration,
}

impl ConsensusOutcome {
    /// Agreement: all surviving nodes decided the same value.
    pub fn agreement_holds(&self) -> bool {
        let mut values = self.decisions.values();
        match values.next() {
            None => true,
            Some(first) => values.all(|v| v == first),
        }
    }

    /// Validity: the decision is one of the given proposals.
    pub fn validity_holds(&self, proposals: &[u64]) -> bool {
        self.decisions.values().all(|v| proposals.contains(v))
    }

    /// The agreed value, if any node survived.
    pub fn decided_value(&self) -> Option<u64> {
        self.decisions.values().next().copied()
    }
}

/// The FloodSet consensus simulation.
///
/// # Examples
///
/// ```
/// use hades_services::{ConsensusConfig, FloodConsensus};
/// use hades_sim::{LinkConfig, Network, SimRng};
/// use hades_time::{Duration, Time};
///
/// let net = Network::homogeneous(
///     4,
///     LinkConfig::reliable(Duration::from_micros(5), Duration::from_micros(20)),
///     SimRng::seed_from(1),
/// );
/// let out = FloodConsensus::new(ConsensusConfig {
///     f: 1,
///     proposals: vec![30, 10, 20, 40],
///     start: Time::ZERO,
/// })
/// .execute(net);
/// assert!(out.agreement_holds());
/// assert_eq!(out.decided_value(), Some(10), "minimum rule");
/// ```
#[derive(Debug)]
pub struct FloodConsensus {
    cfg: ConsensusConfig,
}

impl FloodConsensus {
    /// Creates an instance.
    pub fn new(cfg: ConsensusConfig) -> Self {
        FloodConsensus { cfg }
    }

    /// Runs `f + 1` synchronous rounds over `net` and returns the outcome.
    ///
    /// # Panics
    ///
    /// Panics if `proposals.len()` differs from the network's node count.
    pub fn execute(self, mut net: Network) -> ConsensusOutcome {
        let n = net.node_count();
        assert_eq!(
            self.cfg.proposals.len(),
            n as usize,
            "one proposal per node required"
        );
        let round_length = net.max_delay() + Duration::from_micros(1);
        let mut known: Vec<BTreeSet<u64>> = self
            .cfg
            .proposals
            .iter()
            .map(|v| BTreeSet::from([*v]))
            .collect();
        let mut messages = 0u64;
        let mut round_start = self.cfg.start;
        for _round in 0..=self.cfg.f {
            // Every node alive at round start floods its current set; the
            // network drops messages from nodes that crash mid-round.
            let mut inboxes: Vec<BTreeSet<u64>> = known.clone();
            for sender in 0..n {
                if net.fault_plan().is_crashed(NodeId(sender), round_start) {
                    continue;
                }
                let payload = known[sender as usize].clone();
                for receiver in 0..n {
                    if receiver == sender {
                        continue;
                    }
                    messages += 1;
                    if let Delivery::At(_) =
                        net.transit(NodeId(sender), NodeId(receiver), round_start)
                    {
                        inboxes[receiver as usize].extend(payload.iter().copied());
                    }
                }
            }
            known = inboxes;
            round_start += round_length;
        }
        let decided_at = round_start;
        let decisions: BTreeMap<u32, u64> = (0..n)
            .filter(|i| !net.fault_plan().is_crashed(NodeId(*i), decided_at))
            .filter_map(|i| known[i as usize].first().map(|v| (i, *v)))
            .collect();
        ConsensusOutcome {
            decisions,
            decided_at,
            messages,
            round_length,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hades_sim::{FaultPlan, LinkConfig, SimRng};

    fn us(n: u64) -> Duration {
        Duration::from_micros(n)
    }

    fn net(n: u32, plan: FaultPlan, seed: u64) -> Network {
        Network::homogeneous(
            n,
            LinkConfig::reliable(us(5), us(20)),
            SimRng::seed_from(seed),
        )
        .with_fault_plan(plan)
    }

    fn cfg(f: u32, proposals: Vec<u64>) -> ConsensusConfig {
        ConsensusConfig {
            f,
            proposals,
            start: Time::ZERO,
        }
    }

    #[test]
    fn all_correct_nodes_agree_on_minimum() {
        let out =
            FloodConsensus::new(cfg(1, vec![5, 3, 9, 7])).execute(net(4, FaultPlan::new(), 1));
        assert!(out.agreement_holds());
        assert!(out.validity_holds(&[5, 3, 9, 7]));
        assert_eq!(out.decided_value(), Some(3));
        assert_eq!(out.decisions.len(), 4);
    }

    #[test]
    fn tolerates_f_crashes_mid_protocol() {
        // Node 1 (holder of the minimum) crashes after round 0 has been
        // sent: its value has already flooded, so agreement includes it.
        let plan = FaultPlan::new().crash_at(NodeId(1), Time::from_nanos(30_000));
        let out = FloodConsensus::new(cfg(1, vec![5, 1, 9, 7])).execute(net(4, plan, 2));
        assert!(out.agreement_holds());
        assert_eq!(out.decisions.len(), 3, "crashed node does not decide");
        assert_eq!(out.decided_value(), Some(1));
    }

    #[test]
    fn crash_before_start_excludes_value() {
        // Node 1 is dead from the outset: its proposal never circulates.
        let plan = FaultPlan::new().crash_at(NodeId(1), Time::ZERO);
        let out = FloodConsensus::new(cfg(1, vec![5, 1, 9, 7])).execute(net(4, plan, 3));
        assert!(out.agreement_holds());
        assert_eq!(out.decided_value(), Some(5));
    }

    #[test]
    fn f_plus_one_rounds_run() {
        let out =
            FloodConsensus::new(cfg(2, vec![4, 2, 6, 8, 1])).execute(net(5, FaultPlan::new(), 4));
        // 3 rounds × 5 senders × 4 receivers = 60 messages.
        assert_eq!(out.messages, 60);
        assert_eq!(out.decided_at, Time::ZERO + (us(21)) * 3);
    }

    #[test]
    fn agreement_despite_staggered_crashes() {
        // One crash per round boundary with f = 2: protocol still safe.
        let plan = FaultPlan::new()
            .crash_at(NodeId(0), Time::from_nanos(21_000))
            .crash_at(NodeId(1), Time::from_nanos(42_000));
        let out = FloodConsensus::new(cfg(2, vec![9, 8, 3, 5, 7])).execute(net(5, plan, 5));
        assert!(out.agreement_holds());
        assert!(out.validity_holds(&[9, 8, 3, 5, 7]));
        assert_eq!(out.decisions.len(), 3);
    }

    #[test]
    #[should_panic(expected = "one proposal per node")]
    fn proposal_count_mismatch_panics() {
        let _ = FloodConsensus::new(cfg(1, vec![1, 2])).execute(net(4, FaultPlan::new(), 6));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = FloodConsensus::new(cfg(1, vec![5, 3, 9, 7])).execute(net(4, FaultPlan::new(), 9));
        let b = FloodConsensus::new(cfg(1, vec![5, 3, 9, 7])).execute(net(4, FaultPlan::new(), 9));
        assert_eq!(a, b);
    }
}
