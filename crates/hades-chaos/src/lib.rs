//! Invariant-guided chaos testing for HADES cluster specs.
//!
//! The deterministic simulation makes every cluster run a pure function
//! of its spec, and the online watchdog ([`hades_telemetry::monitor`])
//! turns protocol invariants — view agreement, bounded failover, no
//! duplicate outputs, no stalled transfers, no silent groups — into a
//! machine-checkable oracle. This crate closes the loop into a fuzzer:
//!
//! * [`program::ChaosProgram`] is a *typed* fault/load script over the
//!   full gray-failure vocabulary of the runtime control plane —
//!   crash windows, asymmetric link cuts, degraded links, slow nodes,
//!   clock skew, detection-triggered common-cause bursts, workload
//!   throttles and service retire/admit;
//! * [`program::ProgramDriver`] runs a program as a reactive
//!   [`hades_cluster::ScenarioDriver`] against any spec;
//! * [`fuzzer::ChaosFuzzer`] generates random programs from a seeded
//!   [`hades_sim::SimRng`], runs each with [`Watchdog::standard`]
//!   armed, treats any raised violation as a counterexample, and
//!   delta-debugs it — drop ops, narrow windows, shift instants
//!   earlier, relabel nodes downward — into a locally minimal
//!   *canonical* program that still reproduces the violation;
//!   campaigns deduplicate counterexamples whose canonical programs
//!   are isomorphic, so they report distinct bugs, not distinct seeds;
//! * [`corpus`] serializes found scenarios as one-line JSON entries so
//!   regressions replay from a committed corpus file. A scenario
//!   graduates *out* of the corpus when the bug it pinned is fixed —
//!   its line must be removed because it no longer reproduces.
//!
//! Everything is deterministic: the same fuzzer seed yields the same
//! programs, the same violations and byte-identical JSONL.
//!
//! [`Watchdog::standard`]: hades_telemetry::monitor::Watchdog::standard
//!
//! # Examples
//!
//! Replaying a committed counterexample (a fast clock on the store
//! leader answers every request late — a pure gray failure) and
//! checking its invariant violation fires:
//!
//! ```
//! use hades_chaos::corpus::CorpusScenario;
//! use hades_chaos::program::{ChaosOp, ChaosProgram};
//! use hades_chaos::fuzzer::ViolationKey;
//! use hades_time::{Duration, Time};
//!
//! let scenario = CorpusScenario {
//!     name: "skewed-leader-silence".into(),
//!     nodes: 4,
//!     horizon: Duration::from_millis(100),
//!     seed: 7,
//!     expect: ViolationKey { monitor: "silent-group".into(), node: None, group: Some(0) },
//!     program: ChaosProgram {
//!         ops: vec![ChaosOp::Skew { node: 0, at: Time::ZERO, drift_ppb: 8_799_611 }],
//!     },
//! };
//! assert!(scenario.reproduces(), "the committed counterexample still fires");
//! ```

#![warn(missing_docs)]

pub mod corpus;
pub mod fuzzer;
pub mod program;
pub mod specs;

pub use corpus::{parse_corpus, CorpusScenario};
pub use fuzzer::{Campaign, ChaosFuzzer, Counterexample, FuzzConfig, ViolationKey};
pub use program::{ChaosOp, ChaosProgram, ProgramDriver};
pub use specs::standard_spec;
