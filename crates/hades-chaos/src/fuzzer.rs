//! Random program generation, the violation oracle and the shrinker.
//!
//! [`ChaosFuzzer`] drives the loop: generate a random [`ChaosProgram`]
//! from a seeded [`SimRng`], run it against a fresh spec with
//! [`Watchdog::standard`] armed, and treat every raised
//! [`Violation`] as a counterexample. Because the whole engine is
//! deterministic, `(fuzzer seed, spec seed)` pins the entire campaign:
//! the same programs, the same violations, byte-identical JSONL.
//!
//! Found counterexamples are delta-debugged by [`ChaosFuzzer::shrink`]:
//! first drop whole ops to a fixpoint (local minimality — removing any
//! single remaining op loses the violation), then narrow what is left
//! (halve long fault windows, shed burst victims) while the violation
//! keeps firing.

use hades_cluster::ClusterSpec;
use hades_sim::SimRng;
use hades_telemetry::monitor::{violations_to_jsonl, Violation, Watchdog};
use hades_time::{Duration, Time};

use crate::program::{ChaosOp, ChaosProgram, ProgramDriver};

/// The identity of a violation, stable across runs: which monitor
/// fired, against which node and/or group. The instant and message are
/// deliberately excluded so a shrunk program that moves the firing
/// time still counts as reproducing the same bug.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ViolationKey {
    /// Monitor name (e.g. `"stalled-transfer"`).
    pub monitor: String,
    /// The node charged with the violation, if the monitor names one.
    pub node: Option<u32>,
    /// The group charged with the violation, if the monitor names one.
    pub group: Option<u32>,
}

impl ViolationKey {
    /// The key of a concrete violation.
    pub fn of(v: &Violation) -> ViolationKey {
        ViolationKey {
            monitor: v.monitor.clone(),
            node: v.node,
            group: v.group,
        }
    }

    /// Whether `v` is an instance of this key.
    pub fn matches(&self, v: &Violation) -> bool {
        v.monitor == self.monitor
            && v.node == self.node
            && (self.group.is_none() || v.group == self.group)
    }
}

/// Shape of the fuzzing target and of the generated programs.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Cluster size of each generated scenario.
    pub nodes: u32,
    /// Horizon of each run.
    pub horizon: Duration,
    /// Seed of the *spec* (network jitter, workload think times) — the
    /// fuzzer's own seed, passed separately, drives program generation.
    pub spec_seed: u64,
    /// Upper bound on ops per generated program (at least 2 are drawn).
    pub max_ops: usize,
    /// Service names the load-level ops (throttle/retire/admit) target.
    pub services: Vec<String>,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            nodes: 4,
            horizon: Duration::from_millis(100),
            spec_seed: 7,
            max_ops: 6,
            services: vec!["store".to_string()],
        }
    }
}

/// One found-and-minimized counterexample from a campaign.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// Which generated program (0-based) tripped the watchdog.
    pub index: usize,
    /// The program as generated.
    pub program: ChaosProgram,
    /// The delta-debugged program: still reproduces `key`, and
    /// removing any single op no longer does.
    pub minimized: ChaosProgram,
    /// The violation identity used to steer the shrink.
    pub key: ViolationKey,
    /// Every violation the original program raised.
    pub violations: Vec<Violation>,
}

/// The outcome of a fuzzing campaign.
#[derive(Debug, Clone, Default)]
pub struct Campaign {
    /// How many programs were generated and run.
    pub programs_run: usize,
    /// The counterexamples found, in generation order.
    pub counterexamples: Vec<Counterexample>,
}

impl Campaign {
    /// Every violation of every counterexample as schema-checked JSONL
    /// (the same line format `hades_telemetry::monitor` exports).
    pub fn violations_jsonl(&self) -> String {
        let mut out = String::new();
        for cx in &self.counterexamples {
            out.push_str(&violations_to_jsonl(&cx.violations));
        }
        out
    }
}

/// Invariant-guided scenario fuzzer over a spec factory.
pub struct ChaosFuzzer {
    cfg: FuzzConfig,
    factory: Box<dyn Fn() -> ClusterSpec>,
    rng: SimRng,
}

impl std::fmt::Debug for ChaosFuzzer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosFuzzer")
            .field("cfg", &self.cfg)
            .finish_non_exhaustive()
    }
}

impl ChaosFuzzer {
    /// Builds a fuzzer over an arbitrary plan-free spec factory. The
    /// factory must *not* attach a driver or scenario plan of its own —
    /// the fuzzer installs the generated program as the driver.
    pub fn new(cfg: FuzzConfig, seed: u64, factory: Box<dyn Fn() -> ClusterSpec>) -> Self {
        ChaosFuzzer {
            cfg,
            factory,
            rng: SimRng::seed_from(seed).split(0x0011_ADE5),
        }
    }

    /// Builds a fuzzer over [`crate::specs::standard_spec`] with the
    /// shape in `cfg`.
    pub fn standard(cfg: FuzzConfig, seed: u64) -> Self {
        let (nodes, horizon, spec_seed) = (cfg.nodes, cfg.horizon, cfg.spec_seed);
        ChaosFuzzer::new(
            cfg,
            seed,
            Box::new(move || crate::specs::standard_spec(nodes, horizon, spec_seed)),
        )
    }

    /// The configured shape.
    pub fn config(&self) -> &FuzzConfig {
        &self.cfg
    }

    /// A random instant in the first 5–70 % of the horizon, quantized
    /// to 10 µs so programs read cleanly and shrink stably.
    fn instant(&mut self) -> Time {
        let h = self.cfg.horizon.as_nanos();
        let raw = self.rng.range_inclusive(h / 20, h * 7 / 10);
        Time::ZERO + Duration::from_nanos(raw / 10_000 * 10_000)
    }

    /// A random fault window starting at [`Self::instant`], lasting
    /// 500 µs up to 30 % of the horizon.
    fn window(&mut self) -> (Time, Time) {
        let at = self.instant();
        let h = self.cfg.horizon.as_nanos();
        let len = self.rng.range_inclusive(500_000, (h * 3 / 10).max(500_001));
        (at, at + Duration::from_nanos(len / 10_000 * 10_000))
    }

    fn any_node(&mut self) -> u32 {
        self.rng.below(self.cfg.nodes as u64) as u32
    }

    fn any_service(&mut self) -> String {
        let i = self.rng.below(self.cfg.services.len().max(1) as u64) as usize;
        self.cfg
            .services
            .get(i)
            .cloned()
            .unwrap_or_else(|| "store".to_string())
    }

    /// Draws one random program: 2 to `max_ops` ops over the whole
    /// fault/load vocabulary, biased toward the ops that historically
    /// find protocol bugs (crashes and gray link failures).
    pub fn generate(&mut self) -> ChaosProgram {
        let count = self.rng.range_inclusive(2, self.cfg.max_ops.max(2) as u64);
        let mut ops = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let roll = self.rng.below(100);
            let op = if roll < 35 {
                let (at, until) = self.window();
                ChaosOp::Crash {
                    node: self.any_node(),
                    at,
                    until: if self.rng.chance_permille(250) {
                        None
                    } else {
                        Some(until)
                    },
                }
            } else if roll < 50 {
                let from = self.any_node();
                let to = (from + 1 + self.rng.below(self.cfg.nodes.max(2) as u64 - 1) as u32)
                    % self.cfg.nodes;
                let (at, until) = self.window();
                ChaosOp::CutOneWay {
                    from,
                    to,
                    at,
                    until,
                }
            } else if roll < 62 {
                let from = self.any_node();
                let to = (from + 1 + self.rng.below(self.cfg.nodes.max(2) as u64 - 1) as u32)
                    % self.cfg.nodes;
                let (at, until) = self.window();
                ChaosOp::Degrade {
                    from,
                    to,
                    at,
                    until,
                    extra_delay: Duration::from_micros(self.rng.range_inclusive(50, 2_000)),
                    loss_permille: self.rng.range_inclusive(100, 900) as u32,
                }
            } else if roll < 72 {
                let (at, until) = self.window();
                ChaosOp::Slow {
                    node: self.any_node(),
                    at,
                    until,
                    speed_permille: self.rng.range_inclusive(50, 800) as u32,
                }
            } else if roll < 79 {
                let magnitude = self.rng.range_inclusive(100_000, 10_000_000) as i64;
                ChaosOp::Skew {
                    node: self.any_node(),
                    at: self.instant(),
                    drift_ppb: if self.rng.chance_permille(500) {
                        magnitude
                    } else {
                        -magnitude
                    },
                }
            } else if roll < 88 {
                let root = self.any_node();
                let spares = self.cfg.nodes.saturating_sub(1).max(1) as u64;
                let k = self.rng.range_inclusive(1, spares.min(3));
                let mut victims: Vec<u32> = (0..self.cfg.nodes).filter(|n| *n != root).collect();
                self.rng.shuffle(&mut victims);
                victims.truncate(k as usize);
                ChaosOp::CcfBurst {
                    root,
                    victims,
                    spacing: Duration::from_micros(self.rng.range_inclusive(100, 1_000)),
                    down: Duration::from_millis(self.rng.range_inclusive(2, 20)),
                }
            } else if roll < 94 {
                ChaosOp::Throttle {
                    service: self.any_service(),
                    at: self.instant(),
                    permille: self.rng.range_inclusive(0, 900) as u32,
                }
            } else if roll < 97 {
                ChaosOp::Retire {
                    service: self.any_service(),
                    at: self.instant(),
                }
            } else {
                ChaosOp::Admit {
                    service: self.any_service(),
                    at: self.instant(),
                }
            };
            ops.push(op);
        }
        ChaosProgram { ops }
    }

    /// Runs `program` against a fresh spec with the standard watchdog
    /// armed and returns every violation it raised.
    pub fn violations_of(&self, program: &ChaosProgram) -> Vec<Violation> {
        (self.factory)()
            .monitors(Watchdog::standard())
            .driver(Box::new(ProgramDriver::new(program.clone())))
            .run()
            .expect("chaos base spec must be valid")
            .violations()
            .to_vec()
    }

    /// Whether `program` still raises a violation matching `key`.
    pub fn reproduces(&self, program: &ChaosProgram, key: &ViolationKey) -> bool {
        self.violations_of(program).iter().any(|v| key.matches(v))
    }

    /// Delta-debugs `program` against `key`.
    ///
    /// Phase 1 removes whole ops to a fixpoint, so the result is
    /// *locally minimal*: dropping any single remaining op loses the
    /// violation. Phase 2 narrows in place — halves fault windows of
    /// 2 ms or more and sheds burst victims — as long as the violation
    /// keeps reproducing. Every accepted step strictly shrinks the
    /// program, so the loop terminates; determinism of the runs makes
    /// the whole shrink a pure function of `(program, key)`.
    pub fn shrink(&self, program: &ChaosProgram, key: &ViolationKey) -> ChaosProgram {
        let mut best = program.clone();
        if !self.reproduces(&best, key) {
            return best;
        }
        // Phase 1: drop whole ops until no single removal reproduces.
        loop {
            let mut removed = false;
            let mut i = 0;
            while i < best.ops.len() {
                if best.ops.len() == 1 {
                    break;
                }
                let mut candidate = best.clone();
                candidate.ops.remove(i);
                if self.reproduces(&candidate, key) {
                    best = candidate;
                    removed = true;
                } else {
                    i += 1;
                }
            }
            if !removed {
                break;
            }
        }
        // Phase 2: narrow surviving ops while the violation holds.
        loop {
            let mut narrowed = false;
            for i in 0..best.ops.len() {
                while let Some(candidate) = narrow_op(&best, i) {
                    if self.reproduces(&candidate, key) {
                        best = candidate;
                        narrowed = true;
                    } else {
                        break;
                    }
                }
            }
            if !narrowed {
                break;
            }
        }
        best
    }

    /// Generates and runs `programs` programs; every program whose run
    /// raises at least one violation becomes a [`Counterexample`] keyed
    /// by its first violation and shrunk to a locally minimal program.
    pub fn campaign(&mut self, programs: usize) -> Campaign {
        let mut counterexamples = Vec::new();
        for index in 0..programs {
            let program = self.generate();
            let violations = self.violations_of(&program);
            let Some(first) = violations.first() else {
                continue;
            };
            let key = ViolationKey::of(first);
            let minimized = self.shrink(&program, &key);
            counterexamples.push(Counterexample {
                index,
                program,
                minimized,
                key,
                violations,
            });
        }
        Campaign {
            programs_run: programs,
            counterexamples,
        }
    }
}

/// One strictly-smaller variant of op `i`, if any narrowing applies:
/// halve a fault window of at least 2 ms, or drop the last burst
/// victim. `None` when the op is already as tight as this pass goes.
fn narrow_op(program: &ChaosProgram, i: usize) -> Option<ChaosProgram> {
    const FLOOR: Duration = Duration::from_millis(2);
    let halve = |at: Time, until: Time| -> Option<Time> {
        let len = until - at;
        (len >= FLOOR).then(|| at + len / 2)
    };
    let mut candidate = program.clone();
    match &mut candidate.ops[i] {
        ChaosOp::Crash {
            at,
            until: Some(until),
            ..
        } => *until = halve(*at, *until)?,
        ChaosOp::CutOneWay { at, until, .. }
        | ChaosOp::Degrade { at, until, .. }
        | ChaosOp::Slow { at, until, .. } => *until = halve(*at, *until)?,
        ChaosOp::CcfBurst { victims, .. } => {
            if victims.len() <= 1 {
                return None;
            }
            victims.pop();
        }
        _ => return None,
    }
    Some(candidate)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    fn t(n: u64) -> Time {
        Time::ZERO + ms(n)
    }

    /// The seeded known bug: node 0 restarts into a dead cluster, so
    /// its checkpoint transfer has no server and the rejoin stalls.
    fn stall_program() -> ChaosProgram {
        let mut ops = vec![ChaosOp::Crash {
            node: 0,
            at: t(15),
            until: Some(t(35)),
        }];
        for node in 1..4 {
            ops.push(ChaosOp::Crash {
                node,
                at: t(34),
                until: Some(t(70)),
            });
        }
        ChaosProgram { ops }
    }

    fn stall_key() -> ViolationKey {
        ViolationKey {
            monitor: "stalled-transfer".into(),
            node: Some(0),
            group: None,
        }
    }

    #[test]
    fn the_known_stall_reproduces_through_the_program_driver() {
        let fuzzer = ChaosFuzzer::standard(FuzzConfig::default(), 1);
        assert!(fuzzer.reproduces(&stall_program(), &stall_key()));
    }

    #[test]
    fn generation_is_deterministic_under_a_fixed_seed() {
        let mut a = ChaosFuzzer::standard(FuzzConfig::default(), 99);
        let mut b = ChaosFuzzer::standard(FuzzConfig::default(), 99);
        for _ in 0..16 {
            assert_eq!(a.generate(), b.generate());
        }
        let mut c = ChaosFuzzer::standard(FuzzConfig::default(), 100);
        let differs = (0..16).any(|_| a.generate() != c.generate());
        assert!(differs, "different seeds draw different programs");
    }

    #[test]
    fn generated_programs_stay_in_shape() {
        let cfg = FuzzConfig::default();
        let mut fuzzer = ChaosFuzzer::standard(cfg.clone(), 5);
        for _ in 0..64 {
            let p = fuzzer.generate();
            assert!((2..=cfg.max_ops).contains(&p.ops.len()));
            for op in &p.ops {
                match op {
                    ChaosOp::Crash { node, .. }
                    | ChaosOp::Slow { node, .. }
                    | ChaosOp::Skew { node, .. } => assert!(*node < cfg.nodes),
                    ChaosOp::CutOneWay { from, to, .. } | ChaosOp::Degrade { from, to, .. } => {
                        assert!(*from < cfg.nodes && *to < cfg.nodes);
                        assert_ne!(from, to, "self-links are never cut");
                    }
                    ChaosOp::CcfBurst { root, victims, .. } => {
                        assert!(!victims.is_empty());
                        assert!(victims.iter().all(|v| *v < cfg.nodes && v != root));
                    }
                    ChaosOp::Throttle { service, .. }
                    | ChaosOp::Retire { service, .. }
                    | ChaosOp::Admit { service, .. } => {
                        assert!(cfg.services.contains(service));
                    }
                }
            }
        }
    }

    /// Regression: a fast skewed clock used to collapse tiny re-armed
    /// deadline intervals to zero real time, spinning the engine at one
    /// instant forever. The run must terminate.
    #[test]
    fn fast_clock_skew_does_not_wedge_the_engine() {
        let fuzzer = ChaosFuzzer::standard(FuzzConfig::default(), 1);
        let mut p = stall_program();
        p.ops.push(ChaosOp::Skew {
            node: 2,
            at: t(1),
            drift_ppb: 1_000_000,
        });
        let _ = fuzzer.violations_of(&p);
    }

    #[test]
    fn shrinking_the_stall_keeps_it_reproducing_and_locally_minimal() {
        let fuzzer = ChaosFuzzer::standard(FuzzConfig::default(), 1);
        let key = stall_key();
        // Pad the real counterexample with irrelevant noise ops.
        let mut padded = stall_program();
        padded.ops.push(ChaosOp::Skew {
            node: 2,
            at: t(1),
            drift_ppb: 1_000_000,
        });
        padded.ops.push(ChaosOp::Throttle {
            service: "store".into(),
            at: t(5),
            permille: 800,
        });
        let minimized = fuzzer.shrink(&padded, &key);
        assert!(fuzzer.reproduces(&minimized, &key));
        assert!(minimized.ops.len() < padded.ops.len(), "noise dropped");
        for i in 0..minimized.ops.len() {
            let mut without = minimized.clone();
            without.ops.remove(i);
            assert!(
                !fuzzer.reproduces(&without, &key),
                "op {i} is load-bearing in the minimized program"
            );
        }
    }
}
