//! Random program generation, the violation oracle and the shrinker.
//!
//! [`ChaosFuzzer`] drives the loop: generate a random [`ChaosProgram`]
//! from a seeded [`SimRng`], run it against a fresh spec with
//! [`Watchdog::standard`] armed, and treat every raised
//! [`Violation`] as a counterexample. Because the whole engine is
//! deterministic, `(fuzzer seed, spec seed)` pins the entire campaign:
//! the same programs, the same violations, byte-identical JSONL.
//!
//! Found counterexamples are delta-debugged by [`ChaosFuzzer::shrink`]:
//! first drop whole ops to a fixpoint (local minimality — removing any
//! single remaining op loses the violation), then narrow what is left
//! (halve long fault windows, shed burst victims), then *canonicalize*
//! it — shift surviving ops earlier in time and relabel their nodes
//! downward — while the violation keeps firing. Canonical minimized
//! programs let [`ChaosFuzzer::campaign`] discard isomorphic
//! counterexamples (same fault shape up to node relabeling and time
//! translation) instead of reporting the same bug once per seed quirk.

use hades_cluster::ClusterSpec;
use hades_sim::SimRng;
use hades_telemetry::monitor::{violations_to_jsonl, Violation, Watchdog};
use hades_time::{Duration, Time};

use crate::program::{ChaosOp, ChaosProgram, ProgramDriver};

/// The identity of a violation, stable across runs: which monitor
/// fired, against which node and/or group. The instant and message are
/// deliberately excluded so a shrunk program that moves the firing
/// time still counts as reproducing the same bug.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ViolationKey {
    /// Monitor name (e.g. `"stalled-transfer"`).
    pub monitor: String,
    /// The node charged with the violation, if the monitor names one.
    pub node: Option<u32>,
    /// The group charged with the violation, if the monitor names one.
    pub group: Option<u32>,
}

impl ViolationKey {
    /// The key of a concrete violation.
    pub fn of(v: &Violation) -> ViolationKey {
        ViolationKey {
            monitor: v.monitor.clone(),
            node: v.node,
            group: v.group,
        }
    }

    /// Whether `v` is an instance of this key.
    pub fn matches(&self, v: &Violation) -> bool {
        v.monitor == self.monitor
            && v.node == self.node
            && (self.group.is_none() || v.group == self.group)
    }
}

/// Shape of the fuzzing target and of the generated programs.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Cluster size of each generated scenario.
    pub nodes: u32,
    /// Horizon of each run.
    pub horizon: Duration,
    /// Seed of the *spec* (network jitter, workload think times) — the
    /// fuzzer's own seed, passed separately, drives program generation.
    pub spec_seed: u64,
    /// Upper bound on ops per generated program (at least 2 are drawn).
    pub max_ops: usize,
    /// Service names the load-level ops (throttle/retire/admit) target.
    pub services: Vec<String>,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            nodes: 4,
            horizon: Duration::from_millis(100),
            spec_seed: 7,
            max_ops: 6,
            services: vec!["store".to_string()],
        }
    }
}

/// One found-and-minimized counterexample from a campaign.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// Which generated program (0-based) tripped the watchdog.
    pub index: usize,
    /// The program as generated.
    pub program: ChaosProgram,
    /// The delta-debugged program: still reproduces `key`, and
    /// removing any single op no longer does.
    pub minimized: ChaosProgram,
    /// The violation identity used to steer the shrink.
    pub key: ViolationKey,
    /// Every violation the original program raised.
    pub violations: Vec<Violation>,
}

/// The outcome of a fuzzing campaign.
#[derive(Debug, Clone, Default)]
pub struct Campaign {
    /// How many programs were generated and run.
    pub programs_run: usize,
    /// The counterexamples found, in generation order.
    pub counterexamples: Vec<Counterexample>,
    /// Violating programs discarded because their minimized form was
    /// isomorphic (equal up to node relabeling and time translation)
    /// to an earlier counterexample's.
    pub duplicates_skipped: usize,
}

impl Campaign {
    /// Every violation of every counterexample as schema-checked JSONL
    /// (the same line format `hades_telemetry::monitor` exports).
    pub fn violations_jsonl(&self) -> String {
        let mut out = String::new();
        for cx in &self.counterexamples {
            out.push_str(&violations_to_jsonl(&cx.violations));
        }
        out
    }
}

/// Invariant-guided scenario fuzzer over a spec factory.
pub struct ChaosFuzzer {
    cfg: FuzzConfig,
    factory: Box<dyn Fn() -> ClusterSpec>,
    rng: SimRng,
}

impl std::fmt::Debug for ChaosFuzzer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosFuzzer")
            .field("cfg", &self.cfg)
            .finish_non_exhaustive()
    }
}

impl ChaosFuzzer {
    /// Builds a fuzzer over an arbitrary plan-free spec factory. The
    /// factory must *not* attach a driver or scenario plan of its own —
    /// the fuzzer installs the generated program as the driver.
    pub fn new(cfg: FuzzConfig, seed: u64, factory: Box<dyn Fn() -> ClusterSpec>) -> Self {
        ChaosFuzzer {
            cfg,
            factory,
            rng: SimRng::seed_from(seed).split(0x0011_ADE5),
        }
    }

    /// Builds a fuzzer over [`crate::specs::standard_spec`] with the
    /// shape in `cfg`.
    pub fn standard(cfg: FuzzConfig, seed: u64) -> Self {
        let (nodes, horizon, spec_seed) = (cfg.nodes, cfg.horizon, cfg.spec_seed);
        ChaosFuzzer::new(
            cfg,
            seed,
            Box::new(move || crate::specs::standard_spec(nodes, horizon, spec_seed)),
        )
    }

    /// The configured shape.
    pub fn config(&self) -> &FuzzConfig {
        &self.cfg
    }

    /// A random instant in the first 5–70 % of the horizon, quantized
    /// to 10 µs so programs read cleanly and shrink stably.
    fn instant(&mut self) -> Time {
        let h = self.cfg.horizon.as_nanos();
        let raw = self.rng.range_inclusive(h / 20, h * 7 / 10);
        Time::ZERO + Duration::from_nanos(raw / 10_000 * 10_000)
    }

    /// A random fault window starting at [`Self::instant`], lasting
    /// 500 µs up to 30 % of the horizon.
    fn window(&mut self) -> (Time, Time) {
        let at = self.instant();
        let h = self.cfg.horizon.as_nanos();
        let len = self.rng.range_inclusive(500_000, (h * 3 / 10).max(500_001));
        (at, at + Duration::from_nanos(len / 10_000 * 10_000))
    }

    fn any_node(&mut self) -> u32 {
        self.rng.below(self.cfg.nodes as u64) as u32
    }

    fn any_service(&mut self) -> String {
        let i = self.rng.below(self.cfg.services.len().max(1) as u64) as usize;
        self.cfg
            .services
            .get(i)
            .cloned()
            .unwrap_or_else(|| "store".to_string())
    }

    /// Draws one random program: 2 to `max_ops` ops over the whole
    /// fault/load vocabulary, biased toward the ops that historically
    /// find protocol bugs (crashes and gray link failures).
    pub fn generate(&mut self) -> ChaosProgram {
        let count = self.rng.range_inclusive(2, self.cfg.max_ops.max(2) as u64);
        let mut ops = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let roll = self.rng.below(100);
            let op = if roll < 35 {
                let (at, until) = self.window();
                ChaosOp::Crash {
                    node: self.any_node(),
                    at,
                    until: if self.rng.chance_permille(250) {
                        None
                    } else {
                        Some(until)
                    },
                }
            } else if roll < 50 {
                let from = self.any_node();
                let to = (from + 1 + self.rng.below(self.cfg.nodes.max(2) as u64 - 1) as u32)
                    % self.cfg.nodes;
                let (at, until) = self.window();
                ChaosOp::CutOneWay {
                    from,
                    to,
                    at,
                    until,
                }
            } else if roll < 62 {
                let from = self.any_node();
                let to = (from + 1 + self.rng.below(self.cfg.nodes.max(2) as u64 - 1) as u32)
                    % self.cfg.nodes;
                let (at, until) = self.window();
                ChaosOp::Degrade {
                    from,
                    to,
                    at,
                    until,
                    extra_delay: Duration::from_micros(self.rng.range_inclusive(50, 2_000)),
                    loss_permille: self.rng.range_inclusive(100, 900) as u32,
                }
            } else if roll < 72 {
                let (at, until) = self.window();
                ChaosOp::Slow {
                    node: self.any_node(),
                    at,
                    until,
                    speed_permille: self.rng.range_inclusive(50, 800) as u32,
                }
            } else if roll < 79 {
                let magnitude = self.rng.range_inclusive(100_000, 10_000_000) as i64;
                ChaosOp::Skew {
                    node: self.any_node(),
                    at: self.instant(),
                    drift_ppb: if self.rng.chance_permille(500) {
                        magnitude
                    } else {
                        -magnitude
                    },
                }
            } else if roll < 88 {
                let root = self.any_node();
                let spares = self.cfg.nodes.saturating_sub(1).max(1) as u64;
                let k = self.rng.range_inclusive(1, spares.min(3));
                let mut victims: Vec<u32> = (0..self.cfg.nodes).filter(|n| *n != root).collect();
                self.rng.shuffle(&mut victims);
                victims.truncate(k as usize);
                ChaosOp::CcfBurst {
                    root,
                    victims,
                    spacing: Duration::from_micros(self.rng.range_inclusive(100, 1_000)),
                    down: Duration::from_millis(self.rng.range_inclusive(2, 20)),
                }
            } else if roll < 94 {
                ChaosOp::Throttle {
                    service: self.any_service(),
                    at: self.instant(),
                    permille: self.rng.range_inclusive(0, 900) as u32,
                }
            } else if roll < 97 {
                ChaosOp::Retire {
                    service: self.any_service(),
                    at: self.instant(),
                }
            } else {
                ChaosOp::Admit {
                    service: self.any_service(),
                    at: self.instant(),
                }
            };
            ops.push(op);
        }
        ChaosProgram { ops }
    }

    /// Runs `program` against a fresh spec with the standard watchdog
    /// armed and returns every violation it raised.
    pub fn violations_of(&self, program: &ChaosProgram) -> Vec<Violation> {
        (self.factory)()
            .monitors(Watchdog::standard())
            .driver(Box::new(ProgramDriver::new(program.clone())))
            .run()
            .expect("chaos base spec must be valid")
            .violations()
            .to_vec()
    }

    /// Whether `program` still raises a violation matching `key`.
    pub fn reproduces(&self, program: &ChaosProgram, key: &ViolationKey) -> bool {
        self.violations_of(program).iter().any(|v| key.matches(v))
    }

    /// Delta-debugs `program` against `key`.
    ///
    /// Phase 1 removes whole ops to a fixpoint, so the result is
    /// *locally minimal*: dropping any single remaining op loses the
    /// violation. Phase 2 narrows in place — halves fault windows of
    /// 2 ms or more and sheds burst victims — as long as the violation
    /// keeps reproducing. Phases 3 and 4 canonicalize: shift surviving
    /// ops earlier (halving their start offset, windows keep their
    /// length) and relabel node identifiers downward, again only while
    /// the same key keeps firing. Every accepted step strictly shrinks
    /// a well-founded measure (op count, window length, start offset,
    /// node-label sum), so the loop terminates; determinism of the runs
    /// makes the whole shrink a pure function of `(program, key)`.
    pub fn shrink(&self, program: &ChaosProgram, key: &ViolationKey) -> ChaosProgram {
        let mut best = program.clone();
        if !self.reproduces(&best, key) {
            return best;
        }
        // Phase 1: drop whole ops until no single removal reproduces.
        loop {
            let mut removed = false;
            let mut i = 0;
            while i < best.ops.len() {
                if best.ops.len() == 1 {
                    break;
                }
                let mut candidate = best.clone();
                candidate.ops.remove(i);
                if self.reproduces(&candidate, key) {
                    best = candidate;
                    removed = true;
                } else {
                    i += 1;
                }
            }
            if !removed {
                break;
            }
        }
        // Phase 2: narrow surviving ops while the violation holds.
        loop {
            let mut narrowed = false;
            for i in 0..best.ops.len() {
                while let Some(candidate) = narrow_op(&best, i) {
                    if self.reproduces(&candidate, key) {
                        best = candidate;
                        narrowed = true;
                    } else {
                        break;
                    }
                }
            }
            if !narrowed {
                break;
            }
        }
        // Phase 3: shift surviving ops earlier in time.
        loop {
            let mut shifted = false;
            for i in 0..best.ops.len() {
                while let Some(candidate) = shift_op(&best, i) {
                    if self.reproduces(&candidate, key) {
                        best = candidate;
                        shifted = true;
                    } else {
                        break;
                    }
                }
            }
            if !shifted {
                break;
            }
        }
        // Phase 4: relabel node identifiers toward the smallest ids.
        loop {
            let mut lowered = false;
            'ops: for i in 0..best.ops.len() {
                for candidate in lower_nodes(&best, i) {
                    if self.reproduces(&candidate, key) {
                        best = candidate;
                        lowered = true;
                        continue 'ops;
                    }
                }
            }
            if !lowered {
                break;
            }
        }
        best
    }

    /// Generates and runs `programs` programs; every program whose run
    /// raises at least one violation becomes a [`Counterexample`] keyed
    /// by its first violation and shrunk to a locally minimal program.
    /// Counterexamples whose minimized program is isomorphic to an
    /// earlier one's — the same monitor and fault shape up to node
    /// relabeling and time translation — are counted in
    /// [`Campaign::duplicates_skipped`] instead of reported again.
    pub fn campaign(&mut self, programs: usize) -> Campaign {
        let mut counterexamples: Vec<Counterexample> = Vec::new();
        let mut seen = std::collections::BTreeSet::new();
        let mut duplicates_skipped = 0;
        for index in 0..programs {
            let program = self.generate();
            let violations = self.violations_of(&program);
            let Some(first) = violations.first() else {
                continue;
            };
            let key = ViolationKey::of(first);
            let minimized = self.shrink(&program, &key);
            if !seen.insert(signature(&minimized, &key)) {
                duplicates_skipped += 1;
                continue;
            }
            counterexamples.push(Counterexample {
                index,
                program,
                minimized,
                key,
                violations,
            });
        }
        Campaign {
            programs_run: programs,
            counterexamples,
            duplicates_skipped,
        }
    }
}

/// One strictly-smaller variant of op `i`, if any narrowing applies:
/// halve a fault window of at least 2 ms, or drop the last burst
/// victim. `None` when the op is already as tight as this pass goes.
fn narrow_op(program: &ChaosProgram, i: usize) -> Option<ChaosProgram> {
    const FLOOR: Duration = Duration::from_millis(2);
    let halve = |at: Time, until: Time| -> Option<Time> {
        let len = until - at;
        (len >= FLOOR).then(|| at + len / 2)
    };
    let mut candidate = program.clone();
    match &mut candidate.ops[i] {
        ChaosOp::Crash {
            at,
            until: Some(until),
            ..
        } => *until = halve(*at, *until)?,
        ChaosOp::CutOneWay { at, until, .. }
        | ChaosOp::Degrade { at, until, .. }
        | ChaosOp::Slow { at, until, .. } => *until = halve(*at, *until)?,
        ChaosOp::CcfBurst { victims, .. } => {
            if victims.len() <= 1 {
                return None;
            }
            victims.pop();
        }
        _ => return None,
    }
    Some(candidate)
}

/// Op `i` translated earlier in time: its start offset from
/// [`Time::ZERO`] is halved (10 µs quantized) and any fault window
/// keeps its length. `None` when the op carries no instant
/// (detection-triggered bursts) or already starts at the origin.
fn shift_op(program: &ChaosProgram, i: usize) -> Option<ChaosProgram> {
    let earlier = |at: Time| -> Option<Time> {
        let offset = at - Time::ZERO;
        let half = Duration::from_nanos(offset.as_nanos() / 2 / 10_000 * 10_000);
        (half < offset).then(|| Time::ZERO + half)
    };
    let mut candidate = program.clone();
    match &mut candidate.ops[i] {
        ChaosOp::Crash { at, until, .. } => {
            let new_at = earlier(*at)?;
            if let Some(until) = until {
                *until = new_at + (*until - *at);
            }
            *at = new_at;
        }
        ChaosOp::CutOneWay { at, until, .. }
        | ChaosOp::Degrade { at, until, .. }
        | ChaosOp::Slow { at, until, .. } => {
            let new_at = earlier(*at)?;
            *until = new_at + (*until - *at);
            *at = new_at;
        }
        ChaosOp::Skew { at, .. }
        | ChaosOp::Throttle { at, .. }
        | ChaosOp::Retire { at, .. }
        | ChaosOp::Admit { at, .. } => *at = earlier(*at)?,
        ChaosOp::CcfBurst { .. } => return None,
    }
    Some(candidate)
}

/// Every variant of op `i` with exactly one node identifier replaced
/// by a strictly smaller one, smallest replacement first. Link ops
/// never become self-links and burst victims stay distinct from each
/// other and the root, so every candidate is still well-formed.
fn lower_nodes(program: &ChaosProgram, i: usize) -> Vec<ChaosProgram> {
    let mut out = Vec::new();
    let mut push = |op: ChaosOp| {
        let mut candidate = program.clone();
        candidate.ops[i] = op;
        out.push(candidate);
    };
    match &program.ops[i] {
        ChaosOp::Crash { node, .. } | ChaosOp::Slow { node, .. } | ChaosOp::Skew { node, .. } => {
            for n in 0..*node {
                let mut op = program.ops[i].clone();
                match &mut op {
                    ChaosOp::Crash { node, .. }
                    | ChaosOp::Slow { node, .. }
                    | ChaosOp::Skew { node, .. } => *node = n,
                    _ => unreachable!(),
                }
                push(op);
            }
        }
        ChaosOp::CutOneWay { from, to, .. } | ChaosOp::Degrade { from, to, .. } => {
            for f in (0..*from).filter(|f| f != to) {
                let mut op = program.ops[i].clone();
                match &mut op {
                    ChaosOp::CutOneWay { from, .. } | ChaosOp::Degrade { from, .. } => *from = f,
                    _ => unreachable!(),
                }
                push(op);
            }
            for t in (0..*to).filter(|t| t != from) {
                let mut op = program.ops[i].clone();
                match &mut op {
                    ChaosOp::CutOneWay { to, .. } | ChaosOp::Degrade { to, .. } => *to = t,
                    _ => unreachable!(),
                }
                push(op);
            }
        }
        ChaosOp::CcfBurst { root, victims, .. } => {
            for r in (0..*root).filter(|r| !victims.contains(r)) {
                let mut op = program.ops[i].clone();
                if let ChaosOp::CcfBurst { root, .. } = &mut op {
                    *root = r;
                }
                push(op);
            }
            for (vi, v) in victims.iter().enumerate() {
                for n in (0..*v).filter(|n| n != root && !victims.contains(n)) {
                    let mut op = program.ops[i].clone();
                    if let ChaosOp::CcfBurst { victims, .. } = &mut op {
                        victims[vi] = n;
                    }
                    push(op);
                }
            }
        }
        ChaosOp::Throttle { .. } | ChaosOp::Retire { .. } | ChaosOp::Admit { .. } => {}
    }
    out
}

/// A fingerprint of `(program, key)` invariant under node relabeling
/// and rigid time translation: every instant is rebased to the
/// program's earliest one and nodes are renumbered in order of first
/// appearance, the key's charged node first — so the same fault shape
/// charging a different node still collapses. Op order is preserved
/// (the shrinker canonicalizes content, not sequence).
fn signature(program: &ChaosProgram, key: &ViolationKey) -> String {
    let instants = |op: &ChaosOp| -> Vec<Time> {
        match op {
            ChaosOp::Crash { at, until, .. } => {
                let mut v = vec![*at];
                v.extend(*until);
                v
            }
            ChaosOp::CutOneWay { at, until, .. }
            | ChaosOp::Degrade { at, until, .. }
            | ChaosOp::Slow { at, until, .. } => vec![*at, *until],
            ChaosOp::Skew { at, .. }
            | ChaosOp::Throttle { at, .. }
            | ChaosOp::Retire { at, .. }
            | ChaosOp::Admit { at, .. } => vec![*at],
            ChaosOp::CcfBurst { .. } => vec![],
        }
    };
    let origin = program
        .ops
        .iter()
        .flat_map(&instants)
        .min()
        .unwrap_or(Time::ZERO);
    let mut relabel = std::collections::BTreeMap::new();
    if let Some(node) = key.node {
        relabel.insert(node, 0u32);
    }
    let canon = |node: u32, map: &mut std::collections::BTreeMap<u32, u32>| -> u32 {
        let next = map.len() as u32;
        *map.entry(node).or_insert(next)
    };
    let mut rebased = program.clone();
    for op in &mut rebased.ops {
        match op {
            ChaosOp::Crash { node, at, until } => {
                *node = canon(*node, &mut relabel);
                *at = Time::ZERO + (*at - origin);
                if let Some(until) = until {
                    *until = Time::ZERO + (*until - origin);
                }
            }
            ChaosOp::CutOneWay {
                from,
                to,
                at,
                until,
            }
            | ChaosOp::Degrade {
                from,
                to,
                at,
                until,
                ..
            } => {
                *from = canon(*from, &mut relabel);
                *to = canon(*to, &mut relabel);
                *at = Time::ZERO + (*at - origin);
                *until = Time::ZERO + (*until - origin);
            }
            ChaosOp::Slow {
                node, at, until, ..
            } => {
                *node = canon(*node, &mut relabel);
                *at = Time::ZERO + (*at - origin);
                *until = Time::ZERO + (*until - origin);
            }
            ChaosOp::Skew { node, at, .. } => {
                *node = canon(*node, &mut relabel);
                *at = Time::ZERO + (*at - origin);
            }
            ChaosOp::CcfBurst { root, victims, .. } => {
                *root = canon(*root, &mut relabel);
                for victim in victims {
                    *victim = canon(*victim, &mut relabel);
                }
            }
            ChaosOp::Throttle { at, .. }
            | ChaosOp::Retire { at, .. }
            | ChaosOp::Admit { at, .. } => {
                *at = Time::ZERO + (*at - origin);
            }
        }
    }
    format!("{}/g{:?} {}", key.monitor, key.group, rebased.to_json())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    fn t(n: u64) -> Time {
        Time::ZERO + ms(n)
    }

    /// A serverless-rejoin blackout: node 0 restarts into a dead
    /// cluster. Used to seed the corpus until rejoin re-announcement +
    /// singleton-view bootstrap fixed the stall; kept as a heavy
    /// crash-storm program for engine-robustness tests.
    fn blackout_program() -> ChaosProgram {
        let mut ops = vec![ChaosOp::Crash {
            node: 0,
            at: t(15),
            until: Some(t(35)),
        }];
        for node in 1..4 {
            ops.push(ChaosOp::Crash {
                node,
                at: t(34),
                until: Some(t(70)),
            });
        }
        ChaosProgram { ops }
    }

    /// The committed `skewed-leader-silence` counterexample: a fast
    /// clock on the store leader answers every request ~4 ms late,
    /// starving the silent-group window.
    fn silence_program() -> ChaosProgram {
        ChaosProgram {
            ops: vec![ChaosOp::Skew {
                node: 0,
                at: Time::ZERO,
                drift_ppb: 8_799_611,
            }],
        }
    }

    fn silence_key() -> ViolationKey {
        ViolationKey {
            monitor: "silent-group".into(),
            node: None,
            group: Some(0),
        }
    }

    #[test]
    fn the_known_silence_reproduces_through_the_program_driver() {
        let fuzzer = ChaosFuzzer::standard(FuzzConfig::default(), 1);
        assert!(fuzzer.reproduces(&silence_program(), &silence_key()));
    }

    #[test]
    fn the_graduated_stall_no_longer_reproduces() {
        // The serverless-rejoin stall graduated out of the corpus:
        // re-announcement failover plus singleton-view bootstrap keep
        // the joiner making progress, so its old key must stay silent.
        let fuzzer = ChaosFuzzer::standard(FuzzConfig::default(), 1);
        let key = ViolationKey {
            monitor: "stalled-transfer".into(),
            node: Some(0),
            group: None,
        };
        assert!(!fuzzer.reproduces(&blackout_program(), &key));
    }

    #[test]
    fn generation_is_deterministic_under_a_fixed_seed() {
        let mut a = ChaosFuzzer::standard(FuzzConfig::default(), 99);
        let mut b = ChaosFuzzer::standard(FuzzConfig::default(), 99);
        for _ in 0..16 {
            assert_eq!(a.generate(), b.generate());
        }
        let mut c = ChaosFuzzer::standard(FuzzConfig::default(), 100);
        let differs = (0..16).any(|_| a.generate() != c.generate());
        assert!(differs, "different seeds draw different programs");
    }

    #[test]
    fn generated_programs_stay_in_shape() {
        let cfg = FuzzConfig::default();
        let mut fuzzer = ChaosFuzzer::standard(cfg.clone(), 5);
        for _ in 0..64 {
            let p = fuzzer.generate();
            assert!((2..=cfg.max_ops).contains(&p.ops.len()));
            for op in &p.ops {
                match op {
                    ChaosOp::Crash { node, .. }
                    | ChaosOp::Slow { node, .. }
                    | ChaosOp::Skew { node, .. } => assert!(*node < cfg.nodes),
                    ChaosOp::CutOneWay { from, to, .. } | ChaosOp::Degrade { from, to, .. } => {
                        assert!(*from < cfg.nodes && *to < cfg.nodes);
                        assert_ne!(from, to, "self-links are never cut");
                    }
                    ChaosOp::CcfBurst { root, victims, .. } => {
                        assert!(!victims.is_empty());
                        assert!(victims.iter().all(|v| *v < cfg.nodes && v != root));
                    }
                    ChaosOp::Throttle { service, .. }
                    | ChaosOp::Retire { service, .. }
                    | ChaosOp::Admit { service, .. } => {
                        assert!(cfg.services.contains(service));
                    }
                }
            }
        }
    }

    /// Regression: a fast skewed clock used to collapse tiny re-armed
    /// deadline intervals to zero real time, spinning the engine at one
    /// instant forever. The run must terminate.
    #[test]
    fn fast_clock_skew_does_not_wedge_the_engine() {
        let fuzzer = ChaosFuzzer::standard(FuzzConfig::default(), 1);
        let mut p = blackout_program();
        p.ops.push(ChaosOp::Skew {
            node: 2,
            at: t(1),
            drift_ppb: 1_000_000,
        });
        let _ = fuzzer.violations_of(&p);
    }

    #[test]
    fn shrinking_the_silence_keeps_it_reproducing_and_locally_minimal() {
        let fuzzer = ChaosFuzzer::standard(FuzzConfig::default(), 1);
        let key = silence_key();
        // Pad the real counterexample with irrelevant noise ops.
        let mut padded = silence_program();
        padded.ops.push(ChaosOp::CutOneWay {
            from: 1,
            to: 2,
            at: t(8),
            until: t(11),
        });
        padded.ops.push(ChaosOp::Throttle {
            service: "store".into(),
            at: t(5),
            permille: 800,
        });
        let minimized = fuzzer.shrink(&padded, &key);
        assert!(fuzzer.reproduces(&minimized, &key));
        assert!(minimized.ops.len() < padded.ops.len(), "noise dropped");
        for i in 0..minimized.ops.len() {
            let mut without = minimized.clone();
            without.ops.remove(i);
            assert!(
                !fuzzer.reproduces(&without, &key),
                "op {i} is load-bearing in the minimized program"
            );
        }
    }

    #[test]
    fn shrinking_shifts_the_surviving_ops_to_the_earliest_reproducing_instant() {
        // The silence skew was mined at ~47 ms into the run; because
        // the drift hurts from the very first request, phase 3 must
        // slide it all the way back to the origin.
        let fuzzer = ChaosFuzzer::standard(FuzzConfig::default(), 1);
        let late = ChaosProgram {
            ops: vec![ChaosOp::Skew {
                node: 0,
                at: Time::ZERO + Duration::from_nanos(47_210_000),
                drift_ppb: 8_799_611,
            }],
        };
        let minimized = fuzzer.shrink(&late, &silence_key());
        assert_eq!(minimized, silence_program(), "skew canonicalizes to t=0");
    }

    #[test]
    fn shifting_halves_start_offsets_and_keeps_window_lengths() {
        let program = ChaosProgram {
            ops: vec![ChaosOp::CutOneWay {
                from: 1,
                to: 2,
                at: t(40),
                until: t(44),
            }],
        };
        let shifted = shift_op(&program, 0).expect("shiftable");
        assert_eq!(
            shifted.ops[0],
            ChaosOp::CutOneWay {
                from: 1,
                to: 2,
                at: t(20),
                until: t(24),
            }
        );
        // At the origin there is nowhere earlier to go.
        let origin = ChaosProgram {
            ops: vec![ChaosOp::Skew {
                node: 0,
                at: Time::ZERO,
                drift_ppb: 1,
            }],
        };
        assert_eq!(shift_op(&origin, 0), None);
        // Detection-triggered bursts carry no instant to shift.
        let burst = ChaosProgram {
            ops: vec![ChaosOp::CcfBurst {
                root: 0,
                victims: vec![1],
                spacing: ms(1),
                down: ms(5),
            }],
        };
        assert_eq!(shift_op(&burst, 0), None);
    }

    #[test]
    fn node_lowering_keeps_links_and_bursts_well_formed() {
        let cut = ChaosProgram {
            ops: vec![ChaosOp::CutOneWay {
                from: 2,
                to: 1,
                at: t(10),
                until: t(12),
            }],
        };
        for candidate in lower_nodes(&cut, 0) {
            let ChaosOp::CutOneWay { from, to, .. } = &candidate.ops[0] else {
                panic!("lowering changed the op kind");
            };
            assert_ne!(from, to, "lowering produced a self-link");
            assert!(from + to < 3, "one label strictly decreased");
        }
        let burst = ChaosProgram {
            ops: vec![ChaosOp::CcfBurst {
                root: 3,
                victims: vec![2, 1],
                spacing: ms(1),
                down: ms(5),
            }],
        };
        for candidate in lower_nodes(&burst, 0) {
            let ChaosOp::CcfBurst { root, victims, .. } = &candidate.ops[0] else {
                panic!("lowering changed the op kind");
            };
            assert!(!victims.contains(root), "root became its own victim");
            let mut dedup = victims.clone();
            dedup.sort_unstable();
            dedup.dedup();
            assert_eq!(dedup.len(), victims.len(), "victims collided");
        }
        // Load ops carry no node labels to lower.
        let throttle = ChaosProgram {
            ops: vec![ChaosOp::Throttle {
                service: "store".into(),
                at: t(5),
                permille: 500,
            }],
        };
        assert!(lower_nodes(&throttle, 0).is_empty());
    }

    #[test]
    fn isomorphic_counterexamples_share_a_signature() {
        // Same fault shape, different node labels and a rigid time
        // translation: one crash window plus one cut into the crashed
        // node's successor.
        let a = ChaosProgram {
            ops: vec![
                ChaosOp::Crash {
                    node: 1,
                    at: t(30),
                    until: Some(t(40)),
                },
                ChaosOp::CutOneWay {
                    from: 1,
                    to: 2,
                    at: t(32),
                    until: t(36),
                },
            ],
        };
        let b = ChaosProgram {
            ops: vec![
                ChaosOp::Crash {
                    node: 3,
                    at: t(50),
                    until: Some(t(60)),
                },
                ChaosOp::CutOneWay {
                    from: 3,
                    to: 0,
                    at: t(52),
                    until: t(56),
                },
            ],
        };
        let key = |node| ViolationKey {
            monitor: "view-agreement".into(),
            node: Some(node),
            group: None,
        };
        assert_eq!(signature(&a, &key(1)), signature(&b, &key(3)));
        // A different window length is a different bug shape.
        let mut c = b.clone();
        if let ChaosOp::Crash { until, .. } = &mut c.ops[0] {
            *until = Some(t(61));
        }
        assert_ne!(signature(&b, &key(3)), signature(&c, &key(3)));
        // And so is the same shape charged by a different monitor.
        let silent = ViolationKey {
            monitor: "silent-group".into(),
            node: None,
            group: Some(0),
        };
        assert_ne!(signature(&b, &key(3)), signature(&b, &silent));
    }

    #[test]
    fn campaigns_deduplicate_isomorphic_minimized_programs() {
        // Every counterexample a campaign reports is pairwise
        // non-isomorphic, and anything skipped was counted.
        let mut fuzzer = ChaosFuzzer::standard(FuzzConfig::default(), 3);
        let campaign = fuzzer.campaign(16);
        let mut sigs = std::collections::BTreeSet::new();
        for cx in &campaign.counterexamples {
            assert!(
                sigs.insert(signature(&cx.minimized, &cx.key)),
                "campaign reported two isomorphic counterexamples"
            );
        }
        assert!(
            campaign.counterexamples.len() + campaign.duplicates_skipped <= campaign.programs_run,
            "bookkeeping adds up"
        );
    }
}
