//! The canonical fuzzing target spec.
//!
//! Fuzzing needs a fixed, plan-free deployment that every generated
//! [`crate::ChaosProgram`] attacks: the fault script comes entirely
//! from the program driver, so a corpus entry is `(nodes, horizon,
//! seed, program)` and nothing else. [`standard_spec`] is that target —
//! a semi-active replicated store under closed-loop client load plus a
//! per-node periodic control task, the same deployment the repo's
//! invariant E2E suite exercises.

use hades_cluster::{ClosedLoop, ClusterSpec, GroupLoad, ServiceSpec};
use hades_services::ReplicaStyle;
use hades_time::{Duration, Time};

/// Builds the standard chaos target: a semi-active `"store"` group on
/// the first `min(3, nodes)` nodes driven by a closed-loop workload
/// (500 µs requests every 1 ms from 2 ms, 4 ms timeout), plus a
/// periodic `"control"` task (200 µs / 2 ms) on every node. No
/// scenario plan — faults come only from the attached driver.
pub fn standard_spec(nodes: u32, horizon: Duration, seed: u64) -> ClusterSpec {
    let us = Duration::from_micros;
    let ms = Duration::from_millis;
    let members: Vec<u32> = (0..nodes.min(3)).collect();
    let mut spec = ClusterSpec::new(nodes).seed(seed).horizon(horizon).service(
        ServiceSpec::replicated(
            "store",
            ReplicaStyle::SemiActive,
            members,
            GroupLoad::default(),
        )
        .workload(Box::new(
            ClosedLoop::new(us(500), ms(1), Time::ZERO + ms(2)).with_timeout(ms(4)),
        )),
    );
    for node in 0..nodes {
        spec = spec.service(ServiceSpec::periodic("control", node, us(200), ms(2)));
    }
    spec
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_standard_spec_is_valid_and_fault_free_by_default() {
        let run = standard_spec(4, Duration::from_millis(40), 7)
            .run()
            .expect("valid spec");
        let report = run.report();
        assert!(report.views_agree);
        assert!(report.failovers.is_empty(), "no faults without a driver");
        assert!(report.no_false_suspicions());
    }
}
