//! The committed counterexample corpus.
//!
//! Every scenario the fuzzer finds (or a human distills) can be saved
//! as one JSONL line: the target shape (`nodes`, `horizon`, `seed`),
//! the expected violation key, and the full chaos program. Because the
//! runtime is deterministic, the line *is* the bug — replaying it with
//! [`CorpusScenario::reproduces`] either fires the expected violation
//! or proves a regression in the reproduction.
//!
//! Line schema (`schema`/`version` are checked on parse):
//!
//! ```json
//! {"schema":"hades-chaos-scenario","version":1,"name":"...",
//!  "nodes":4,"horizon_ns":100000000,"seed":7,
//!  "expect":{"monitor":"silent-group","node":null,"group":0},
//!  "ops":[{"op":"skew","node":0,"at_ns":0,"drift_ppb":8799611}]}
//! ```

use hades_telemetry::json::{escape, Json};
use hades_telemetry::monitor::{Violation, Watchdog};
use hades_time::Duration;

use crate::fuzzer::ViolationKey;
use crate::program::{ChaosProgram, ProgramDriver};
use crate::specs::standard_spec;

/// The corpus line schema tag.
pub const SCHEMA: &str = "hades-chaos-scenario";
/// The corpus line schema version this build reads and writes.
pub const VERSION: u64 = 1;

/// One replayable counterexample: a chaos program, the standard-spec
/// shape it runs against, and the violation it must raise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusScenario {
    /// Human-readable scenario name (unique within a corpus file).
    pub name: String,
    /// Cluster size of the target spec.
    pub nodes: u32,
    /// Run horizon.
    pub horizon: Duration,
    /// Spec seed (network jitter, workload think times).
    pub seed: u64,
    /// The violation the program must raise.
    pub expect: ViolationKey,
    /// The fault/load program.
    pub program: ChaosProgram,
}

impl CorpusScenario {
    /// Replays the scenario and returns every violation it raises.
    pub fn replay(&self) -> Vec<Violation> {
        standard_spec(self.nodes, self.horizon, self.seed)
            .monitors(Watchdog::standard())
            .driver(Box::new(ProgramDriver::new(self.program.clone())))
            .run()
            .expect("corpus scenario spec must be valid")
            .violations()
            .to_vec()
    }

    /// Whether the replay still raises the expected violation.
    pub fn reproduces(&self) -> bool {
        self.replay().iter().any(|v| self.expect.matches(v))
    }

    /// Serializes to one corpus JSONL line (no trailing newline).
    pub fn to_json(&self) -> String {
        let opt = |v: Option<u32>| match v {
            Some(n) => n.to_string(),
            None => "null".to_string(),
        };
        format!(
            "{{\"schema\":\"{SCHEMA}\",\"version\":{VERSION},\"name\":{},\"nodes\":{},\
             \"horizon_ns\":{},\"seed\":{},\"expect\":{{\"monitor\":{},\"node\":{},\
             \"group\":{}}},\"ops\":{}}}",
            escape(&self.name),
            self.nodes,
            self.horizon.as_nanos(),
            self.seed,
            escape(&self.expect.monitor),
            opt(self.expect.node),
            opt(self.expect.group),
            self.program.to_json()
        )
    }

    /// Decodes one corpus line.
    pub fn from_json(line: &str) -> Result<CorpusScenario, String> {
        let v = Json::parse(line).map_err(|e| format!("corpus line is not JSON: {e}"))?;
        let schema = v.get("schema").and_then(Json::as_str).unwrap_or("");
        if schema != SCHEMA {
            return Err(format!("unknown corpus schema {schema:?}"));
        }
        let version = v.get("version").and_then(Json::as_u64).unwrap_or(0);
        if version != VERSION {
            return Err(format!("unsupported corpus version {version}"));
        }
        let str_field = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or(format!("corpus line missing string {key:?}"))
        };
        let u64_field = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or(format!("corpus line missing integer {key:?}"))
        };
        let expect = v.get("expect").ok_or("corpus line missing \"expect\"")?;
        let opt_u32 =
            |key: &str| -> Option<u32> { expect.get(key).and_then(Json::as_u64).map(|n| n as u32) };
        Ok(CorpusScenario {
            name: str_field("name")?,
            nodes: u64_field("nodes")? as u32,
            horizon: Duration::from_nanos(u64_field("horizon_ns")?),
            seed: u64_field("seed")?,
            expect: ViolationKey {
                monitor: expect
                    .get("monitor")
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or("corpus expect missing \"monitor\"")?,
                node: opt_u32("node"),
                group: opt_u32("group"),
            },
            program: ChaosProgram::from_json(v.get("ops").ok_or("corpus line missing \"ops\"")?)?,
        })
    }
}

/// Parses a whole corpus file (one scenario per line, blank lines and
/// `#` comment lines skipped), reporting the first bad line.
pub fn parse_corpus(text: &str) -> Result<Vec<CorpusScenario>, String> {
    let mut scenarios = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        scenarios.push(
            CorpusScenario::from_json(line).map_err(|e| format!("corpus line {}: {e}", i + 1))?,
        );
    }
    Ok(scenarios)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ChaosOp;
    use hades_time::Time;

    fn sample() -> CorpusScenario {
        let ms = |n| Time::ZERO + Duration::from_millis(n);
        CorpusScenario {
            name: "cut-during-view-change".into(),
            nodes: 4,
            horizon: Duration::from_millis(100),
            seed: 7,
            expect: ViolationKey {
                monitor: "view-agreement".into(),
                node: Some(3),
                group: None,
            },
            program: ChaosProgram {
                ops: vec![
                    ChaosOp::CutOneWay {
                        from: 0,
                        to: 3,
                        at: ms(63),
                        until: ms(66),
                    },
                    ChaosOp::Crash {
                        node: 1,
                        at: ms(61),
                        until: None,
                    },
                ],
            },
        }
    }

    #[test]
    fn scenarios_round_trip_through_the_line_format() {
        let scenario = sample();
        let line = scenario.to_json();
        assert_eq!(CorpusScenario::from_json(&line).unwrap(), scenario);
    }

    #[test]
    fn corpus_files_skip_comments_and_report_bad_lines() {
        let good = sample().to_json();
        let text = format!("# a comment\n\n{good}\n{good}\n");
        assert_eq!(parse_corpus(&text).unwrap().len(), 2);
        let bad = format!("{good}\nnot json\n");
        let err = parse_corpus(&bad).unwrap_err();
        assert!(err.starts_with("corpus line 2:"), "got {err:?}");
    }

    #[test]
    fn schema_and_version_are_enforced() {
        let line = sample().to_json();
        let other = line.replace("hades-chaos-scenario", "other-schema");
        assert!(CorpusScenario::from_json(&other).is_err());
        let newer = line.replace("\"version\":1", "\"version\":2");
        assert!(CorpusScenario::from_json(&newer).is_err());
    }
}
