//! Typed chaos programs and the driver that runs them.
//!
//! A [`ChaosProgram`] is a list of [`ChaosOp`]s — the full fault/load
//! vocabulary of the reactive control plane, in a form the fuzzer can
//! generate, mutate, shrink and serialize. [`ProgramDriver`] lowers a
//! program onto a running cluster through the same
//! [`hades_cluster::ControlHandle`] a hand-written reactive driver
//! would use: timed ops are staged at start, service-level ops apply at
//! their instant from the periodic tick, and common-cause bursts fire
//! *reactively* on the first detection of their root fault.

use hades_cluster::{ClusterEvent, ControlHandle, ScenarioDriver};
use hades_telemetry::json::{escape, Json};
use hades_time::{Duration, Time};

/// One chaos operation. Times are absolute virtual instants; the
/// control plane clamps anything aimed at the past to "now".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaosOp {
    /// Crash `node` at `at`; restart it at `until` (`None` = for good).
    Crash {
        /// The victim.
        node: u32,
        /// Crash instant.
        at: Time,
        /// Cold-restart instant, if the node comes back.
        until: Option<Time>,
    },
    /// Sever only the directed link `from → to` during `[at, until]`.
    CutOneWay {
        /// Sender side of the dead direction.
        from: u32,
        /// Receiver side of the dead direction.
        to: u32,
        /// Window start.
        at: Time,
        /// Window end.
        until: Time,
    },
    /// Degrade (without severing) the directed link `from → to`.
    Degrade {
        /// Sender side.
        from: u32,
        /// Receiver side.
        to: u32,
        /// Window start.
        at: Time,
        /// Window end.
        until: Time,
        /// Extra latency every message suffers inside the window.
        extra_delay: Duration,
        /// Extra loss chance (‰) inside the window.
        loss_permille: u32,
    },
    /// Slow `node`'s CPU to `speed_permille / 1000` of nominal.
    Slow {
        /// The straggler.
        node: u32,
        /// Window start.
        at: Time,
        /// Window end.
        until: Time,
        /// CPU speed in permille of nominal (clamped to `1..=1000`).
        speed_permille: u32,
    },
    /// Skew `node`'s local clock from `at` on.
    Skew {
        /// The node whose timers drift.
        node: u32,
        /// Skew onset.
        at: Time,
        /// Drift in parts-per-billion (negative = slow clock).
        drift_ppb: i64,
    },
    /// Common-cause burst: when the crash of `root` is first *detected*
    /// by any survivor, each victim crashes in turn, staggered by
    /// `spacing`, each down for `down` — a correlated cascade seeded by
    /// one cause, injected reactively at the detection instant.
    CcfBurst {
        /// The seeded root fault (must crash through some other op).
        root: u32,
        /// Nodes dragged down by the common cause, in firing order.
        victims: Vec<u32>,
        /// Stagger between consecutive victim crashes.
        spacing: Duration,
        /// Down time of each victim.
        down: Duration,
    },
    /// Retune the named replicated workload to `permille` of nominal.
    Throttle {
        /// Service name (shared names address every match).
        service: String,
        /// When to retune.
        at: Time,
        /// New pacing in permille (0 = stopped, 1000 = nominal).
        permille: u32,
    },
    /// Retire the named service(s) from the running deployment.
    Retire {
        /// Service name.
        service: String,
        /// When to retire.
        at: Time,
    },
    /// Admit the named standby/retired service(s).
    Admit {
        /// Service name.
        service: String,
        /// When to admit.
        at: Time,
    },
}

fn ns(t: Time) -> u64 {
    (t - Time::ZERO).as_nanos()
}

impl ChaosOp {
    /// One-line JSON encoding (the corpus element format).
    pub fn to_json(&self) -> String {
        match self {
            ChaosOp::Crash { node, at, until } => {
                let until = match until {
                    Some(u) => format!("{}", ns(*u)),
                    None => "null".to_string(),
                };
                format!(
                    "{{\"op\":\"crash\",\"node\":{node},\"at_ns\":{},\"until_ns\":{until}}}",
                    ns(*at)
                )
            }
            ChaosOp::CutOneWay {
                from,
                to,
                at,
                until,
            } => format!(
                "{{\"op\":\"cut\",\"from\":{from},\"to\":{to},\"at_ns\":{},\"until_ns\":{}}}",
                ns(*at),
                ns(*until)
            ),
            ChaosOp::Degrade {
                from,
                to,
                at,
                until,
                extra_delay,
                loss_permille,
            } => format!(
                "{{\"op\":\"degrade\",\"from\":{from},\"to\":{to},\"at_ns\":{},\"until_ns\":{},\
                 \"extra_delay_ns\":{},\"loss_permille\":{loss_permille}}}",
                ns(*at),
                ns(*until),
                extra_delay.as_nanos()
            ),
            ChaosOp::Slow {
                node,
                at,
                until,
                speed_permille,
            } => format!(
                "{{\"op\":\"slow\",\"node\":{node},\"at_ns\":{},\"until_ns\":{},\
                 \"speed_permille\":{speed_permille}}}",
                ns(*at),
                ns(*until)
            ),
            ChaosOp::Skew {
                node,
                at,
                drift_ppb,
            } => format!(
                "{{\"op\":\"skew\",\"node\":{node},\"at_ns\":{},\"drift_ppb\":{drift_ppb}}}",
                ns(*at)
            ),
            ChaosOp::CcfBurst {
                root,
                victims,
                spacing,
                down,
            } => {
                let victims: Vec<String> = victims.iter().map(|v| v.to_string()).collect();
                format!(
                    "{{\"op\":\"ccf\",\"root\":{root},\"victims\":[{}],\"spacing_ns\":{},\
                     \"down_ns\":{}}}",
                    victims.join(","),
                    spacing.as_nanos(),
                    down.as_nanos()
                )
            }
            ChaosOp::Throttle {
                service,
                at,
                permille,
            } => format!(
                "{{\"op\":\"throttle\",\"service\":{},\"at_ns\":{},\"permille\":{permille}}}",
                escape(service),
                ns(*at)
            ),
            ChaosOp::Retire { service, at } => format!(
                "{{\"op\":\"retire\",\"service\":{},\"at_ns\":{}}}",
                escape(service),
                ns(*at)
            ),
            ChaosOp::Admit { service, at } => format!(
                "{{\"op\":\"admit\",\"service\":{},\"at_ns\":{}}}",
                escape(service),
                ns(*at)
            ),
        }
    }

    /// Decodes one op from its parsed JSON object.
    pub fn from_json(v: &Json) -> Result<ChaosOp, String> {
        let op = v
            .get("op")
            .and_then(Json::as_str)
            .ok_or("op object missing \"op\" kind")?;
        let node = |key: &str| -> Result<u32, String> {
            v.get(key)
                .and_then(Json::as_u64)
                .map(|n| n as u32)
                .ok_or(format!("op {op:?} missing integer {key:?}"))
        };
        let time = |key: &str| -> Result<Time, String> {
            v.get(key)
                .and_then(Json::as_u64)
                .map(Time::from_nanos)
                .ok_or(format!("op {op:?} missing timestamp {key:?}"))
        };
        let dur = |key: &str| -> Result<Duration, String> {
            v.get(key)
                .and_then(Json::as_u64)
                .map(Duration::from_nanos)
                .ok_or(format!("op {op:?} missing duration {key:?}"))
        };
        let service = || -> Result<String, String> {
            v.get("service")
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or(format!("op {op:?} missing \"service\""))
        };
        Ok(match op {
            "crash" => ChaosOp::Crash {
                node: node("node")?,
                at: time("at_ns")?,
                until: match v.get("until_ns") {
                    Some(Json::Null) | None => None,
                    Some(u) => Some(Time::from_nanos(
                        u.as_u64().ok_or("crash until_ns must be integer or null")?,
                    )),
                },
            },
            "cut" => ChaosOp::CutOneWay {
                from: node("from")?,
                to: node("to")?,
                at: time("at_ns")?,
                until: time("until_ns")?,
            },
            "degrade" => ChaosOp::Degrade {
                from: node("from")?,
                to: node("to")?,
                at: time("at_ns")?,
                until: time("until_ns")?,
                extra_delay: dur("extra_delay_ns")?,
                loss_permille: node("loss_permille")?,
            },
            "slow" => ChaosOp::Slow {
                node: node("node")?,
                at: time("at_ns")?,
                until: time("until_ns")?,
                speed_permille: node("speed_permille")?,
            },
            "skew" => ChaosOp::Skew {
                node: node("node")?,
                at: time("at_ns")?,
                drift_ppb: v
                    .get("drift_ppb")
                    .and_then(Json::as_f64)
                    .ok_or("skew missing drift_ppb")? as i64,
            },
            "ccf" => ChaosOp::CcfBurst {
                root: node("root")?,
                victims: v
                    .get("victims")
                    .and_then(Json::as_array)
                    .ok_or("ccf missing victims array")?
                    .iter()
                    .map(|j| j.as_u64().map(|n| n as u32).ok_or("victim must be integer"))
                    .collect::<Result<Vec<u32>, &str>>()?,
                spacing: dur("spacing_ns")?,
                down: dur("down_ns")?,
            },
            "throttle" => ChaosOp::Throttle {
                service: service()?,
                at: time("at_ns")?,
                permille: node("permille")?,
            },
            "retire" => ChaosOp::Retire {
                service: service()?,
                at: time("at_ns")?,
            },
            "admit" => ChaosOp::Admit {
                service: service()?,
                at: time("at_ns")?,
            },
            other => return Err(format!("unknown chaos op kind {other:?}")),
        })
    }
}

/// A typed fault/load script: the unit the fuzzer generates, runs,
/// shrinks and commits to the corpus.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ChaosProgram {
    /// The operations, in generation order (execution order is by each
    /// op's own instant; the order here only matters for shrinking).
    pub ops: Vec<ChaosOp>,
}

impl ChaosProgram {
    /// JSON array of op objects (one corpus field).
    pub fn to_json(&self) -> String {
        let ops: Vec<String> = self.ops.iter().map(ChaosOp::to_json).collect();
        format!("[{}]", ops.join(","))
    }

    /// Decodes a program from a parsed JSON array.
    pub fn from_json(v: &Json) -> Result<ChaosProgram, String> {
        let ops = v
            .as_array()
            .ok_or("program must be a JSON array of ops")?
            .iter()
            .map(ChaosOp::from_json)
            .collect::<Result<Vec<ChaosOp>, String>>()?;
        Ok(ChaosProgram { ops })
    }
}

/// Runs a [`ChaosProgram`] against a live cluster as a
/// [`ScenarioDriver`].
///
/// Fault-fabric ops (crashes, cuts, degrades, slows, skews) are staged
/// once at start with their absolute instants — the control plane
/// applies them on time. Service-level ops (throttle/retire/admit) have
/// no timed control variant, so they apply from the periodic tick at
/// the first tick at or after their instant. [`ChaosOp::CcfBurst`] is
/// the reactive piece: it arms on the program and fires when the
/// burst's root is first detected as crashed.
#[derive(Debug)]
pub struct ProgramDriver {
    program: ChaosProgram,
    /// Indices of service-level ops not yet applied, sorted by instant.
    queued: Vec<usize>,
    /// Armed CCF bursts: `(op index, fired)`.
    bursts: Vec<(usize, bool)>,
}

impl ProgramDriver {
    /// Wraps a program for execution.
    pub fn new(program: ChaosProgram) -> Self {
        ProgramDriver {
            program,
            queued: Vec::new(),
            bursts: Vec::new(),
        }
    }

    fn op_instant(&self, idx: usize) -> Time {
        match &self.program.ops[idx] {
            ChaosOp::Throttle { at, .. }
            | ChaosOp::Retire { at, .. }
            | ChaosOp::Admit { at, .. } => *at,
            _ => Time::ZERO,
        }
    }

    fn apply_service_op(&self, idx: usize, ctl: &mut ControlHandle<'_>) {
        match &self.program.ops[idx] {
            ChaosOp::Throttle {
                service, permille, ..
            } => {
                ctl.throttle_workload(service, *permille);
            }
            ChaosOp::Retire { service, .. } => {
                ctl.retire_service(service);
            }
            ChaosOp::Admit { service, .. } => {
                ctl.admit_service(service);
            }
            _ => {}
        }
    }
}

impl ScenarioDriver for ProgramDriver {
    fn on_start(&mut self, _now: Time, ctl: &mut ControlHandle<'_>) {
        for (idx, op) in self.program.ops.iter().enumerate() {
            match op {
                ChaosOp::Crash { node, at, until } => match until {
                    Some(until) => ctl.crash_window(*node, *at, *until),
                    None => ctl.crash_at(*node, *at),
                },
                ChaosOp::CutOneWay {
                    from,
                    to,
                    at,
                    until,
                } => ctl.cut_link(*from, *to, *at, *until),
                ChaosOp::Degrade {
                    from,
                    to,
                    at,
                    until,
                    extra_delay,
                    loss_permille,
                } => ctl.degrade_link(*from, *to, *at, *until, *extra_delay, *loss_permille),
                ChaosOp::Slow {
                    node,
                    at,
                    until,
                    speed_permille,
                } => ctl.slow_node(*node, *at, *until, *speed_permille),
                ChaosOp::Skew {
                    node,
                    at,
                    drift_ppb,
                } => ctl.skew_clock(*node, *at, *drift_ppb),
                ChaosOp::CcfBurst { .. } => self.bursts.push((idx, false)),
                ChaosOp::Throttle { .. } | ChaosOp::Retire { .. } | ChaosOp::Admit { .. } => {
                    self.queued.push(idx)
                }
            }
        }
        let instants: Vec<Time> = self.queued.iter().map(|i| self.op_instant(*i)).collect();
        let mut order: Vec<usize> = (0..self.queued.len()).collect();
        order.sort_by_key(|i| (instants[*i], self.queued[*i]));
        self.queued = order.into_iter().map(|i| self.queued[i]).collect();
    }

    fn on_event(&mut self, now: Time, event: &ClusterEvent, ctl: &mut ControlHandle<'_>) {
        let ClusterEvent::Detected { suspect, .. } = event else {
            return;
        };
        for slot in 0..self.bursts.len() {
            let (idx, fired) = self.bursts[slot];
            if fired {
                continue;
            }
            let ChaosOp::CcfBurst {
                root,
                victims,
                spacing,
                down,
            } = &self.program.ops[idx]
            else {
                continue;
            };
            if root != suspect {
                continue;
            }
            for (i, victim) in victims.iter().enumerate() {
                let at = now + spacing.saturating_mul(i as u64 + 1);
                ctl.crash_window(*victim, at, at + *down);
            }
            self.bursts[slot].1 = true;
        }
    }

    fn on_tick(&mut self, now: Time, ctl: &mut ControlHandle<'_>) {
        while let Some(idx) = self.queued.first().copied() {
            if self.op_instant(idx) > now {
                break;
            }
            self.apply_service_op(idx, ctl);
            self.queued.remove(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> Time {
        Time::ZERO + Duration::from_millis(ms)
    }

    fn sample_program() -> ChaosProgram {
        ChaosProgram {
            ops: vec![
                ChaosOp::Crash {
                    node: 0,
                    at: t(10),
                    until: Some(t(20)),
                },
                ChaosOp::Crash {
                    node: 1,
                    at: t(12),
                    until: None,
                },
                ChaosOp::CutOneWay {
                    from: 2,
                    to: 3,
                    at: t(5),
                    until: t(9),
                },
                ChaosOp::Degrade {
                    from: 1,
                    to: 0,
                    at: t(3),
                    until: t(40),
                    extra_delay: Duration::from_micros(250),
                    loss_permille: 400,
                },
                ChaosOp::Slow {
                    node: 2,
                    at: t(6),
                    until: t(11),
                    speed_permille: 125,
                },
                ChaosOp::Skew {
                    node: 3,
                    at: t(1),
                    drift_ppb: -2_000_000,
                },
                ChaosOp::CcfBurst {
                    root: 0,
                    victims: vec![2, 3],
                    spacing: Duration::from_micros(700),
                    down: Duration::from_millis(8),
                },
                ChaosOp::Throttle {
                    service: "store".into(),
                    at: t(15),
                    permille: 250,
                },
                ChaosOp::Retire {
                    service: "aux".into(),
                    at: t(18),
                },
                ChaosOp::Admit {
                    service: "aux".into(),
                    at: t(25),
                },
            ],
        }
    }

    #[test]
    fn every_op_round_trips_through_json() {
        let program = sample_program();
        let line = program.to_json();
        let parsed =
            ChaosProgram::from_json(&Json::parse(&line).expect("valid json")).expect("decodes");
        assert_eq!(parsed, program);
    }

    #[test]
    fn json_decode_rejects_junk() {
        assert!(ChaosOp::from_json(&Json::parse("{\"op\":\"warp\"}").unwrap()).is_err());
        assert!(ChaosOp::from_json(&Json::parse("{\"op\":\"crash\"}").unwrap()).is_err());
        assert!(ChaosProgram::from_json(&Json::parse("{}").unwrap()).is_err());
    }
}
