//! Properties of the variable-length membership sets: wire-encoding
//! roundtrips over the whole addressable range, word-wise merge
//! soundness, and view agreement among 96 engine-driven agents — the
//! scale the old packed-`u64` masks could not address.

use proptest::prelude::*;

use hades_services::actors::{AgentConfig, NodeAgent};
use hades_services::memberset::{MemberSet, MAX_NODES};
use hades_services::recovery::RecoveryConfig;
use hades_sim::{ActorEngine, FaultPlan, LinkConfig, Network, NodeId, SimRng};
use hades_time::{Duration, Time};

fn us(n: u64) -> Duration {
    Duration::from_micros(n)
}

fn ms(n: u64) -> Duration {
    Duration::from_millis(n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Byte encoding roundtrips for arbitrary member sets across the
    /// whole addressable node range.
    #[test]
    fn byte_encoding_roundtrips(raw in proptest::collection::vec(0u32..MAX_NODES, 0..40)) {
        let members: std::collections::BTreeSet<u32> = raw.into_iter().collect();
        let set: MemberSet = members.iter().copied().collect();
        prop_assert_eq!(set.len() as usize, members.len());
        let decoded = MemberSet::decode(&set.encode()).expect("own encoding decodes");
        prop_assert_eq!(&decoded, &set);
        prop_assert_eq!(decoded.to_vec(), members.into_iter().collect::<Vec<_>>());
    }

    /// Wire-word roundtrips: shipping a set as independent 32-bit words
    /// reconstructs it exactly, for any cluster size up to 256 nodes.
    #[test]
    fn wire_words_roundtrip(
        nodes in 1u32..256,
        seed_members in proptest::collection::vec(0u32..256, 0..32),
    ) {
        let set: MemberSet = seed_members.iter().copied().filter(|m| *m < nodes).collect();
        let mut rebuilt = MemberSet::new();
        for w in 0..MemberSet::wire_words(nodes) {
            rebuilt.set_wire_word(w, set.wire_word(w));
        }
        prop_assert_eq!(rebuilt, set);
    }

    /// Word-wise proposal merging equals whole-set merging: exclusion
    /// (intersection) for current view members, inclusion (union) for
    /// returners — the property that lets each wire word travel as an
    /// independent message.
    #[test]
    fn wordwise_merge_equals_setwise_merge(
        view in proptest::collection::vec(0u32..96, 1..40),
        a in proptest::collection::vec(0u32..96, 0..40),
        b in proptest::collection::vec(0u32..96, 0..40),
    ) {
        let view: MemberSet = view.into_iter().collect();
        let a: MemberSet = a.into_iter().collect();
        let b: MemberSet = b.into_iter().collect();
        // Whole-set merge: (a ∩ b ∩ view) ∪ ((a ∪ b) ∖ view).
        let mut expected = a.intersection(&b);
        expected.intersect_with(&view);
        let mut outside = a.union(&b);
        outside.subtract(&view);
        expected.union_with(&outside);
        // Word-wise merge.
        let mut merged = a.clone();
        for w in 0..MemberSet::wire_words(96) {
            merged.merge_wire_word(w, b.wire_word(w), &view);
        }
        prop_assert_eq!(merged, expected);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// View agreement at 96 nodes: whatever single node crashes, at any
    /// instant, under any seed, all 95 survivors install the identical
    /// two-view sequence over the word-chunked wire encoding.
    #[test]
    fn ninety_six_agents_agree_on_views(
        victim in 0u32..96,
        crash_us in 2_000u64..6_000,
        seed in 0u64..1_000,
    ) {
        let crash = Time::ZERO + us(crash_us);
        let plan = FaultPlan::new().crash_at(NodeId(victim), crash);
        let net = Network::homogeneous(
            96,
            LinkConfig::reliable(us(10), us(40)),
            SimRng::seed_from(seed),
        )
        .with_fault_plan(plan);
        let mut rt = ActorEngine::new(net);
        let logs: Vec<_> = (0..96)
            .map(|n| {
                let (agent, log) = NodeAgent::new(AgentConfig {
                    node: NodeId(n),
                    nodes: 96,
                    heartbeat_period: ms(1),
                    clock_precision: us(10),
                    f: 1,
                    recovery: RecoveryConfig::default(),
                    vc_delta_multicast: true,
                    vc_attempts: 1,
                });
                rt.add_actor(Box::new(agent));
                log
            })
            .collect();
        rt.run(Time::ZERO + ms(10));
        let reference = logs[if victim == 0 { 1 } else { 0 } as usize]
            .borrow()
            .view_members();
        prop_assert_eq!(reference.len(), 2);
        let expected: Vec<u32> = (0..96).filter(|n| *n != victim).collect();
        prop_assert_eq!(&reference[1].1, &expected);
        for n in (0..96usize).filter(|n| *n != victim as usize) {
            prop_assert_eq!(logs[n].borrow().view_members(), reference.clone());
        }
    }
}
