//! Resource-protocol behaviour end to end: the canonical priority-inversion
//! scenario of [CL90]/[Bak91] executed through the full dispatcher, with
//! the bounds asserted (the quantitative version of experiment E11).

use hades::prelude::*;

fn us(n: u64) -> Duration {
    Duration::from_micros(n)
}

/// Low (prio 1) locks R for 300 µs; a medium hog (prio 5, 600 µs, no
/// resources) preempts it; high (prio 9) then needs R.
fn scenario(builder: HadesNode) -> RunReport {
    let r0 = ResourceId(0);
    let low = Task::new(
        TaskId(0),
        Heug::single(
            CodeEu::new("low", us(300), ProcessorId(0))
                .with_resource(ResourceUse::exclusive(r0))
                .with_priority(Priority::new(1)),
        )
        .expect("valid"),
        ArrivalLaw::Aperiodic,
        us(10_000),
    );
    let med = Task::new(
        TaskId(1),
        Heug::single(CodeEu::new("med", us(600), ProcessorId(0)).with_priority(Priority::new(5)))
            .expect("valid"),
        ArrivalLaw::Aperiodic,
        us(10_000),
    );
    let high = Task::new(
        TaskId(2),
        Heug::single(
            CodeEu::new("high", us(100), ProcessorId(0))
                .with_resource(ResourceUse::exclusive(r0))
                .with_priority(Priority::new(9)),
        )
        .expect("valid"),
        ArrivalLaw::Aperiodic,
        us(10_000),
    );
    let mut sim = builder
        .policy(Policy::Manual)
        .tasks(vec![low, med, high])
        .horizon(us(20_000))
        .configure(|c| c.auto_activate = false)
        .build()
        .expect("valid deployment");
    sim.activate_at(TaskId(0), Time::ZERO);
    sim.activate_at(TaskId(1), Time::ZERO + us(50));
    sim.activate_at(TaskId(2), Time::ZERO + us(100));
    sim.run()
}

#[test]
fn plain_locking_suffers_unbounded_inversion() {
    let report = scenario(HadesNode::new());
    let rt = report.worst_response_times();
    // High waits for low, which waits behind the whole hog: the inversion
    // spans the hog's 600 µs — high's response far exceeds one critical
    // section (300 µs) plus its own work.
    assert!(rt[&TaskId(2)] >= us(800), "got {}", rt[&TaskId(2)]);
}

#[test]
fn pcp_bounds_high_blocking_to_one_section() {
    let report = scenario(HadesNode::new().pcp());
    let rt = report.worst_response_times();
    // High blocked by at most the remainder of low's section (≤ 300 µs)
    // plus its own 100 µs.
    assert!(rt[&TaskId(2)] <= us(400), "got {}", rt[&TaskId(2)]);
    // The hog is pushed behind the inherited-priority section.
    assert!(rt[&TaskId(1)] > us(600));
    assert!(report.all_deadlines_met());
}

#[test]
fn srp_bounds_high_blocking_to_one_section() {
    let report = scenario(HadesNode::new().srp());
    let rt = report.worst_response_times();
    assert!(rt[&TaskId(2)] <= us(400), "got {}", rt[&TaskId(2)]);
    assert!(report.all_deadlines_met());
}

#[test]
fn protocols_do_not_change_results_only_timing() {
    // All three protocols complete the same work with zero misses on this
    // feasible scenario; only response-time profiles differ.
    for builder in [
        HadesNode::new(),
        HadesNode::new().pcp(),
        HadesNode::new().srp(),
    ] {
        let report = scenario(builder);
        assert_eq!(report.instances.len(), 3);
        assert!(report.all_deadlines_met());
        assert!(report.monitor.is_healthy());
    }
}
