//! E2E: the online invariant watchdog. A seeded mid-recovery blackout —
//! node 0 restarts into a cluster whose every other node just died, so
//! its state transfer has no server — must raise `InvariantViolated`
//! cluster events *during* the run, at the engine instant the monitor
//! detected them, observable by reactive [`ScenarioDriver`]s; while a
//! fault-free run with every monitor armed stays silent and leaves the
//! report untouched.
//!
//! The serverless rejoin itself is no longer a stalled-transfer
//! violation: the joiner re-announces on the heartbeat cadence (each
//! re-announcement re-arms the stall watchdog) and, once the other
//! members announce too, the lowest announcer bootstraps a view and
//! serves the cluster back in — so the same blackout now *recovers*,
//! and only the group-level silence during the outage trips a monitor.

use std::cell::RefCell;
use std::rc::Rc;

use hades::prelude::*;
use hades_sim::NodeId;
use hades_telemetry::monitor::{validate_violations, violations_to_jsonl};

fn us(n: u64) -> Duration {
    Duration::from_micros(n)
}

fn ms(n: u64) -> Duration {
    Duration::from_millis(n)
}

fn t_ms(n: u64) -> Time {
    Time::ZERO + ms(n)
}

/// Records every `InvariantViolated` the control plane delivers, with
/// the callback instant — the proof the violation was observable online.
#[derive(Debug)]
struct ViolationRecorder {
    seen: Rc<RefCell<Vec<(Time, Time, String)>>>,
}

impl ScenarioDriver for ViolationRecorder {
    fn on_event(&mut self, now: Time, event: &ClusterEvent, _ctl: &mut ControlHandle<'_>) {
        if let ClusterEvent::InvariantViolated { monitor, at, .. } = event {
            self.seen.borrow_mut().push((now, *at, monitor.clone()));
        }
    }
}

/// Node 0 crashes at 15 ms and restarts at 35 ms — one millisecond
/// after every other node went down. Its rejoin announce finds no
/// live peer to serve the checkpoint transfer; the last requests
/// before the blackout outlive the group's answer bound (the
/// silent-group trip), while the rejoin protocol rides out the
/// blackout on re-announcements and bootstraps once the others return.
fn stall_spec(seed: u64) -> ClusterSpec {
    let mut plan = ScenarioPlan::new()
        .crash(NodeId(0), t_ms(15))
        .restart(NodeId(0), t_ms(35));
    for node in 1..4 {
        plan = plan
            .crash(NodeId(node), t_ms(34))
            .restart(NodeId(node), t_ms(70));
    }
    let mut spec = ClusterSpec::new(4)
        .seed(seed)
        .horizon(ms(100))
        .scenario(plan)
        .service(
            ServiceSpec::replicated(
                "store",
                ReplicaStyle::SemiActive,
                vec![0, 1, 2],
                GroupLoad::default(),
            )
            .workload(Box::new(
                ClosedLoop::new(us(500), ms(1), Time::ZERO + ms(2)).with_timeout(ms(4)),
            )),
        );
    for node in 0..4 {
        spec = spec.service(ServiceSpec::periodic("control", node, us(200), ms(2)));
    }
    spec
}

#[test]
fn serverless_rejoin_raises_violations_online() {
    let seen = Rc::new(RefCell::new(Vec::new()));
    let run = stall_spec(7)
        .monitors(Watchdog::standard())
        .driver(Box::new(ViolationRecorder { seen: seen.clone() }))
        .run()
        .expect("valid spec");

    // The run surfaced violations, and the event stream carries them.
    assert!(!run.violations().is_empty(), "chaos must trip a monitor");
    let in_stream: Vec<_> = run
        .events()
        .iter()
        .filter(|e| matches!(e, ClusterEvent::InvariantViolated { .. }))
        .collect();
    assert_eq!(in_stream.len(), run.violations().len());

    // The group fell silent during the blackout — that is the genuine
    // service-level violation this scenario pins.
    assert!(
        run.violations().iter().any(|v| v.monitor == "silent-group"),
        "the blackout must trip the silent-group monitor: {:?}",
        run.violations()
    );

    // The rejoin itself no longer stalls: node 0 re-announces through
    // the serverless window (re-arming the watchdog each time), then
    // bootstraps and serves the others back in — every scripted rejoin
    // completes and the survivors converge on full membership.
    assert!(
        !run.violations()
            .iter()
            .any(|v| v.monitor == "stalled-transfer"),
        "re-announcements and the bootstrap keep every transfer live: {:?}",
        run.violations()
    );
    let report = run.report();
    assert_eq!(
        report.recoveries.len() as u32,
        report.scripted_rejoins,
        "every scripted rejoin completed despite the serverless window"
    );
    let last_view = run
        .events()
        .iter()
        .rev()
        .find_map(|e| match e {
            ClusterEvent::ViewInstalled { members, .. } => Some(members.clone()),
            _ => None,
        })
        .expect("views were installed");
    assert_eq!(
        last_view,
        vec![0, 1, 2, 3],
        "the cluster converged on full membership"
    );

    // A reactive driver observed every violation online, at the engine
    // instant the monitor detected it.
    let seen = seen.borrow();
    assert_eq!(seen.len(), run.violations().len());
    for (now, at, monitor) in seen.iter() {
        assert_eq!(
            now, at,
            "{monitor} violation must be delivered at its own instant"
        );
    }

    // The exported JSONL round-trips through the schema validator.
    let jsonl = violations_to_jsonl(run.violations());
    let lines = validate_violations(&jsonl).expect("schema-valid violations");
    assert_eq!(lines, run.violations().len());
}

#[test]
fn violations_are_deterministic_under_fixed_seed() {
    let a = stall_spec(7)
        .monitors(Watchdog::standard())
        .run()
        .expect("valid spec");
    let b = stall_spec(7)
        .monitors(Watchdog::standard())
        .run()
        .expect("valid spec");
    assert!(!a.violations().is_empty());
    assert_eq!(
        violations_to_jsonl(a.violations()),
        violations_to_jsonl(b.violations())
    );
    assert_eq!(a.events(), b.events());
}

#[test]
fn fault_free_run_stays_silent_and_unperturbed() {
    // Same deployment, no faults: every monitor armed, zero violations,
    // and the watchdog's presence changes nothing the run reports.
    let healthy = |seed: u64| {
        let mut spec = ClusterSpec::new(4).seed(seed).horizon(ms(80)).service(
            ServiceSpec::replicated(
                "store",
                ReplicaStyle::SemiActive,
                vec![0, 1, 2],
                GroupLoad::default(),
            )
            .workload(Box::new(
                ClosedLoop::new(us(500), ms(1), Time::ZERO + ms(2)).with_timeout(ms(4)),
            )),
        );
        for node in 0..4 {
            spec = spec.service(ServiceSpec::periodic("control", node, us(200), ms(2)));
        }
        spec
    };
    let watched = healthy(9)
        .monitors(Watchdog::standard())
        .run()
        .expect("valid spec");
    let bare = healthy(9).run().expect("valid spec");
    assert!(
        watched.violations().is_empty(),
        "healthy run must not trip any monitor: {:?}",
        watched.violations()
    );
    assert_eq!(watched.report(), bare.report());
    assert_eq!(watched.events(), bare.events());
}
