//! Cross-crate distributed scenarios: multi-node HEUGs over the faulty
//! network, service composition, and end-to-end determinism.

use hades::prelude::*;
use hades_services::{
    BroadcastSim, ConsensusConfig, DetectorConfig, FloodConsensus, HeartbeatDetector, P2pConfig,
    ReliableP2p,
};

fn us(n: u64) -> Duration {
    Duration::from_micros(n)
}

fn ms(n: u64) -> Duration {
    Duration::from_millis(n)
}

/// A three-stage pipeline spanning three nodes.
fn pipeline_task() -> Task {
    let mut b = HeugBuilder::new("pipeline");
    let s0 = b.code_eu(CodeEu::new("acquire", us(100), ProcessorId(0)));
    let s1 = b.code_eu(CodeEu::new("process", us(200), ProcessorId(1)));
    let s2 = b.code_eu(CodeEu::new("deliver", us(100), ProcessorId(2)));
    b.precede_with(s0, s1, 256).precede_with(s1, s2, 64);
    Task::new(
        TaskId(0),
        b.build().unwrap(),
        ArrivalLaw::Periodic(ms(2)),
        ms(2),
    )
}

#[test]
fn three_node_pipeline_meets_deadlines() {
    let report = HadesNode::new()
        .task(pipeline_task())
        .link(LinkConfig::reliable(us(20), us(80)))
        .costs(CostModel::measured_default())
        .kernel(KernelModel::chorus_like())
        .horizon(ms(40))
        .seed(3)
        .run()
        .unwrap();
    assert!(report.all_deadlines_met(), "{} misses", report.misses());
    assert_eq!(report.monitor.network_omissions(), 0);
    // Every instance traverses two remote hops: response ≥ 400 µs compute
    // + 40 µs minimum network.
    let worst = report.worst_response_times()[&TaskId(0)];
    assert!(worst >= us(440));
    assert!(worst <= ms(2));
}

#[test]
fn pipeline_survives_transient_link_cut_with_detection() {
    // The 0→1 link is cut during [3 ms, 5 ms]: instances launched in the
    // window lose their remote precedence and are reaped; instances
    // outside complete.
    let plan =
        FaultPlan::new().cut_link(NodeId(0), NodeId(1), Time::ZERO + ms(3), Time::ZERO + ms(5));
    let net = Network::homogeneous(
        3,
        LinkConfig::reliable(us(20), us(80)),
        SimRng::seed_from(5),
    )
    .with_fault_plan(plan);
    let report = HadesNode::new()
        .task(pipeline_task())
        .network(net)
        .horizon(ms(20))
        .run()
        .unwrap();
    assert!(report.monitor.network_omissions() >= 1);
    assert!(report.misses() >= 1, "cut-window instances cannot complete");
    // Instances after the window complete again.
    let completed_late = report
        .instances
        .iter()
        .filter(|i| i.activated >= Time::ZERO + ms(6) && i.completed.is_some())
        .count();
    assert!(completed_late >= 5, "recovery after the window");
}

#[test]
fn end_to_end_determinism_across_reruns() {
    let run = || {
        HadesNode::new()
            .task(pipeline_task())
            .link(
                LinkConfig::reliable(us(20), us(80))
                    .with_omissions(50)
                    .with_performance_failures(30, us(200)),
            )
            .costs(CostModel::measured_default())
            .kernel(KernelModel::chorus_like())
            .configure(|c| {
                c.exec = ExecTimeModel::UniformFraction {
                    min_permille: 600,
                    max_permille: 1000,
                }
            })
            .horizon(ms(30))
            .seed(1234)
            .run()
            .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.instances, b.instances);
    assert_eq!(a.monitor.events(), b.monitor.events());
    assert_eq!(a.kernel_cpu, b.kernel_cpu);
    assert_eq!(a.finished_at, b.finished_at);
}

#[test]
fn detector_feeds_consensus_based_reconfiguration() {
    // Crash node 2 at 4 ms; the detector must flag it before the group
    // reconfigures by consensus on the surviving membership.
    let link = LinkConfig::reliable(us(10), us(40));
    let plan = FaultPlan::new().crash_at(NodeId(2), Time::ZERO + ms(4));
    let det = HeartbeatDetector::new(DetectorConfig {
        heartbeat_period: ms(1),
        clock_precision: us(20),
        horizon: ms(15),
    })
    .observe(Network::homogeneous(4, link, SimRng::seed_from(8)).with_fault_plan(plan.clone()));
    assert!(det.is_perfect());
    let suspected_at = det.suspected_at[&2];

    // Proposals encode each node's view (bitmask of live members);
    // consensus starts after suspicion.
    let outcome = FloodConsensus::new(ConsensusConfig {
        f: 1,
        proposals: vec![0b1011, 0b1011, 0b1111, 0b1011],
        start: suspected_at,
    })
    .execute(Network::homogeneous(4, link, SimRng::seed_from(9)).with_fault_plan(plan));
    assert!(outcome.agreement_holds());
    assert_eq!(
        outcome.decided_value(),
        Some(0b1011),
        "crashed member excluded"
    );
    assert!(!outcome.decisions.contains_key(&2));
}

#[test]
fn reliable_p2p_composes_with_broadcast_bounds() {
    let link = LinkConfig::reliable(us(10), us(40)).with_omissions(200);
    let mut net = Network::homogeneous(4, link, SimRng::seed_from(10));
    let p2p = ReliableP2p::new(P2pConfig::for_network(&net, 6));
    let mut worst = Duration::ZERO;
    for i in 0..50 {
        let t = Time::ZERO + ms(i);
        if let hades_services::P2pOutcome::Delivered { delivered_at, .. } =
            p2p.send(&mut net, NodeId(0), NodeId(1), t)
        {
            worst = worst.max(delivered_at - t);
        } else {
            panic!("six attempts at 20% loss should always deliver");
        }
    }
    let cfg = P2pConfig::for_network(&net, 6);
    assert!(worst <= cfg.detection_bound(), "worst {worst} within bound");

    // Diffusion broadcast over the same lossy fabric still reaches all.
    let out = BroadcastSim::new(Network::homogeneous(4, link, SimRng::seed_from(11)), 1)
        .broadcast(NodeId(0), Time::ZERO);
    assert!(out.agreement_holds());
    assert!(out.missed.is_empty());
}
