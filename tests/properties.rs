//! Property-based tests on the core invariants of the HADES stack.

use proptest::prelude::*;

use hades::prelude::*;
use hades_dispatch::RunQueue;
use hades_dispatch::ThreadId;
use hades_sched::spring::{SpringHeuristic, SpringRequest};
use hades_services::{BroadcastSim, ConsensusConfig, FloodConsensus, StableStore};
use hades_sim::SimRng;
use hades_time::fault_tolerant_midpoint;

fn us(n: u64) -> Duration {
    Duration::from_micros(n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---------------- hades-time ----------------

    /// The fault-tolerant midpoint always lies within the range of the
    /// surviving (non-extreme) estimates — so f outliers can never drag it
    /// outside the correct clocks' envelope.
    #[test]
    fn midpoint_within_survivor_envelope(
        mut estimates in prop::collection::vec(-1_000_000i64..1_000_000, 4..20),
        f in 0usize..3,
    ) {
        prop_assume!(estimates.len() > 3 * f);
        let mid = fault_tolerant_midpoint(&estimates, f).unwrap();
        estimates.sort_unstable();
        let lo = estimates[f];
        let hi = estimates[estimates.len() - 1 - f];
        prop_assert!(mid >= lo && mid <= hi, "mid {mid} outside [{lo}, {hi}]");
    }

    /// Duration ceiling division is the mathematical ceiling.
    #[test]
    fn div_ceil_is_ceiling(t in 0u64..1_000_000, p in 1u64..10_000) {
        let k = Duration::from_nanos(t).div_ceil(Duration::from_nanos(p));
        prop_assert!(k * p >= t);
        prop_assert!(k == 0 || (k - 1) * p < t);
    }

    // ---------------- hades-task ----------------

    /// Random DAG edges (i → j with i < j) always build, and the
    /// topological order respects every edge.
    #[test]
    fn random_dags_build_and_topo_sort(
        n in 2u32..12,
        edge_picks in prop::collection::vec((0u32..100, 0u32..100), 0..30),
    ) {
        let mut b = HeugBuilder::new("prop");
        for i in 0..n {
            b.code_eu(CodeEu::new(format!("eu{i}"), us(1), ProcessorId(0)));
        }
        let mut seen = std::collections::HashSet::new();
        for (x, y) in edge_picks {
            let (i, j) = (x % n, y % n);
            let (i, j) = if i < j { (i, j) } else if j < i { (j, i) } else { continue };
            if seen.insert((i, j)) {
                b.precede(EuIndex(i), EuIndex(j));
            }
        }
        let g = b.build().expect("forward edges cannot cycle");
        let topo = g.topological_order();
        prop_assert_eq!(topo.len(), n as usize);
        let pos: std::collections::HashMap<EuIndex, usize> =
            topo.iter().enumerate().map(|(p, e)| (*e, p)).collect();
        for e in g.edges() {
            prop_assert!(pos[&e.from] < pos[&e.to]);
        }
        // The critical path is bounded by total WCET and at least the
        // longest single unit.
        prop_assert!(g.critical_path() <= g.total_wcet());
        prop_assert!(g.critical_path() >= us(1));
    }

    /// A cycle through random permutation edges is always rejected.
    #[test]
    fn cycles_are_always_rejected(n in 2u32..10) {
        let mut b = HeugBuilder::new("cycle");
        for i in 0..n {
            b.code_eu(CodeEu::new(format!("eu{i}"), us(1), ProcessorId(0)));
        }
        for i in 0..n {
            b.precede(EuIndex(i), EuIndex((i + 1) % n));
        }
        prop_assert!(b.build().is_err());
    }

    // ---------------- hades-dispatch ----------------

    /// The run queue's choice is always a maximal-priority entry, and
    /// `preempter` never returns anything at or below the threshold.
    #[test]
    fn run_queue_ordering_invariant(
        entries in prop::collection::vec((0u64..50, 0u32..20), 1..25),
        pt in 0u32..20,
    ) {
        let mut q = RunQueue::new();
        let mut inserted = std::collections::HashSet::new();
        let mut best_prio = None;
        for (tid, prio) in &entries {
            if inserted.insert(*tid) {
                q.insert(ThreadId(*tid), Priority::new(*prio), Time::ZERO);
                best_prio = Some(best_prio.map_or(*prio, |b: u32| b.max(*prio)));
            }
        }
        let best = q.peek_best().expect("nonempty");
        prop_assert_eq!(q.peek_best_priority(), best_prio.map(Priority::new));
        // The chosen thread has the maximal priority.
        let chosen_prio = entries.iter().find(|(t, _)| *t == best.0).unwrap().1;
        // (There may be duplicates of tid with different prios; only first
        // insert counts.)
        let first_prio = entries
            .iter()
            .filter(|(t, _)| *t == best.0)
            .map(|(_, p)| *p)
            .next()
            .unwrap_or(chosen_prio);
        prop_assert_eq!(Some(Priority::new(first_prio)), best_prio.map(Priority::new));
        match q.preempter(Priority::new(pt)) {
            Some(t) => {
                let p = entries.iter().filter(|(x, _)| *x == t.0).map(|(_, p)| *p).next().unwrap();
                prop_assert!(p > pt);
            }
            None => prop_assert!(best_prio.unwrap() <= pt),
        }
    }

    // ---------------- hades-sched ----------------

    /// Every plan the Spring planner emits is valid: slots respect
    /// arrivals and deadlines, never overlap, and cover every request.
    #[test]
    fn spring_plans_are_always_valid(
        raw in prop::collection::vec((0u64..500, 1u64..100, 0u64..1000), 1..10),
        heuristic in 0u8..4,
    ) {
        let heuristic = match heuristic {
            0 => SpringHeuristic::Fcfs,
            1 => SpringHeuristic::MinDeadline,
            2 => SpringHeuristic::MinLaxity,
            _ => SpringHeuristic::Weighted(2),
        };
        let requests: Vec<SpringRequest> = raw
            .iter()
            .enumerate()
            .map(|(i, (arr, wcet, slack))| SpringRequest {
                id: i as u32,
                arrival: Time::ZERO + us(*arr),
                wcet: us(*wcet),
                deadline: Time::ZERO + us(arr + wcet + slack),
            })
            .collect();
        if let Some(plan) = SpringPlanner::new(heuristic).plan(&requests) {
            prop_assert_eq!(plan.slots.len(), requests.len());
            let mut prev_end = Time::ZERO;
            for slot in &plan.slots {
                let r = requests.iter().find(|r| r.id == slot.id).unwrap();
                prop_assert!(slot.start >= r.arrival);
                prop_assert!(slot.end <= r.deadline);
                prop_assert_eq!(slot.end - slot.start, r.wcet);
                prop_assert!(slot.start >= prev_end, "slots overlap");
                prev_end = slot.end;
            }
        }
    }

    /// The cost-integrated feasibility test is monotone: scaling overheads
    /// up never turns a rejected set into an accepted one.
    #[test]
    fn feasibility_is_antitone_in_overheads(seed in 0u64..500) {
        let mut rng = SimRng::seed_from(seed);
        let n = rng.range_inclusive(2, 5) as u32;
        let tasks: Vec<SpuriTask> = (0..n)
            .map(|i| {
                let p = rng.range_inclusive(1_000, 20_000);
                let c = rng.range_inclusive(50, p / 2);
                let d = rng.range_inclusive(c, p);
                SpuriTask::independent(TaskId(i), format!("t{i}"), us(c), us(d), us(p))
            })
            .collect();
        let half = EdfAnalysisConfig::with_platform(
            CostModel::measured_default().scaled(500),
            KernelModel::none(),
        );
        let full = EdfAnalysisConfig::with_platform(
            CostModel::measured_default(),
            KernelModel::chorus_like(),
        );
        let accept_half = edf_feasible(&tasks, &half).feasible;
        let accept_full = edf_feasible(&tasks, &full).feasible;
        if accept_full {
            prop_assert!(accept_half, "more overhead accepted, less rejected");
        }
    }

    // ---------------- hades-services ----------------

    /// Broadcast agreement and validity hold under *any* crash pattern on
    /// reliable links (the fault model the diffusion protocol is designed
    /// for): every node correct throughout delivers, and the bound holds.
    #[test]
    fn broadcast_agreement_under_any_crashes(
        seed in 0u64..1000,
        n in 3u32..8,
        crashes in prop::collection::vec((0u32..8, 0u64..100_000), 0..3),
    ) {
        let mut plan = FaultPlan::new();
        for (node, at) in &crashes {
            if node % n != 0 {
                // Initiator stays correct: validity then demands delivery
                // at every correct node.
                plan = plan.crash_at(NodeId(node % n), Time::from_nanos(*at));
            }
        }
        let link = LinkConfig::reliable(us(5), us(20));
        let net = Network::homogeneous(n, link, SimRng::seed_from(seed)).with_fault_plan(plan);
        let out = BroadcastSim::new(net, 1).broadcast(NodeId(0), Time::ZERO);
        prop_assert!(out.missed.is_empty(), "correct node missed: {:?}", out.missed);
        prop_assert!(out.agreement_holds());
        prop_assert!(out.delivered.contains_key(&0));
    }

    /// Consensus agreement + validity hold under any single crash time.
    #[test]
    fn consensus_safe_under_any_crash_time(
        seed in 0u64..500,
        crash_ns in 0u64..200_000,
        victim in 0u32..4,
        proposals in prop::collection::vec(0u64..100, 4),
    ) {
        let plan = FaultPlan::new().crash_at(NodeId(victim), Time::from_nanos(crash_ns));
        let net = Network::homogeneous(
            4,
            LinkConfig::reliable(us(5), us(20)),
            SimRng::seed_from(seed),
        )
        .with_fault_plan(plan);
        let out = FloodConsensus::new(ConsensusConfig {
            f: 1,
            proposals: proposals.clone(),
            start: Time::ZERO,
        })
        .execute(net);
        prop_assert!(out.agreement_holds());
        prop_assert!(out.validity_holds(&proposals));
        prop_assert!(out.decisions.len() >= 3);
    }

    /// Stable storage: after any sequence of stage/commit/crash
    /// operations, a read returns the last *committed* value.
    #[test]
    fn storage_always_returns_last_committed(ops in prop::collection::vec(0u8..4, 1..40)) {
        let mut store = StableStore::new();
        let mut committed: Option<u8> = None;
        let mut staged: Option<u8> = None;
        let mut counter = 0u8;
        for op in ops {
            match op {
                0 => {
                    counter = counter.wrapping_add(1);
                    store.stage(b"k", vec![counter]);
                    staged = Some(counter);
                }
                1 => {
                    if store.commit(b"k") {
                        committed = staged.take();
                    }
                }
                2 => {
                    store.crash();
                    staged = None;
                }
                _ => {
                    match (store.read(b"k"), committed) {
                        (Ok(v), Some(c)) => prop_assert_eq!(v, &[c][..]),
                        (Err(_), None) => {}
                        (got, want) => {
                            return Err(TestCaseError::fail(format!(
                                "read {got:?}, committed {want:?}"
                            )));
                        }
                    }
                }
            }
        }
    }
}
