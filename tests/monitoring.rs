//! Experiment E14 as a test: every monitoring event class of
//! Section 3.2.1 is detected by the dispatcher. The paper remarks that no
//! existing real-time environment implemented all of them; this test pins
//! each one to a concrete fault-injection scenario.

use hades::prelude::*;

fn us(n: u64) -> Duration {
    Duration::from_micros(n)
}

fn single(id: u32, name: &str, wcet: Duration) -> Task {
    Task::new(
        TaskId(id),
        Heug::single(CodeEu::new(name, wcet, ProcessorId(0))).expect("valid"),
        ArrivalLaw::Aperiodic,
        us(500),
    )
}

#[test]
fn deadline_violation_is_detected() {
    let mut sim = HadesNode::new()
        .task(single(0, "slow", us(900))) // deadline 500
        .configure(|c| c.auto_activate = false)
        .horizon(us(2_000))
        .build()
        .unwrap();
    sim.activate_at(TaskId(0), Time::ZERO);
    let report = sim.run();
    assert_eq!(report.monitor.deadline_misses(), 1);
    assert_eq!(report.misses(), 1);
}

#[test]
fn arrival_law_violation_is_detected() {
    let t = Task::new(
        TaskId(0),
        Heug::single(CodeEu::new("s", us(10), ProcessorId(0))).unwrap(),
        ArrivalLaw::Sporadic(us(1_000)),
        us(1_000),
    );
    let mut sim = HadesNode::new()
        .task(t)
        .configure(|c| c.auto_activate = false)
        .horizon(us(5_000))
        .build()
        .unwrap();
    sim.activate_at(TaskId(0), Time::ZERO);
    sim.activate_at(TaskId(0), Time::ZERO + us(200)); // pseudo-period violated
    let report = sim.run();
    assert_eq!(report.monitor.arrival_violations(), 1);
}

#[test]
fn early_termination_is_detected_and_is_not_a_fault() {
    let mut sim = HadesNode::new()
        .task(single(0, "quick", us(100)))
        .configure(|c| {
            c.auto_activate = false;
            c.exec = ExecTimeModel::FractionPermille(400);
        })
        .horizon(us(2_000))
        .build()
        .unwrap();
    sim.activate_at(TaskId(0), Time::ZERO);
    let report = sim.run();
    assert_eq!(report.monitor.early_terminations(), 1);
    assert!(
        report.monitor.is_healthy(),
        "early termination is informational"
    );
    assert!(report.all_deadlines_met());
}

#[test]
fn orphans_are_reaped_when_an_instance_aborts() {
    // A two-unit chain whose first unit blows the deadline: under
    // AbortInstance the second unit is killed and counted as an orphan.
    let mut b = HeugBuilder::new("chain");
    let a = b.code_eu(CodeEu::new("head", us(900), ProcessorId(0)));
    let c = b.code_eu(CodeEu::new("tail", us(100), ProcessorId(0)));
    b.precede(a, c);
    let t = Task::new(
        TaskId(0),
        b.build().unwrap(),
        ArrivalLaw::Aperiodic,
        us(500),
    );
    let mut sim = HadesNode::new()
        .task(t)
        .configure(|c| {
            c.auto_activate = false;
            c.miss_policy = MissPolicy::AbortInstance;
        })
        .horizon(us(3_000))
        .build()
        .unwrap();
    sim.activate_at(TaskId(0), Time::ZERO);
    let report = sim.run();
    assert_eq!(report.monitor.deadline_misses(), 1);
    assert!(
        report.monitor.orphans() >= 1,
        "the tail thread is an orphan"
    );
}

#[test]
fn latest_start_overrun_is_detected() {
    let hog = Task::new(
        TaskId(0),
        Heug::single(CodeEu::new("hog", us(400), ProcessorId(0)).with_priority(Priority::new(9)))
            .unwrap(),
        ArrivalLaw::Aperiodic,
        us(5_000),
    );
    let meek = Task::new(
        TaskId(1),
        Heug::single(
            CodeEu::new("meek", us(10), ProcessorId(0))
                .with_timing(EuTiming::with_priority(Priority::new(1)).with_latest(us(100))),
        )
        .unwrap(),
        ArrivalLaw::Aperiodic,
        us(5_000),
    );
    let mut sim = HadesNode::new()
        .tasks(vec![hog, meek])
        .configure(|c| c.auto_activate = false)
        .horizon(us(5_000))
        .build()
        .unwrap();
    sim.activate_at(TaskId(0), Time::ZERO);
    sim.activate_at(TaskId(1), Time::ZERO);
    let report = sim.run();
    assert_eq!(report.monitor.latest_start_exceeded(), 1);
}

#[test]
fn stall_deadlock_is_detected_for_unsatisfiable_waits() {
    // Two tasks each waiting on a condition variable only the other would
    // set *after* running: a circular producer/consumer deadlock.
    let cv_a = CondVarId(0);
    let cv_b = CondVarId(1);
    let t0 = Task::new(
        TaskId(0),
        Heug::single(
            CodeEu::new("x", us(10), ProcessorId(0))
                .waiting_on(cv_a)
                .setting(cv_b),
        )
        .unwrap(),
        ArrivalLaw::Aperiodic,
        us(500),
    );
    let t1 = Task::new(
        TaskId(1),
        Heug::single(
            CodeEu::new("y", us(10), ProcessorId(0))
                .waiting_on(cv_b)
                .setting(cv_a),
        )
        .unwrap(),
        ArrivalLaw::Aperiodic,
        us(500),
    );
    let mut sim = HadesNode::new()
        .tasks(vec![t0, t1])
        .configure(|c| c.auto_activate = false)
        .horizon(us(3_000))
        .build()
        .unwrap();
    sim.activate_at(TaskId(0), Time::ZERO);
    sim.activate_at(TaskId(1), Time::ZERO);
    let report = sim.run();
    assert_eq!(
        report.monitor.stalls(),
        1,
        "circular wait surfaces as a stall"
    );
    assert_eq!(report.misses(), 2);
}

#[test]
fn network_omission_is_detected_via_remote_precedence() {
    let mut b = HeugBuilder::new("dist");
    let a = b.code_eu(CodeEu::new("send", us(10), ProcessorId(0)));
    let c = b.code_eu(CodeEu::new("recv", us(10), ProcessorId(1)));
    b.precede(a, c);
    let t = Task::new(
        TaskId(0),
        b.build().unwrap(),
        ArrivalLaw::Aperiodic,
        us(5_000),
    );
    let mut sim = HadesNode::new()
        .task(t)
        .link(LinkConfig::reliable(us(10), us(20)).with_omissions(1000))
        .configure(|c| c.auto_activate = false)
        .horizon(us(5_000))
        .build()
        .unwrap();
    sim.activate_at(TaskId(0), Time::ZERO);
    let report = sim.run();
    assert_eq!(report.monitor.network_omissions(), 1);
    assert_eq!(report.monitor.orphans(), 1, "the receiver thread is reaped");
}

#[test]
fn healthy_run_raises_no_alarm() {
    let t = Task::new(
        TaskId(0),
        Heug::single(CodeEu::new("ok", us(100), ProcessorId(0))).unwrap(),
        ArrivalLaw::Periodic(us(1_000)),
        us(1_000),
    );
    let report = HadesNode::new()
        .task(t)
        .costs(CostModel::measured_default())
        .kernel(KernelModel::chorus_like())
        .horizon(Duration::from_millis(20))
        .run()
        .unwrap();
    assert!(
        report.monitor.is_clean(),
        "events: {:?}",
        report.monitor.events()
    );
    assert!(report.all_deadlines_met());
}
