//! Experiment E7 as a test: the central claim of the paper.
//!
//! A feasibility test that integrates the middleware's own costs
//! (Section 5.3) stays *sufficient* on the real platform: every task set it
//! accepts meets all deadlines when executed with dispatcher costs,
//! scheduler notifications and kernel interrupts charged. The naive test
//! (zero overheads) does not have this property — it accepts sets that
//! miss deadlines once overheads are real.

use hades::prelude::*;
use hades_sim::SimRng;

fn random_set(rng: &mut SimRng, n_tasks: u32, target_util_permille: u64) -> Vec<SpuriTask> {
    // Split the utilisation budget across tasks; random periods.
    let mut tasks = Vec::new();
    let share = target_util_permille / n_tasks as u64;
    for i in 0..n_tasks {
        let period_us = rng.range_inclusive(2_000, 20_000);
        let c_us = (period_us * share / 1000).max(50);
        let deadline_us = rng.range_inclusive(c_us.saturating_mul(2).max(500), period_us);
        tasks.push(SpuriTask::independent(
            TaskId(i),
            format!("t{i}"),
            Duration::from_micros(c_us),
            Duration::from_micros(deadline_us),
            Duration::from_micros(period_us),
        ));
    }
    tasks
}

fn run_with_costs(tasks: &[SpuriTask], costs: CostModel, kernel: KernelModel) -> RunReport {
    let blocking = hades_sched::analysis::edf_demand::spuri_blocking(tasks);
    let concrete: Vec<Task> = tasks
        .iter()
        .zip(&blocking)
        .map(|(t, b)| t.to_task(*b).expect("valid translation"))
        .collect();
    HadesNode::new()
        .tasks(concrete)
        .policy(Policy::Edf)
        .srp()
        .costs(costs)
        .kernel(kernel)
        .horizon(Duration::from_millis(60))
        .configure(|c| c.trace = false)
        .seed(99)
        .run()
        .expect("valid deployment")
}

#[test]
fn cost_aware_acceptance_is_sound_on_the_costed_platform() {
    let costs = CostModel::measured_default();
    let kernel = KernelModel::chorus_like();
    let cfg = EdfAnalysisConfig::with_platform(costs, kernel.clone());
    let mut rng = SimRng::seed_from(2024);
    let mut accepted = 0;
    for trial in 0..40 {
        let util = rng.range_inclusive(300, 850);
        let tasks = random_set(&mut rng.split(trial), 4, util);
        let verdict = edf_feasible(&tasks, &cfg);
        if !verdict.feasible {
            continue;
        }
        accepted += 1;
        let report = run_with_costs(&tasks, costs, kernel.clone());
        assert!(
            report.all_deadlines_met(),
            "trial {trial}: cost-aware test accepted a set that missed \
             {} deadlines (util {:.3})",
            report.misses(),
            verdict.utilization
        );
    }
    assert!(
        accepted >= 5,
        "the sweep must exercise accepted sets, got {accepted}"
    );
}

#[test]
fn naive_acceptance_is_unsound_under_real_overheads() {
    // A set at ~96% raw utilisation: trivially accepted by the naive test,
    // rejected by the cost-integrated one, and missing deadlines when
    // executed with real overheads.
    let tasks = vec![
        SpuriTask::independent(
            TaskId(0),
            "a",
            Duration::from_micros(480),
            Duration::from_millis(1),
            Duration::from_millis(1),
        ),
        SpuriTask::independent(
            TaskId(1),
            "b",
            Duration::from_micros(480),
            Duration::from_millis(1),
            Duration::from_millis(1),
        ),
    ];
    let naive = edf_feasible(&tasks, &EdfAnalysisConfig::naive());
    assert!(naive.feasible, "the naive test waves this set through");

    let costs = CostModel::measured_default();
    let kernel = KernelModel::chorus_like();
    let aware = edf_feasible(
        &tasks,
        &EdfAnalysisConfig::with_platform(costs, kernel.clone()),
    );
    assert!(!aware.feasible, "the cost-integrated test rejects it");

    let report = run_with_costs(&tasks, costs, kernel);
    assert!(
        !report.all_deadlines_met(),
        "executing the naively-accepted set with real overheads must miss"
    );
}

#[test]
fn cost_aware_acceptance_is_monotone_in_overheads() {
    // Anything the cost-integrated test accepts, the naive test accepts
    // too (the converse direction of E6's acceptance-ratio gap).
    let mut rng = SimRng::seed_from(77);
    let costs = CostModel::measured_default();
    let kernel = KernelModel::chorus_like();
    let cfg = EdfAnalysisConfig::with_platform(costs, kernel);
    for trial in 0..60 {
        let util = rng.range_inclusive(200, 990);
        let tasks = random_set(&mut rng.split(1000 + trial), 5, util);
        let aware = edf_feasible(&tasks, &cfg);
        let naive = edf_feasible(&tasks, &EdfAnalysisConfig::naive());
        if aware.feasible {
            assert!(
                naive.feasible,
                "trial {trial}: naive test rejected what the costed test accepted"
            );
        }
    }
}

#[test]
fn rta_acceptance_is_sound_for_rm_on_the_costed_platform() {
    // The fixed-priority twin of the EDF property: response-time analysis
    // with cost inflation and kernel interference (BTW95-style) accepts
    // only sets that execute cleanly under RM with the same overheads.
    use hades_sched::analysis::rta::{rta_feasible, RtaTask};
    let costs = CostModel::measured_default();
    let kernel = KernelModel::chorus_like();
    let rng = SimRng::seed_from(31);
    let mut accepted = 0;
    for trial in 0..40u64 {
        let mut sub = rng.split(trial);
        let n = sub.range_inclusive(2, 5) as u32;
        let mut specs = Vec::new();
        for i in 0..n {
            let period = sub.range_inclusive(1_000, 20_000);
            let c = sub.range_inclusive(100, period / 2);
            specs.push((i, Duration::from_micros(c), Duration::from_micros(period)));
        }
        // RM order: shortest period = highest priority.
        let mut by_prio = specs.clone();
        by_prio.sort_by_key(|(_, _, p)| *p);
        let rta_tasks: Vec<RtaTask> = by_prio
            .iter()
            .map(|(_, c, p)| RtaTask {
                c: *c,
                period: *p,
                deadline: *p,
                blocking: Duration::ZERO,
            })
            .collect();
        if !rta_feasible(&rta_tasks, &costs, &kernel).feasible {
            continue;
        }
        accepted += 1;
        let tasks: Vec<Task> = specs
            .iter()
            .map(|(i, c, p)| {
                Task::new(
                    TaskId(*i),
                    Heug::single(CodeEu::new(format!("t{i}"), *c, ProcessorId(0))).expect("valid"),
                    ArrivalLaw::Periodic(*p),
                    *p,
                )
            })
            .collect();
        let report = HadesNode::new()
            .tasks(tasks)
            .policy(Policy::RateMonotonic)
            .costs(costs)
            .kernel(kernel.clone())
            .horizon(Duration::from_millis(60))
            .configure(|c| c.trace = false)
            .run()
            .expect("valid deployment");
        assert!(
            report.all_deadlines_met(),
            "trial {trial}: RTA accepted a set that missed {} deadlines",
            report.misses()
        );
    }
    assert!(
        accepted >= 10,
        "sweep must exercise accepted sets, got {accepted}"
    );
}

#[test]
fn resource_sharing_sets_are_validated_too() {
    // Two tasks sharing one resource under SRP: accepted by the costed
    // test, then executed cleanly with SRP in the dispatcher.
    let r = ResourceId(0);
    let tasks = vec![
        SpuriTask::with_section(
            TaskId(0),
            "fast",
            Duration::from_micros(100),
            Duration::from_micros(200),
            Duration::from_micros(100),
            r,
            Duration::from_millis(2),
            Duration::from_millis(2),
        ),
        SpuriTask::with_section(
            TaskId(1),
            "slow",
            Duration::from_micros(200),
            Duration::from_micros(400),
            Duration::from_micros(200),
            r,
            Duration::from_millis(8),
            Duration::from_millis(8),
        ),
    ];
    let costs = CostModel::measured_default();
    let kernel = KernelModel::chorus_like();
    let verdict = edf_feasible(
        &tasks,
        &EdfAnalysisConfig::with_platform(costs, kernel.clone()),
    );
    assert!(verdict.feasible);
    let report = run_with_costs(&tasks, costs, kernel);
    assert!(report.all_deadlines_met(), "{} misses", report.misses());
}
