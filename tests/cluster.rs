//! End-to-end cluster scenarios: crash → detect → view change → failover
//! and crash → restart → state transfer → rejoin on the integrated
//! multi-node runtime, plus the detection- and rejoin-latency bounds as
//! properties over random scenarios.

use proptest::prelude::*;

use hades::prelude::*;
use hades_services::DetectorConfig;

fn us(n: u64) -> Duration {
    Duration::from_micros(n)
}

fn ms(n: u64) -> Duration {
    Duration::from_millis(n)
}

/// The acceptance scenario: a 4-node cluster under EDF with measured
/// dispatcher costs; node 0 (the passive primary) is killed at t = 50 ms.
fn failover_cluster(seed: u64) -> HadesCluster {
    let mut cluster = HadesCluster::new(4)
        .policy(Policy::Edf)
        .costs(CostModel::measured_default())
        .horizon(ms(100))
        .seed(seed)
        .scenario(ScenarioPlan::new().crash(NodeId(0), Time::ZERO + ms(50)));
    for node in 0..4 {
        cluster = cluster
            .periodic_app(node, "control", us(200), ms(2))
            .periodic_app(node, "logging", us(500), ms(10));
    }
    cluster
}

#[test]
fn crash_detect_view_change_failover_sequence() {
    let crash = Time::ZERO + ms(50);
    let report = failover_cluster(42).run().unwrap();

    // Detection: every surviving observer suspected node 0, nobody else,
    // within the analytic bound.
    assert!(report.no_false_suspicions());
    assert_eq!(report.detections.len(), 3, "three survivors, one suspect");
    for d in &report.detections {
        assert_eq!(d.suspect, 0);
        assert!(d.suspected_at > crash);
        assert!(d.latency.unwrap() <= report.detection_bound);
    }

    // Membership: one agreed view change, identical on every survivor.
    assert!(report.views_agree);
    assert_eq!(
        report.view_history,
        vec![(0, vec![0, 1, 2, 3]), (1, vec![1, 2, 3])]
    );

    // Replication: the passive replica on node 1 took over after the
    // crash, within detection + agreement time.
    assert_eq!(report.failovers.len(), 1);
    let f = report.failovers[0];
    assert_eq!(f.failed_primary, 0);
    assert_eq!(f.new_primary, 1);
    assert!(f.taken_over_at > crash);
    assert!(
        f.latency <= report.detection_bound + ms(2),
        "bounded takeover"
    );

    // Scheduling: all surviving nodes met every deadline, and the
    // middleware load is visible in each node's feasibility report.
    for n in &report.node_reports {
        if n.crashed_at.is_none() {
            assert_eq!(n.app_misses, 0, "node {} missed deadlines", n.node);
            assert_eq!(n.middleware_misses, 0);
        }
        assert!(n.feasibility.middleware_utilization_permille > 0);
        assert!(
            n.feasibility.inflated_utilization_permille
                >= n.feasibility.app_utilization_permille
                    + n.feasibility.middleware_utilization_permille,
            "the integrated test sees app + middleware + overhead"
        );
        assert!(n.feasibility.integrated_feasible);
    }
}

#[test]
fn identical_reports_for_identical_seeds() {
    let a = failover_cluster(7).run().unwrap();
    let b = failover_cluster(7).run().unwrap();
    assert_eq!(a, b, "the cluster run is a pure function of its inputs");
    let c = failover_cluster(8).run().unwrap();
    assert!(
        a.heartbeats_seen != c.heartbeats_seen || a != c,
        "different seed actually changes the run"
    );
}

#[test]
fn cluster_bound_matches_detector_config() {
    let cluster = failover_cluster(1);
    let link = LinkConfig::reliable(us(10), us(50));
    let gamma = MiddlewareConfig::default().clock_precision(&link);
    let net = Network::homogeneous(4, link, SimRng::seed_from(0));
    let detector = DetectorConfig {
        heartbeat_period: MiddlewareConfig::default().heartbeat_period,
        clock_precision: gamma,
        horizon: ms(100),
    };
    assert_eq!(
        cluster.detection_bound(),
        detector.detection_bound(&net),
        "the cluster runtime honours the detector's analytic bound"
    );
}

/// The recovery acceptance scenario: node 2 crashes at 20 ms and restarts
/// at 45 ms; the run must produce a recovery record showing re-admission,
/// nonzero state-transfer bytes, and zero work while down.
fn recovery_cluster(seed: u64) -> HadesCluster {
    let mut cluster = HadesCluster::new(4)
        .policy(Policy::Edf)
        .costs(CostModel::measured_default())
        .horizon(ms(100))
        .seed(seed)
        .scenario(
            ScenarioPlan::new()
                .crash(NodeId(2), Time::ZERO + ms(20))
                .restart(NodeId(2), Time::ZERO + ms(45)),
        );
    for node in 0..4 {
        cluster = cluster
            .periodic_app(node, "control", us(200), ms(2))
            .periodic_app(node, "logging", us(500), ms(10));
    }
    cluster
}

#[test]
fn crash_restart_state_transfer_rejoin_sequence() {
    let crash = Time::ZERO + ms(20);
    let restart = Time::ZERO + ms(45);
    let report = recovery_cluster(42).run().unwrap();

    // The crash was detected, the node removed, then re-admitted: the
    // never-crashed nodes agree on the full view sequence ending with
    // everyone back in.
    assert!(report.views_agree);
    let views = &report.view_history;
    assert_eq!(views.first().unwrap().1, vec![0, 1, 2, 3]);
    assert!(
        views.iter().any(|(_, members)| *members == vec![0, 1, 3]),
        "node 2 was removed while down: {views:?}"
    );
    assert_eq!(views.last().unwrap().1, vec![0, 1, 2, 3], "and re-admitted");

    // The recovery record decomposes the rejoin and charges the transfer.
    assert_eq!(report.recoveries.len(), 1);
    let r = report.recoveries[0];
    assert_eq!(r.node, 2);
    assert_eq!((r.crashed_at, r.restarted_at), (crash, restart));
    let detect = r.detect_latency.expect("survivors detected the crash");
    assert!(detect <= report.detection_bound);
    assert!(r.bytes_transferred > 0, "state transfer is not free");
    assert!(r.chunks > 1, "the snapshot shipped in several messages");
    assert!(r.log_entries_replayed > 0, "the log tail was replayed");
    assert_eq!(
        r.announce_latency + r.transfer_latency + r.readmit_latency,
        r.rejoin_latency
    );
    assert!(report.rejoin_within_bound());

    // Middleware cost tasks for the transfer ran on the server (node 0)
    // and the joiner, and the feasibility analysis saw their load.
    for n in &report.node_reports {
        assert!(n.feasibility.integrated_feasible);
        assert!(n.feasibility.middleware_utilization_permille > 0);
    }
    // Live spans kept meeting deadlines everywhere.
    assert!(report.all_app_deadlines_met());
}

#[test]
fn crashed_dispatcher_performs_zero_work_while_down() {
    // Regression for the dispatcher kill switch: between crash and
    // restart the node must execute nothing — its application and
    // middleware instance counts over the down window are zero.
    let report = recovery_cluster(7).run().unwrap();
    let down = recovery_cluster(7)
        .scenario(ScenarioPlan::new().crash(NodeId(2), Time::ZERO + ms(20)))
        .run()
        .unwrap();
    // In the permanent-crash run, node 2 accrues exactly the pre-crash
    // instances; the restart run adds post-restart instances on top. Both
    // agree there is no instance in the down window [20 ms, 45 ms).
    let n2 = &report.node_reports[2];
    let n2_perm = &down.node_reports[2];
    assert!(n2.app_instances > n2_perm.app_instances, "work resumed");
    // ~10 control periods (2 ms) + ~2 logging periods (10 ms) died with
    // the down window; the live-span counts must reflect the gap: a full
    // 100 ms of 2 ms control is 51 instances, the 25 ms gap removes ~12.
    assert!(
        n2.app_instances <= report.node_reports[1].app_instances - 10,
        "down window produced no work: {} vs {}",
        n2.app_instances,
        report.node_reports[1].app_instances
    );
    assert_eq!(n2.app_misses, 0, "no artifact misses from the crash");
}

#[test]
fn rejoin_latency_bound_matches_components() {
    let cluster = recovery_cluster(1);
    let link = LinkConfig::reliable(us(10), us(50));
    let mw = MiddlewareConfig::default();
    let gamma = mw.clock_precision(&link);
    let detection = mw.heartbeat_period + (mw.heartbeat_period + us(50) + gamma);
    assert!(
        cluster.rejoin_bound() > detection,
        "the rejoin bound strictly contains the detection bound"
    );
    assert!(
        cluster.rejoin_bound() >= detection + mw.recovery.transfer_bound(us(50)),
        "and the transfer bound"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Detection latency never exceeds the `DetectorConfig` bound, for any
    /// victim, crash time, seed and cluster size.
    #[test]
    fn detection_latency_never_exceeds_bound(
        seed in 0u64..10_000,
        victim in 0u32..8,
        crash_ms in 1u64..25,
        nodes in 3u32..8,
    ) {
        let victim = victim % nodes;
        let crash = Time::ZERO + ms(crash_ms);
        let mut cluster = HadesCluster::new(nodes)
            .horizon(ms(40))
            .seed(seed)
            .scenario(ScenarioPlan::new().crash(NodeId(victim), crash));
        for node in 0..nodes {
            cluster = cluster.periodic_app(node, "app", us(100), ms(2));
        }
        let bound = cluster.detection_bound();
        let report = cluster.run().unwrap();
        prop_assert!(report.no_false_suspicions());
        prop_assert_eq!(report.detections.len() as u32, nodes - 1);
        for d in &report.detections {
            prop_assert_eq!(d.suspect, victim);
            let latency = d.latency.expect("victim really crashed");
            prop_assert!(
                latency <= bound,
                "observer {} latency {} > bound {}",
                d.observer,
                latency,
                bound
            );
        }
        prop_assert!(report.views_agree);
    }

    /// Rejoin latency never exceeds detection bound + transfer bound +
    /// one agreement window, for any victim, crash window, seed and
    /// cluster size — and the recovery record always shows re-admission
    /// into the agreed view with nonzero transferred state.
    #[test]
    fn rejoin_latency_never_exceeds_bound(
        seed in 0u64..10_000,
        victim in 0u32..8,
        crash_ms in 5u64..15,
        down_ms in 8u64..20,
        nodes in 3u32..8,
    ) {
        let victim = victim % nodes;
        let crash = Time::ZERO + ms(crash_ms);
        let restart = crash + ms(down_ms);
        let mut cluster = HadesCluster::new(nodes)
            .horizon(ms(70))
            .seed(seed)
            .scenario(
                ScenarioPlan::new()
                    .crash(NodeId(victim), crash)
                    .restart(NodeId(victim), restart),
            );
        for node in 0..nodes {
            cluster = cluster.periodic_app(node, "app", us(100), ms(2));
        }
        let bound = cluster.rejoin_bound();
        let report = cluster.run().unwrap();
        prop_assert_eq!(report.recoveries.len(), 1);
        let r = report.recoveries[0];
        prop_assert_eq!(r.node, victim);
        prop_assert!(
            r.rejoin_latency <= bound,
            "rejoin {} > bound {}",
            r.rejoin_latency,
            bound
        );
        prop_assert!(r.bytes_transferred > 0);
        prop_assert!(report.views_agree);
        let expected: Vec<u32> = (0..nodes).collect();
        prop_assert_eq!(&report.view_history.last().unwrap().1, &expected);
    }
}
