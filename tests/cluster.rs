//! End-to-end cluster scenarios: crash → detect → view change → failover
//! on the integrated multi-node runtime, plus the detection-latency bound
//! as a property over random scenarios.

use proptest::prelude::*;

use hades::prelude::*;
use hades_services::DetectorConfig;

fn us(n: u64) -> Duration {
    Duration::from_micros(n)
}

fn ms(n: u64) -> Duration {
    Duration::from_millis(n)
}

/// The acceptance scenario: a 4-node cluster under EDF with measured
/// dispatcher costs; node 0 (the passive primary) is killed at t = 50 ms.
fn failover_cluster(seed: u64) -> HadesCluster {
    let mut cluster = HadesCluster::new(4)
        .policy(Policy::Edf)
        .costs(CostModel::measured_default())
        .horizon(ms(100))
        .seed(seed)
        .scenario(ScenarioPlan::new().crash(NodeId(0), Time::ZERO + ms(50)));
    for node in 0..4 {
        cluster = cluster
            .periodic_app(node, "control", us(200), ms(2))
            .periodic_app(node, "logging", us(500), ms(10));
    }
    cluster
}

#[test]
fn crash_detect_view_change_failover_sequence() {
    let crash = Time::ZERO + ms(50);
    let report = failover_cluster(42).run().unwrap();

    // Detection: every surviving observer suspected node 0, nobody else,
    // within the analytic bound.
    assert!(report.no_false_suspicions());
    assert_eq!(report.detections.len(), 3, "three survivors, one suspect");
    for d in &report.detections {
        assert_eq!(d.suspect, 0);
        assert!(d.suspected_at > crash);
        assert!(d.latency.unwrap() <= report.detection_bound);
    }

    // Membership: one agreed view change, identical on every survivor.
    assert!(report.views_agree);
    assert_eq!(
        report.view_history,
        vec![(0, vec![0, 1, 2, 3]), (1, vec![1, 2, 3])]
    );

    // Replication: the passive replica on node 1 took over after the
    // crash, within detection + agreement time.
    assert_eq!(report.failovers.len(), 1);
    let f = report.failovers[0];
    assert_eq!(f.failed_primary, 0);
    assert_eq!(f.new_primary, 1);
    assert!(f.taken_over_at > crash);
    assert!(
        f.latency <= report.detection_bound + ms(2),
        "bounded takeover"
    );

    // Scheduling: all surviving nodes met every deadline, and the
    // middleware load is visible in each node's feasibility report.
    for n in &report.node_reports {
        if n.crashed_at.is_none() {
            assert_eq!(n.app_misses, 0, "node {} missed deadlines", n.node);
            assert_eq!(n.middleware_misses, 0);
        }
        assert!(n.feasibility.middleware_utilization_permille > 0);
        assert!(
            n.feasibility.inflated_utilization_permille
                >= n.feasibility.app_utilization_permille
                    + n.feasibility.middleware_utilization_permille,
            "the integrated test sees app + middleware + overhead"
        );
        assert!(n.feasibility.integrated_feasible);
    }
}

#[test]
fn identical_reports_for_identical_seeds() {
    let a = failover_cluster(7).run().unwrap();
    let b = failover_cluster(7).run().unwrap();
    assert_eq!(a, b, "the cluster run is a pure function of its inputs");
    let c = failover_cluster(8).run().unwrap();
    assert!(
        a.heartbeats_seen != c.heartbeats_seen || a != c,
        "different seed actually changes the run"
    );
}

#[test]
fn cluster_bound_matches_detector_config() {
    let cluster = failover_cluster(1);
    let link = LinkConfig::reliable(us(10), us(50));
    let gamma = MiddlewareConfig::default().clock_precision(&link);
    let net = Network::homogeneous(4, link, SimRng::seed_from(0));
    let detector = DetectorConfig {
        heartbeat_period: MiddlewareConfig::default().heartbeat_period,
        clock_precision: gamma,
        horizon: ms(100),
    };
    assert_eq!(
        cluster.detection_bound(),
        detector.detection_bound(&net),
        "the cluster runtime honours the detector's analytic bound"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Detection latency never exceeds the `DetectorConfig` bound, for any
    /// victim, crash time, seed and cluster size.
    #[test]
    fn detection_latency_never_exceeds_bound(
        seed in 0u64..10_000,
        victim in 0u32..8,
        crash_ms in 1u64..25,
        nodes in 3u32..8,
    ) {
        let victim = victim % nodes;
        let crash = Time::ZERO + ms(crash_ms);
        let mut cluster = HadesCluster::new(nodes)
            .horizon(ms(40))
            .seed(seed)
            .scenario(ScenarioPlan::new().crash(NodeId(victim), crash));
        for node in 0..nodes {
            cluster = cluster.periodic_app(node, "app", us(100), ms(2));
        }
        let bound = cluster.detection_bound();
        let report = cluster.run().unwrap();
        prop_assert!(report.no_false_suspicions());
        prop_assert_eq!(report.detections.len() as u32, nodes - 1);
        for d in &report.detections {
            prop_assert_eq!(d.suspect, victim);
            let latency = d.latency.expect("victim really crashed");
            prop_assert!(
                latency <= bound,
                "observer {} latency {} > bound {}",
                d.observer,
                latency,
                bound
            );
        }
        prop_assert!(report.views_agree);
    }
}
