//! End-to-end cluster scenarios: crash → detect → view change → failover
//! and crash → restart → state transfer → rejoin on the integrated
//! multi-node runtime, expressed through the deployment-spec API — plus
//! the detection- and rejoin-latency bounds as properties over random
//! scenarios, the typed event stream, and a 96-node run beyond the old
//! 48-node membership-mask cap.

use proptest::prelude::*;

use hades::prelude::*;
use hades_services::DetectorConfig;

fn us(n: u64) -> Duration {
    Duration::from_micros(n)
}

fn ms(n: u64) -> Duration {
    Duration::from_millis(n)
}

/// The acceptance scenario: a 4-node deployment under EDF with measured
/// dispatcher costs; node 0 (the passive primary) is killed at t = 50 ms.
fn failover_spec(seed: u64) -> ClusterSpec {
    let mut spec = ClusterSpec::new(4)
        .policy(Policy::Edf)
        .costs(CostModel::measured_default())
        .horizon(ms(100))
        .seed(seed)
        .scenario(ScenarioPlan::new().crash(NodeId(0), Time::ZERO + ms(50)));
    for node in 0..4 {
        spec = spec
            .service(ServiceSpec::periodic("control", node, us(200), ms(2)))
            .service(ServiceSpec::periodic("logging", node, us(500), ms(10)));
    }
    spec
}

#[test]
fn crash_detect_view_change_failover_sequence() {
    let crash = Time::ZERO + ms(50);
    let run = failover_spec(42).run().unwrap();
    let report = run.report();

    // Detection: every surviving observer suspected node 0, nobody else,
    // within the analytic bound.
    assert!(report.no_false_suspicions());
    assert_eq!(report.detections.len(), 3, "three survivors, one suspect");
    for d in &report.detections {
        assert_eq!(d.suspect, 0);
        assert!(d.suspected_at > crash);
        assert!(d.latency.unwrap() <= report.detection_bound);
    }

    // Membership: one agreed view change, identical on every survivor.
    assert!(report.views_agree);
    assert_eq!(
        report.view_history,
        vec![(0, vec![0, 1, 2, 3]), (1, vec![1, 2, 3])]
    );

    // Replication: the passive replica on node 1 took over after the
    // crash, within detection + agreement time.
    assert_eq!(report.failovers.len(), 1);
    let f = report.failovers[0];
    assert_eq!(f.failed_primary, 0);
    assert_eq!(f.new_primary, 1);
    assert!(f.taken_over_at > crash);
    assert!(
        f.latency <= report.detection_bound + ms(2),
        "bounded takeover"
    );

    // Scheduling: all surviving nodes met every deadline, and the
    // middleware load is visible in each node's feasibility report.
    for n in &report.node_reports {
        if n.crashed_at.is_none() {
            assert_eq!(n.app_misses, 0, "node {} missed deadlines", n.node);
            assert_eq!(n.middleware_misses, 0);
        }
        assert!(n.feasibility.middleware_utilization_permille > 0);
        assert!(
            n.feasibility.inflated_utilization_permille
                >= n.feasibility.app_utilization_permille
                    + n.feasibility.middleware_utilization_permille,
            "the integrated test sees app + middleware + overhead"
        );
        assert!(n.feasibility.integrated_feasible);
    }
}

#[test]
fn event_stream_carries_the_causal_failover_sequence() {
    // The typed event stream replaces aggregate scraping: the causal
    // order crash → detection → view change → (failover) is asserted
    // directly on the sequence.
    let crash = Time::ZERO + ms(50);
    let run = failover_spec(42).run().unwrap();
    let events = run.events();
    assert!(!events.is_empty());
    // Time-sorted.
    assert!(events.windows(2).all(|w| w[0].at() <= w[1].at()));

    // View 0 installs at time zero, before anything else happens.
    let ClusterEvent::ViewInstalled { number: 0, at, .. } = events
        .iter()
        .find(|e| matches!(e, ClusterEvent::ViewInstalled { number: 0, .. }))
        .expect("view 0 installed")
    else {
        unreachable!()
    };
    assert_eq!(*at, Time::ZERO);

    // First detection precedes the exclusion view install, which
    // precedes (or coincides with) the failover takeover.
    let first_detection = events
        .iter()
        .find_map(|e| match e {
            ClusterEvent::Detected { suspect: 0, at, .. } => Some(*at),
            _ => None,
        })
        .expect("the crash was detected");
    let view1 = events
        .iter()
        .find_map(|e| match e {
            ClusterEvent::ViewInstalled {
                number: 1,
                members,
                at,
            } => {
                assert_eq!(members, &vec![1, 2, 3]);
                Some(*at)
            }
            _ => None,
        })
        .expect("the exclusion view installed");
    let failover = events
        .iter()
        .find_map(|e| match e {
            ClusterEvent::FailedOver {
                failed_primary: 0,
                new_primary: 1,
                at,
            } => Some(*at),
            _ => None,
        })
        .expect("the failover happened");
    assert!(crash < first_detection);
    assert!(first_detection < view1);
    assert!(view1 <= failover);

    // No deadline was missed, so the stream carries no miss events.
    assert!(run.events_of_kind("deadline-miss").next().is_none());

    // The compact kind sequence reads in causal order too.
    let kinds = run.kind_sequence();
    let pos = |k: &str| kinds.iter().position(|x| *x == k).unwrap();
    assert!(pos("detected") < pos("failed-over"));
}

#[test]
fn identical_reports_for_identical_seeds() {
    let a = failover_spec(7).run().unwrap();
    let b = failover_spec(7).run().unwrap();
    assert_eq!(a, b, "the cluster run is a pure function of its inputs");
    let c = failover_spec(8).run().unwrap();
    assert!(
        a.report().heartbeats_seen != c.report().heartbeats_seen || a != c,
        "different seed actually changes the run"
    );
}

#[test]
fn cluster_bound_matches_detector_config() {
    let spec = failover_spec(1);
    let link = LinkConfig::reliable(us(10), us(50));
    let gamma = MiddlewareConfig::default().clock_precision(&link);
    let net = Network::homogeneous(4, link, SimRng::seed_from(0));
    let detector = DetectorConfig {
        heartbeat_period: MiddlewareConfig::default().heartbeat_period,
        clock_precision: gamma,
        horizon: ms(100),
    };
    assert_eq!(
        spec.detection_bound(),
        detector.detection_bound(&net),
        "the cluster runtime honours the detector's analytic bound"
    );
}

#[test]
fn ninety_six_node_deployment_beyond_the_old_mask_cap() {
    // 96 nodes: double the 48-node ceiling of the packed-u64 membership
    // masks. One node crashes; every survivor must detect within the
    // bound and agree on the exclusion view, with membership riding the
    // three-word wire encoding.
    let crash = Time::ZERO + ms(8);
    let mut spec = ClusterSpec::new(96)
        .horizon(ms(25))
        .seed(5)
        .scenario(ScenarioPlan::new().crash(NodeId(70), crash));
    // A light sprinkling of application services keeps the dispatcher
    // involved without drowning the run.
    for node in [0u32, 23, 47, 70, 95] {
        spec = spec.service(ServiceSpec::periodic("probe", node, us(100), ms(2)));
    }
    let run = spec.run().unwrap();
    let report = run.report();
    assert!(report.views_agree, "96 nodes agree on the view sequence");
    let expected: Vec<u32> = (0..96).filter(|n| *n != 70).collect();
    assert_eq!(report.view_history.last().unwrap().1, expected);
    assert!(report.detection_within_bound());
    assert!(report.no_false_suspicions());
    assert_eq!(report.detections.len(), 95, "every survivor detected");
    // The event stream scales with it: 95 detections then one install.
    let view1_at = run
        .events()
        .iter()
        .find_map(|e| match e {
            ClusterEvent::ViewInstalled { number: 1, at, .. } => Some(*at),
            _ => None,
        })
        .expect("exclusion view installed");
    assert!(view1_at > crash);
}

/// The recovery acceptance scenario: node 2 crashes at 20 ms and restarts
/// at 45 ms; the run must produce a recovery record showing re-admission,
/// nonzero state-transfer bytes, and zero work while down.
fn recovery_spec(seed: u64) -> ClusterSpec {
    let mut spec = ClusterSpec::new(4)
        .policy(Policy::Edf)
        .costs(CostModel::measured_default())
        .horizon(ms(100))
        .seed(seed)
        .scenario(
            ScenarioPlan::new()
                .crash(NodeId(2), Time::ZERO + ms(20))
                .restart(NodeId(2), Time::ZERO + ms(45)),
        );
    for node in 0..4 {
        spec = spec
            .service(ServiceSpec::periodic("control", node, us(200), ms(2)))
            .service(ServiceSpec::periodic("logging", node, us(500), ms(10)));
    }
    spec
}

#[test]
fn crash_restart_state_transfer_rejoin_sequence() {
    let crash = Time::ZERO + ms(20);
    let restart = Time::ZERO + ms(45);
    let run = recovery_spec(42).run().unwrap();
    let report = run.report();

    // The crash was detected, the node removed, then re-admitted: the
    // never-crashed nodes agree on the full view sequence ending with
    // everyone back in.
    assert!(report.views_agree);
    let views = &report.view_history;
    assert_eq!(views.first().unwrap().1, vec![0, 1, 2, 3]);
    assert!(
        views.iter().any(|(_, members)| *members == vec![0, 1, 3]),
        "node 2 was removed while down: {views:?}"
    );
    assert_eq!(views.last().unwrap().1, vec![0, 1, 2, 3], "and re-admitted");

    // The recovery record decomposes the rejoin and charges the transfer.
    assert_eq!(report.recoveries.len(), 1);
    let r = report.recoveries[0];
    assert_eq!(r.node, 2);
    assert_eq!((r.crashed_at, r.restarted_at), (crash, restart));
    let detect = r.detect_latency.expect("survivors detected the crash");
    assert!(detect <= report.detection_bound);
    assert!(r.bytes_transferred > 0, "state transfer is not free");
    assert!(r.chunks > 1, "the snapshot shipped in several messages");
    assert!(r.log_entries_replayed > 0, "the log tail was replayed");
    assert_eq!(
        r.announce_latency + r.transfer_latency + r.readmit_latency,
        r.rejoin_latency
    );
    assert!(report.rejoin_within_bound());

    // The event stream orders the full cycle: detection → exclusion view
    // → rejoin completion → re-admission view.
    let events = run.events();
    let detect_at = events
        .iter()
        .find_map(|e| match e {
            ClusterEvent::Detected {
                suspect: 2,
                at,
                latency: Some(_),
                ..
            } => Some(*at),
            _ => None,
        })
        .expect("real detection of node 2");
    let rejoin_at = events
        .iter()
        .find_map(|e| match e {
            ClusterEvent::RejoinCompleted { node: 2, at, .. } => Some(*at),
            _ => None,
        })
        .expect("rejoin completed");
    assert!(detect_at > crash && detect_at < restart);
    assert!(rejoin_at > restart);

    // Middleware cost tasks for the transfer ran on the server (node 0)
    // and the joiner, and the feasibility analysis saw their load.
    for n in &report.node_reports {
        assert!(n.feasibility.integrated_feasible);
        assert!(n.feasibility.middleware_utilization_permille > 0);
    }
    // Live spans kept meeting deadlines everywhere.
    assert!(report.all_app_deadlines_met());
}

#[test]
fn crashed_dispatcher_performs_zero_work_while_down() {
    // Regression for the dispatcher kill switch: between crash and
    // restart the node must execute nothing — its application and
    // middleware instance counts over the down window are zero.
    let report = recovery_spec(7).run().unwrap().into_report();
    let down = recovery_spec(7)
        .scenario(ScenarioPlan::new().crash(NodeId(2), Time::ZERO + ms(20)))
        .run()
        .unwrap()
        .into_report();
    // In the permanent-crash run, node 2 accrues exactly the pre-crash
    // instances; the restart run adds post-restart instances on top. Both
    // agree there is no instance in the down window [20 ms, 45 ms).
    let n2 = &report.node_reports[2];
    let n2_perm = &down.node_reports[2];
    assert!(n2.app_instances > n2_perm.app_instances, "work resumed");
    // ~10 control periods (2 ms) + ~2 logging periods (10 ms) died with
    // the down window; the live-span counts must reflect the gap: a full
    // 100 ms of 2 ms control is 51 instances, the 25 ms gap removes ~12.
    assert!(
        n2.app_instances <= report.node_reports[1].app_instances - 10,
        "down window produced no work: {} vs {}",
        n2.app_instances,
        report.node_reports[1].app_instances
    );
    assert_eq!(n2.app_misses, 0, "no artifact misses from the crash");
}

#[test]
fn rejoin_latency_bound_matches_components() {
    let spec = recovery_spec(1);
    let link = LinkConfig::reliable(us(10), us(50));
    let mw = MiddlewareConfig::default();
    let gamma = mw.clock_precision(&link);
    let detection = mw.heartbeat_period + (mw.heartbeat_period + us(50) + gamma);
    assert!(
        spec.rejoin_bound() > detection,
        "the rejoin bound strictly contains the detection bound"
    );
    assert!(
        spec.rejoin_bound() >= detection + mw.recovery.transfer_bound(us(50)),
        "and the transfer bound"
    );
}

#[test]
fn spec_validation_collects_every_issue_with_service_diagnostics() {
    // One spec, many problems: validation must report them all at once,
    // each naming its service — not fail at the first.
    let err = ClusterSpec::new(3)
        .horizon(ms(10))
        .service(ServiceSpec::periodic("off-grid", 9, us(100), ms(1)))
        .service(ServiceSpec::replicated(
            "empty",
            ReplicaStyle::Active,
            vec![],
            GroupLoad::default(),
        ))
        .service(ServiceSpec::replicated(
            "dupes",
            ReplicaStyle::Active,
            vec![0, 1, 1],
            GroupLoad::default(),
        ))
        .service(ServiceSpec::replicated(
            "strangers",
            ReplicaStyle::Active,
            vec![0, 7],
            GroupLoad::default(),
        ))
        .run()
        .unwrap_err();
    assert!(err.issues.len() >= 4, "all issues reported: {err}");
    let has = |pred: &dyn Fn(&SpecIssue) -> bool| err.issues.iter().any(pred);
    assert!(has(&|i| matches!(
        i,
        SpecIssue::NodeOutOfRange {
            node: 9,
            nodes: 3,
            ..
        }
    )));
    assert!(has(&|i| match i {
        SpecIssue::EmptyMembers { service } => service.name == "empty",
        _ => false,
    }));
    assert!(has(&|i| match i {
        SpecIssue::DuplicateMember { service, node: 1 } => service.name == "dupes",
        _ => false,
    }));
    assert!(has(&|i| match i {
        SpecIssue::MemberOutOfRange {
            service, node: 7, ..
        } => service.name == "strangers",
        _ => false,
    }));
    // The rendered error names each offending service.
    let text = err.to_string();
    for name in ["off-grid", "empty", "dupes", "strangers"] {
        assert!(text.contains(name), "missing {name} in: {text}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Detection latency never exceeds the `DetectorConfig` bound, for any
    /// victim, crash time, seed and cluster size.
    #[test]
    fn detection_latency_never_exceeds_bound(
        seed in 0u64..10_000,
        victim in 0u32..8,
        crash_ms in 1u64..25,
        nodes in 3u32..8,
    ) {
        let victim = victim % nodes;
        let crash = Time::ZERO + ms(crash_ms);
        let mut spec = ClusterSpec::new(nodes)
            .horizon(ms(40))
            .seed(seed)
            .scenario(ScenarioPlan::new().crash(NodeId(victim), crash));
        for node in 0..nodes {
            spec = spec.service(ServiceSpec::periodic("app", node, us(100), ms(2)));
        }
        let bound = spec.detection_bound();
        let report = spec.run().unwrap().into_report();
        prop_assert!(report.no_false_suspicions());
        prop_assert_eq!(report.detections.len() as u32, nodes - 1);
        for d in &report.detections {
            prop_assert_eq!(d.suspect, victim);
            let latency = d.latency.expect("victim really crashed");
            prop_assert!(
                latency <= bound,
                "observer {} latency {} > bound {}",
                d.observer,
                latency,
                bound
            );
        }
        prop_assert!(report.views_agree);
    }

    /// Rejoin latency never exceeds detection bound + transfer bound +
    /// one agreement window, for any victim, crash window, seed and
    /// cluster size — and the recovery record always shows re-admission
    /// into the agreed view with nonzero transferred state.
    #[test]
    fn rejoin_latency_never_exceeds_bound(
        seed in 0u64..10_000,
        victim in 0u32..8,
        crash_ms in 5u64..15,
        down_ms in 8u64..20,
        nodes in 3u32..8,
    ) {
        let victim = victim % nodes;
        let crash = Time::ZERO + ms(crash_ms);
        let restart = crash + ms(down_ms);
        let mut spec = ClusterSpec::new(nodes)
            .horizon(ms(70))
            .seed(seed)
            .scenario(
                ScenarioPlan::new()
                    .crash(NodeId(victim), crash)
                    .restart(NodeId(victim), restart),
            );
        for node in 0..nodes {
            spec = spec.service(ServiceSpec::periodic("app", node, us(100), ms(2)));
        }
        let bound = spec.rejoin_bound();
        let report = spec.run().unwrap().into_report();
        prop_assert_eq!(report.recoveries.len(), 1);
        let r = report.recoveries[0];
        prop_assert_eq!(r.node, victim);
        prop_assert!(
            r.rejoin_latency <= bound,
            "rejoin {} > bound {}",
            r.rejoin_latency,
            bound
        );
        prop_assert!(r.bytes_transferred > 0);
        prop_assert!(report.views_agree);
        let expected: Vec<u32> = (0..nodes).collect();
        prop_assert_eq!(&report.view_history.last().unwrap().1, &expected);
    }
}
