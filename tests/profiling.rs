//! Profiler end-to-end: a profiled run is byte-identical to an
//! unprofiled one (pure observation), the deterministic profile
//! artifacts (JSONL, folded stacks) are byte-stable under a fixed seed,
//! the per-kind network send counters quantify the heartbeat traffic,
//! and wall-clock attribution never leaks into the deterministic
//! report.

use proptest::prelude::*;

use hades::prelude::*;
use hades_services::ReplicaStyle;
use hades_sim::NodeId;
use hades_telemetry::{ProfileReport, Profiler, Registry};

fn us(n: u64) -> Duration {
    Duration::from_micros(n)
}

fn ms(n: u64) -> Duration {
    Duration::from_millis(n)
}

/// The telemetry suite's failover + rejoin scenario: a replicated
/// closed-loop service plus per-node periodic control services, with a
/// mid-run crash and restart so deliveries, sends and faults all land.
fn profiling_scenario(nodes: u32, seed: u64) -> ClusterSpec {
    let mut spec = ClusterSpec::new(nodes)
        .seed(seed)
        .horizon(ms(60))
        .scenario(
            ScenarioPlan::new()
                .crash(NodeId(0), Time::ZERO + ms(15))
                .restart(NodeId(0), Time::ZERO + ms(35)),
        )
        .service(
            ServiceSpec::replicated(
                "store",
                ReplicaStyle::SemiActive,
                vec![0, 1, 2],
                GroupLoad::default(),
            )
            .workload(Box::new(
                ClosedLoop::new(us(500), ms(1), Time::ZERO + ms(2)).with_timeout(ms(4)),
            )),
        );
    for node in 0..nodes {
        spec = spec.service(ServiceSpec::periodic("control", node, us(200), ms(2)));
    }
    spec
}

fn profiled_run(nodes: u32, seed: u64) -> (ClusterRun, Profiler) {
    let profiler = Profiler::enabled();
    let run = profiling_scenario(nodes, seed)
        .telemetry(Registry::enabled())
        .profile(profiler.clone())
        .run()
        .expect("valid spec");
    (run, profiler)
}

#[test]
fn profiled_run_attributes_work_and_traffic() {
    let (run, _) = profiled_run(4, 11);
    let profile = run.profile().expect("profiler attached");
    assert!(!profile.is_empty());
    assert_eq!(
        profile.total_events,
        run.telemetry().metrics.counter("engine.events").unwrap()
    );

    // Engine work: the dispatcher kinds and the actor delivery classes
    // all show up, with service-gap distributions where a kind repeats.
    for kind in ["activate", "work_done", "actor.timer", "actor.message"] {
        let kp = profile.kind(kind).unwrap_or_else(|| panic!("kind {kind}"));
        assert!(kp.count > 0, "kind {kind} unseen");
    }
    let timers = profile.kind("actor.timer").unwrap();
    assert!(timers.gap.as_ref().is_some_and(|g| g.count > 0));

    // Per-actor shares: agents on every node, the replica group on its
    // members, and events attributed sum to the actor-delivery total.
    let mut agent_nodes: Vec<u32> = profile
        .actors
        .iter()
        .filter(|a| a.label == "agent")
        .map(|a| a.node)
        .collect();
    agent_nodes.sort_unstable();
    agent_nodes.dedup();
    assert_eq!(agent_nodes, vec![0, 1, 2, 3]);
    let delivered: u64 = profile
        .kinds
        .iter()
        .filter(|k| k.name.starts_with("actor."))
        .map(|k| k.count)
        .sum();
    let attributed: u64 = profile.actors.iter().map(|a| a.events).sum();
    // Deliveries to a crashed node are dropped before reaching the
    // actor, so attribution can fall slightly short of the engine's
    // actor-event counts — but never exceed them.
    assert!(attributed <= delivered, "{attributed} > {delivered}");
    assert!(
        attributed * 10 >= delivered * 9,
        "{attributed} vs {delivered}"
    );

    // Timeline: buckets cover the run and carry a queue high-water.
    assert!(!profile.timeline.is_empty());
    assert!(profile.timeline.iter().any(|b| b.queue_depth_max > 0));
    assert!(profile
        .timeline
        .windows(2)
        .all(|w| w[0].start_ns < w[1].start_ns));

    // Traffic matrix: heartbeats dominate and the share is one number.
    assert!(profile.traffic.iter().any(|t| t.kind == "agent.hb"));
    assert!(profile.heartbeat_msgs > 0);
    let share = profile.heartbeat_msg_share_permille();
    assert!(share > 0 && share <= 1000, "share {share}");
    assert!(profile.heartbeat_event_share_permille() <= 1000);

    // Exports: schema-checked JSONL and non-empty folded stacks.
    let doc = profile.to_jsonl();
    ProfileReport::validate_jsonl(&doc).expect("schema-valid profile JSONL");
    let folded = profile.to_folded();
    assert!(folded.lines().any(|l| l.starts_with("hades;engine;actor.")));
}

#[test]
fn net_counters_quantify_heartbeat_traffic_without_profiler() {
    let registry = Registry::enabled();
    let run = profiling_scenario(4, 11)
        .telemetry(registry.clone())
        .run()
        .expect("valid spec");
    assert!(run.profile().is_none());
    let metrics = &run.telemetry().metrics;
    let hb = metrics
        .counter("net.msgs.agent.hb")
        .expect("hb send counter");
    let total = metrics
        .counter("net.msgs.total")
        .expect("total send counter");
    assert!(hb > 0 && hb <= total);
    assert!(metrics.counter("net.bytes.total").unwrap() >= total * 32);
    // The counters agree with the agents' own heartbeat accounting.
    assert_eq!(hb, metrics.counter("agents.heartbeats_sent").unwrap());
}

#[test]
fn wall_clock_attribution_travels_only_through_volatiles() {
    let registry = Registry::enabled();
    let profiler = Profiler::enabled();
    let run = profiling_scenario(4, 11)
        .telemetry(registry.clone())
        .profile(profiler.clone())
        .run()
        .expect("valid spec");
    let volatiles = registry.volatiles();
    assert!(
        volatiles
            .iter()
            .any(|(name, ns)| name.starts_with("profile.wall_ns.") && *ns > 0),
        "no per-kind wall time recorded"
    );
    // ... but never into the deterministic snapshot or the report.
    assert!(run
        .telemetry()
        .metrics
        .counters
        .iter()
        .all(|(name, _)| !name.starts_with("profile.")));
    assert!(!run.profile().unwrap().to_jsonl().contains("wall"));
}

#[test]
fn profile_jsonl_and_folded_are_byte_stable() {
    let (a, _) = profiled_run(5, 23);
    let (b, _) = profiled_run(5, 23);
    assert_eq!(a.profile(), b.profile());
    assert_eq!(
        a.profile().unwrap().to_jsonl(),
        b.profile().unwrap().to_jsonl()
    );
    assert_eq!(
        a.profile().unwrap().to_folded(),
        b.profile().unwrap().to_folded()
    );
}

#[test]
fn profiler_adds_no_engine_events() {
    let bare = profiling_scenario(4, 7)
        .telemetry(Registry::enabled())
        .run()
        .expect("valid spec");
    let (profiled, _) = profiled_run(4, 7);
    assert_eq!(
        bare.telemetry().metrics.counter("engine.events"),
        profiled.telemetry().metrics.counter("engine.events"),
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Profiling is pure observation: report and event stream of a
    /// profiled run are byte-identical to an unprofiled same-seed run.
    #[test]
    fn profiled_run_is_byte_identical_to_unprofiled(nodes in 3u32..6, seed in 0u64..1_000) {
        let bare = profiling_scenario(nodes, seed).run().expect("valid spec");
        let (profiled, _) = profiled_run(nodes, seed);
        prop_assert_eq!(bare.report(), profiled.report());
        prop_assert_eq!(bare.events(), profiled.events());
    }

    /// The profile artifact itself is a deterministic function of spec
    /// and seed.
    #[test]
    fn profile_report_is_deterministic(nodes in 3u32..6, seed in 0u64..1_000) {
        let (a, _) = profiled_run(nodes, seed);
        let (b, _) = profiled_run(nodes, seed);
        prop_assert_eq!(a.profile(), b.profile());
    }
}
