//! Recovery-path composition: membership, checkpointing and dependency
//! tracking working together — the fault-tolerance chain a passive-
//! replicated HADES application exercises after a crash.

use hades::prelude::*;
use hades_services::checkpoint::{CheckpointService, Replayable};
use hades_services::membership::MembershipSim;
use hades_services::{DependencyTracker, DetectorConfig};

fn us(n: u64) -> Duration {
    Duration::from_micros(n)
}

fn ms(n: u64) -> Duration {
    Duration::from_millis(n)
}

#[derive(Default)]
struct Register(u64);

impl Replayable for Register {
    fn apply(&mut self, op: u64) {
        self.0 = self.0.wrapping_mul(1_000_003).wrapping_add(op);
    }
    fn snapshot(&self) -> Vec<u8> {
        self.0.to_le_bytes().to_vec()
    }
    fn restore(&mut self, b: &[u8]) {
        self.0 = u64::from_le_bytes(b.try_into().expect("8 bytes"));
    }
}

#[test]
fn membership_checkpoint_and_orphan_chain() {
    // 1. A primary (node 0) processes requests with periodic checkpoints.
    let mut primary = CheckpointService::new(Register::default(), 5);
    for op in 1..=23u64 {
        primary.execute(op);
    }
    let reference = primary.state().0;

    // 2. Node 0 crashes at 12 ms; membership agrees on its exclusion.
    let link = LinkConfig::reliable(us(10), us(40));
    let plan = FaultPlan::new().crash_at(NodeId(0), Time::ZERO + ms(12));
    let net = Network::homogeneous(4, link, SimRng::seed_from(5)).with_fault_plan(plan);
    let membership = MembershipSim::new(DetectorConfig {
        heartbeat_period: ms(1),
        clock_precision: us(20),
        horizon: ms(30),
    })
    .execute(net);
    assert_eq!(membership.views.len(), 2);
    assert_eq!(membership.final_members(), &[1, 2, 3]);
    let takeover_at = membership.views[1].installed_at;
    assert!(takeover_at > Time::ZERO + ms(12));
    assert!(takeover_at < Time::ZERO + ms(16), "bounded reconfiguration");

    // 3. The backup restores the last checkpoint and replays the log: the
    //    recovered state matches what the primary had committed.
    primary.crash_and_recover();
    assert_eq!(primary.state().0, reference, "no committed operation lost");
    assert!(primary.replayed() < 5, "replay bounded by the interval");

    // 4. Work that consumed the crashed primary's *uncheckpointed* output
    //    is orphaned through dependency tracking.
    let mut deps = DependencyTracker::new();
    deps.add_dependency((0, 23), (7, 0)); // downstream consumer of op 23
    deps.add_dependency((7, 0), (8, 0));
    let orphans = deps.invalidate((0, 23));
    assert_eq!(orphans, vec![(7, 0), (8, 0)]);
}

#[test]
fn degraded_mode_after_view_change_is_schedulable() {
    // After losing a node, the remaining capacity runs the degraded mode;
    // the transition analysis must clear it before installation.
    let costs = CostModel::measured_default();
    let kernel = KernelModel::chorus_like();
    let normal = vec![SpuriTask::independent(
        TaskId(0),
        "full_service",
        us(6_000),
        ms(20),
        ms(20),
    )];
    let degraded = vec![
        SpuriTask::independent(TaskId(10), "core_service", us(2_000), ms(10), ms(10)),
        SpuriTask::independent(TaskId(11), "sync_backlog", us(1_000), ms(20), ms(20)),
    ];
    let verdict = ModeChange::new(normal, degraded.clone())
        .analyze(&EdfAnalysisConfig::with_platform(costs, kernel.clone()));
    assert!(verdict.transition_possible());
    // Execute the degraded mode with the analysed release offset honoured
    // implicitly (activations begin at t = 0 of the new mode).
    let blocking = hades_sched::analysis::edf_demand::spuri_blocking(&degraded);
    let tasks: Vec<Task> = degraded
        .iter()
        .zip(&blocking)
        .map(|(t, b)| t.to_task(*b).expect("valid"))
        .collect();
    let report = HadesNode::new()
        .tasks(tasks)
        .policy(Policy::Edf)
        .costs(costs)
        .kernel(kernel)
        .horizon(ms(80))
        .configure(|c| c.trace = false)
        .run()
        .expect("valid deployment");
    assert!(report.all_deadlines_met());
}
