//! Integration tests of the sharded service fabric (`hades-fabric`):
//! population-scale load over consistent-hash shards, bounded
//! rebalancing on node loss, and whole-report determinism.

use proptest::prelude::*;

use hades::prelude::*;

fn ms(n: u64) -> Duration {
    Duration::from_millis(n)
}

/// A 10⁶-client population in three load classes — clients are pure
/// rate multipliers, so the engine only ever sees the aggregate
/// streams.
fn million_clients(spec: FabricSpec) -> FabricSpec {
    spec.class(LoadClass::new("browse", 700_000, Duration::from_secs(15)))
        .class(
            LoadClass::new("checkout", 200_000, Duration::from_secs(8)).arrival(Arrival::Bursty {
                on: ms(4),
                off: ms(6),
            }),
        )
        .class(
            LoadClass::new("api", 100_000, Duration::from_secs(2))
                .arrival(Arrival::Ramp { from_permille: 300 }),
        )
}

/// The acceptance-scale fabric: 24 nodes (8 placements of 3), 64
/// shards, one million simulated clients over a 30 ms horizon.
fn fabric_1m(seed: u64) -> FabricSpec {
    million_clients(FabricSpec::new(24, 64))
        .horizon(ms(30))
        .seed(seed)
        .telemetry(Registry::enabled())
}

#[test]
fn million_client_fabric_sustains_the_population_without_faults() {
    let run = fabric_1m(11).run().expect("fabric runs");
    let report = &run.report;
    assert_eq!(report.clients, 1_000_000);
    assert_eq!(report.shards, 64);
    assert_eq!(report.per_shard.len(), 64);
    assert!(
        report.moves.is_empty(),
        "no faults, no moves: {:?}",
        report.moves
    );
    assert_eq!(report.totals.moved, 0);
    assert_eq!(report.totals.dropped, 0);
    assert!(
        report.totals.routed > 2_000,
        "a 1M-client population must materialize thousands of requests, got {}",
        report.totals.routed
    );
    assert_eq!(
        report.totals.routed,
        report.per_shard.iter().map(|s| s.routed).sum::<u64>(),
        "totals are the per-shard sum"
    );

    // Latency grading: percentiles exist per shard and in aggregate,
    // and a crash-free feasible fabric meets the Δ + δmax bound.
    assert!(!report.output_bound.is_zero());
    let agg = report.totals.latency.expect("aggregate latency");
    assert!(agg.p50 <= agg.p99 && agg.p99 <= agg.p999);
    assert!(
        agg.p999 <= report.output_bound.as_nanos(),
        "p999 {}ns beyond the Δ + δmax bound {}ns",
        agg.p999,
        report.output_bound.as_nanos()
    );
    assert_eq!(
        report.totals.delayed, 0,
        "crash-free outputs stay within the bound"
    );
    for shard in &report.per_shard {
        let lat = shard.latency.expect("every shard saw traffic");
        assert!(
            lat.p99 <= agg.p999.max(lat.p99),
            "per-shard summary is well-formed"
        );
        assert!(shard.home < 8);
    }

    // The fabric.* metric family mirrors the report.
    assert_eq!(run.metrics.gauge("fabric.clients"), Some(1_000_000));
    assert_eq!(run.metrics.gauge("fabric.shards"), Some(64));
    assert_eq!(
        run.metrics.counter("fabric.requests_routed"),
        Some(report.totals.routed)
    );
    assert_eq!(run.metrics.counter("fabric.shards_moved"), Some(0));
    let hist = run
        .metrics
        .histogram("fabric.response_ns")
        .expect("latency histogram");
    assert_eq!(hist.count, report.totals.on_time + report.totals.delayed);
}

#[test]
fn a_node_crash_moves_exactly_the_crashed_placements_shards() {
    // Node 4 is a follower in placement 1 (nodes 3,4,5): its crash must
    // move every shard homed on placement 1 and nothing else.
    let spec = fabric_1m(17).scenario(ScenarioPlan::new().crash(NodeId(4), Time::ZERO + ms(10)));
    let router = spec.router();
    let crashed_placement = 1u32;
    let expected: std::collections::BTreeSet<u32> = (0..64)
        .filter(|s| router.home(*s) == crashed_placement)
        .collect();
    assert!(
        !expected.is_empty(),
        "seeded ring homes no shard on placement 1?"
    );

    let run = spec.run().expect("fabric runs");
    let report = &run.report;

    let moved: std::collections::BTreeSet<u32> = report.moves.iter().map(|m| m.shard).collect();
    assert_eq!(
        moved, expected,
        "exactly the crashed placement's shards move"
    );
    assert_eq!(report.moves.len(), expected.len(), "each shard moves once");
    for mv in &report.moves {
        assert_eq!(mv.from, crashed_placement);
        assert_eq!(
            mv.to,
            router.standby(mv.shard),
            "moves land on the ring successor"
        );
        assert_ne!(mv.to, crashed_placement);
        assert!(mv.at >= Time::ZERO + ms(10), "moves follow the crash");
    }

    // Redirected traffic: the standby placements served post-move
    // requests; untouched shards saw no movement and no losses.
    assert!(
        report.totals.moved > 0,
        "standby groups served redirected requests"
    );
    for shard in &report.per_shard {
        if moved.contains(&shard.shard) {
            assert!(shard.routed >= shard.moved);
        } else {
            assert_eq!(shard.moved, 0, "shard {} moved without cause", shard.shard);
            assert_eq!(shard.dropped, 0);
        }
    }

    // No double execution: a follower crash triggers no takeover, so no
    // group may emit a duplicate client output — each request executes
    // on exactly one serving group.
    for group in &run.cluster.report().groups {
        assert_eq!(
            group.duplicate_outputs, 0,
            "group {} re-executed a request across the move",
            group.group
        );
    }

    // The event stream carries the same story.
    let shard_moved_events = run.cluster.events_of_kind("shard-moved").count();
    assert_eq!(shard_moved_events, expected.len());
    assert_eq!(
        run.metrics.counter("fabric.shards_moved"),
        Some(expected.len() as u64)
    );
    assert_eq!(
        run.metrics.counter("fabric.requests_moved"),
        Some(report.totals.moved)
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// A fabric run — schedules, events, report, metrics — is a pure
    /// function of its spec and seed, crash rebalancing included.
    #[test]
    fn fabric_reports_are_deterministic(seed in 0u64..1 << 48) {
        let build = |seed| {
            FabricSpec::new(6, 8)
                .class(LoadClass::new("web", 60_000, Duration::from_secs(5)))
                .horizon(ms(10))
                .seed(seed)
                .telemetry(Registry::enabled())
                .scenario(ScenarioPlan::new().crash(NodeId(1), Time::ZERO + ms(4)))
        };
        let a = build(seed).run().expect("fabric runs");
        let b = build(seed).run().expect("fabric runs");
        prop_assert_eq!(&a.report, &b.report);
        prop_assert_eq!(&a.metrics, &b.metrics);
        prop_assert_eq!(a.cluster.events(), b.cluster.events());
    }
}
