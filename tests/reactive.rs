//! E2E: the reactive control plane. Scenarios that were inexpressible
//! under the open-loop `ScenarioPlan` API:
//!
//! * a fault **cascade driven purely by detection events** — the second
//!   crash is injected by a `ScenarioDriver` reacting to `Detected`,
//!   never pre-scheduled;
//! * **deadline-miss-triggered load shedding** — a driver throttles a
//!   replicated service's live workload when the dispatcher reports
//!   misses;
//! * a **true closed-loop workload** whose submission schedule
//!   measurably shifts with measured responses (and under failover
//!   congestion) versus the analytic-bound baseline;
//! * **standby service admission** — a driver admits a pre-declared
//!   service mid-run;
//! * and the plan/driver equivalence property: an arbitrary offline
//!   `ScenarioPlan` and its canned-driver lowering produce
//!   byte-identical `ClusterRun`s.

use proptest::prelude::*;

use hades::prelude::*;

fn us(n: u64) -> Duration {
    Duration::from_micros(n)
}

fn ms(n: u64) -> Duration {
    Duration::from_millis(n)
}

fn t_ms(n: u64) -> Time {
    Time::ZERO + ms(n)
}

/// Crashes `victim` the moment anyone first suspects `trigger`.
#[derive(Debug)]
struct CascadeDriver {
    trigger: u32,
    victim: u32,
    fired: bool,
}

impl ScenarioDriver for CascadeDriver {
    fn on_event(&mut self, _now: Time, event: &ClusterEvent, ctl: &mut ControlHandle<'_>) {
        if self.fired {
            return;
        }
        if let ClusterEvent::Detected { suspect, .. } = event {
            if *suspect == self.trigger {
                self.fired = true;
                ctl.crash(self.victim);
            }
        }
    }
}

#[test]
fn detection_triggered_fault_cascade_without_prescheduled_second_crash() {
    // Only the FIRST crash is scripted; node 4 goes down purely because
    // the driver reacted to the detection of node 0.
    let crash0 = t_ms(15);
    let mut spec = ClusterSpec::new(5)
        .horizon(ms(60))
        .seed(3)
        .scenario(ScenarioPlan::new().crash(NodeId(0), crash0))
        .driver(Box::new(CascadeDriver {
            trigger: 0,
            victim: 4,
            fired: false,
        }));
    for node in 0..5 {
        spec = spec.service(ServiceSpec::periodic("ctl", node, us(200), ms(2)));
    }
    let run = spec.run().unwrap();
    let report = run.report();

    // The injected crash is a first-class fault: recorded on the node
    // report, detected by the survivors as a REAL detection (bounded
    // latency, not a false suspicion) and excluded from membership.
    let first_detection_of_0 = run
        .events()
        .iter()
        .find_map(|e| match e {
            ClusterEvent::Detected { suspect: 0, at, .. } => Some(*at),
            _ => None,
        })
        .expect("the scripted crash was detected");
    assert_eq!(
        report.node_reports[4].crashed_at,
        Some(first_detection_of_0),
        "node 4 crashed exactly at the triggering detection instant"
    );
    let detections_of_4: Vec<_> = report
        .detections
        .iter()
        .filter(|d| d.suspect == 4)
        .collect();
    assert!(
        !detections_of_4.is_empty(),
        "the cascaded crash was detected too"
    );
    for d in &detections_of_4 {
        let latency = d.latency.expect("a real detection, not a false suspicion");
        assert!(latency <= report.detection_bound);
        assert!(d.suspected_at > first_detection_of_0);
    }
    assert!(report.views_agree);
    assert_eq!(
        report.view_history.last().unwrap().1,
        vec![1, 2, 3],
        "membership excluded both the scripted and the injected crash"
    );
    // Survivors kept their deadlines through the cascade.
    for n in &report.node_reports {
        if n.crashed_at.is_none() {
            assert_eq!(n.app_misses, 0);
        }
    }
}

/// Crashes a node that already has a *scripted* crash window later in
/// the run — the applied plan and the runtime fault plan must agree on
/// the resulting window.
#[derive(Debug, Default)]
struct EarlyCrash {
    fired: bool,
}

impl ScenarioDriver for EarlyCrash {
    fn on_event(&mut self, _now: Time, _event: &ClusterEvent, _ctl: &mut ControlHandle<'_>) {}

    fn on_tick(&mut self, _now: Time, ctl: &mut ControlHandle<'_>) {
        if !std::mem::replace(&mut self.fired, true) {
            ctl.crash(2); // node 2 is ALSO scripted to crash at 20 ms
        }
    }
}

#[test]
fn reactive_crash_merging_into_a_scripted_window_stays_consistent() {
    // Scripted: node 2 down [20 ms, 35 ms). The driver additionally
    // injects a PERMANENT crash of node 2 at its first tick (~1 ms).
    // The scripted restart closes the merged window — node 2 must be
    // down exactly [tick, 35 ms), really rejoin at 35 ms, and the
    // report must say so (no phantom window edges either way).
    let mut spec = ClusterSpec::new(4)
        .horizon(ms(70))
        .seed(4)
        .scenario(
            ScenarioPlan::new()
                .crash(NodeId(2), t_ms(20))
                .restart(NodeId(2), t_ms(35)),
        )
        .driver(Box::new(EarlyCrash::default()));
    for node in 0..4 {
        spec = spec.service(ServiceSpec::periodic("ctl", node, us(200), ms(2)));
    }
    let run = spec.run().unwrap();
    let report = run.report();
    let n2 = &report.node_reports[2];
    assert!(
        n2.crashed_at.unwrap() < t_ms(2),
        "the reactive crash started the window: {:?}",
        n2.crashed_at
    );
    assert_eq!(n2.restarted_at, Some(t_ms(35)), "the scripted restart held");
    // The node really came back: one completed rejoin, re-admitted view.
    assert_eq!(report.recoveries.len(), 1);
    assert_eq!(report.recoveries[0].crashed_at, n2.crashed_at.unwrap());
    assert_eq!(report.recoveries[0].restarted_at, t_ms(35));
    assert_eq!(report.view_history.last().unwrap().1, vec![0, 1, 2, 3]);
    assert!(report.views_agree);
    // Every suspicion of node 2 inside the merged window is a REAL
    // detection against the applied (merged) window start.
    assert!(report.no_false_suspicions());
    // Exactly one rejoin cycle: no duplicate restart events reached the
    // agent from the merged injection.
    assert_eq!(report.node_reports[2].app_misses, 0);
}

#[test]
fn cascade_runs_are_deterministic() {
    let build = || {
        let mut spec = ClusterSpec::new(5)
            .horizon(ms(50))
            .seed(9)
            .scenario(ScenarioPlan::new().crash(NodeId(0), t_ms(12)))
            .driver(Box::new(CascadeDriver {
                trigger: 0,
                victim: 2,
                fired: false,
            }));
        for node in 0..5 {
            spec = spec.service(ServiceSpec::periodic("ctl", node, us(200), ms(2)));
        }
        spec.run().unwrap()
    };
    assert_eq!(build(), build(), "reactive injection stays deterministic");
}

/// Sheds the named workload to `permille` on the first application
/// deadline miss.
#[derive(Debug)]
struct ShedDriver {
    service: &'static str,
    permille: u32,
    fired: bool,
}

impl ScenarioDriver for ShedDriver {
    fn on_event(&mut self, _now: Time, event: &ClusterEvent, ctl: &mut ControlHandle<'_>) {
        if self.fired {
            return;
        }
        if let ClusterEvent::DeadlineMiss {
            middleware: false, ..
        } = event
        {
            self.fired = true;
            assert!(ctl.throttle_workload(self.service, self.permille));
        }
    }
}

/// An overloaded node 0 (non-harmonic pair beyond the RM bound) next to
/// a replicated store on nodes 1-2.
fn shedding_spec(seed: u64) -> ClusterSpec {
    ClusterSpec::new(3)
        .horizon(ms(60))
        .seed(seed)
        .service(ServiceSpec::replicated(
            "store",
            ReplicaStyle::Active,
            vec![1, 2],
            GroupLoad::default(),
        ))
        .service(ServiceSpec::periodic("heavy-a", 0, ms(1), ms(2)))
        .service(ServiceSpec::periodic("heavy-b", 0, us(1_100), ms(3)))
}

#[test]
fn deadline_miss_triggered_load_shedding_thins_the_request_stream() {
    let baseline = shedding_spec(5).run().unwrap();
    let shed = shedding_spec(5)
        .driver(Box::new(ShedDriver {
            service: "store",
            permille: 200,
            fired: false,
        }))
        .run()
        .unwrap();

    // The overload produced misses in both runs, and the driver reacted
    // in the second: the retune event sits in the stream right after the
    // first miss.
    let first_miss = shed
        .events()
        .iter()
        .find_map(|e| match e {
            ClusterEvent::DeadlineMiss {
                middleware: false,
                at,
                ..
            } => Some(*at),
            _ => None,
        })
        .expect("the overloaded node missed deadlines");
    let retune = shed
        .events()
        .iter()
        .find_map(|e| match e {
            ClusterEvent::WorkloadRetuned {
                service,
                permille,
                at,
            } => Some((*service, *permille, *at)),
            _ => None,
        })
        .expect("the driver retuned the store workload");
    assert_eq!(retune.1, 200);
    assert_eq!(retune.2, first_miss, "shed at the miss instant");
    assert_eq!(retune.0, 0, "the store is service #0");

    // The shed stream is measurably thinner than the baseline, and the
    // thinning starts only after the miss: both runs submit identically
    // up to it.
    let b = &baseline.report().groups[0];
    let s = &shed.report().groups[0];
    assert!(
        s.submitted < b.submitted,
        "shedding thinned the stream: {} vs baseline {}",
        s.submitted,
        b.submitted
    );
    assert!(s.submitted > 0, "the stream kept flowing at the shed rate");
    assert!(s.order_agreement && s.order_consistent);
}

/// Admits the standby service when the trigger node's crash is detected.
#[derive(Debug)]
struct AdmitDriver {
    trigger: u32,
    service: &'static str,
    fired: bool,
}

impl ScenarioDriver for AdmitDriver {
    fn on_event(&mut self, _now: Time, event: &ClusterEvent, ctl: &mut ControlHandle<'_>) {
        if self.fired {
            return;
        }
        if let ClusterEvent::Detected { suspect, .. } = event {
            if *suspect == self.trigger {
                self.fired = true;
                assert!(ctl.admit_service(self.service));
            }
        }
    }
}

fn standby_spec(seed: u64) -> ClusterSpec {
    ClusterSpec::new(3)
        .horizon(ms(50))
        .seed(seed)
        .scenario(ScenarioPlan::new().crash(NodeId(2), t_ms(10)))
        .service(ServiceSpec::periodic("ctl-a", 0, us(200), ms(2)))
        // Node 1 carries ONLY the standby service, so its app-instance
        // count isolates the admission.
        .service(ServiceSpec::periodic("fallback", 1, us(300), ms(2)).standby())
}

#[test]
fn driver_admits_a_standby_service_on_detection() {
    // Without a driver the standby service never runs...
    let idle = standby_spec(7).run().unwrap();
    assert_eq!(idle.report().node_reports[1].app_instances, 0);

    // ...with the driver it starts exactly at the detection instant.
    let run = standby_spec(7)
        .driver(Box::new(AdmitDriver {
            trigger: 2,
            service: "fallback",
            fired: false,
        }))
        .run()
        .unwrap();
    let admitted_at = run
        .events()
        .iter()
        .find_map(|e| match e {
            ClusterEvent::ServiceAdmitted { service: 1, at } => Some(*at),
            _ => None,
        })
        .expect("the driver admitted the fallback service");
    let detect_at = run
        .events()
        .iter()
        .find_map(|e| match e {
            ClusterEvent::Detected { suspect: 2, at, .. } => Some(*at),
            _ => None,
        })
        .expect("the crash was detected");
    assert_eq!(admitted_at, detect_at);
    let n1 = &run.report().node_reports[1];
    assert!(n1.app_instances > 0, "the fallback ran after admission");
    assert_eq!(n1.app_misses, 0);
    // ~20 activations fit between detection (~12 ms) and the horizon at
    // a 2 ms period; a full-run chain would have seen ~25.
    assert!(n1.app_instances >= 10 && n1.app_instances <= 22);
}

/// Closed-loop spec: a 3-member active store driven by a closed-loop
/// client with a deliberately loose analytic response bound (1 ms), so
/// live measured feedback and the analytic baseline differ visibly.
fn closed_loop_spec(seed: u64, live: bool, crash_gateway: bool) -> ClusterSpec {
    let workload = ClosedLoop::new(ms(1), ms(1), t_ms(1));
    let workload = if live { workload } else { workload.analytic() };
    let mut spec = ClusterSpec::new(3).horizon(ms(60)).seed(seed).service(
        ServiceSpec::replicated(
            "loop-store",
            ReplicaStyle::Active,
            vec![0, 1, 2],
            GroupLoad::default(),
        )
        .workload(Box::new(workload)),
    );
    if crash_gateway {
        // The gateway (lowest member) dies mid-run and rejoins later:
        // the failover window is the injected congestion.
        spec = spec.scenario(
            ScenarioPlan::new()
                .crash(NodeId(0), t_ms(20))
                .restart(NodeId(0), t_ms(35)),
        );
    }
    spec
}

#[test]
fn live_closed_loop_tracks_measured_responses_not_the_analytic_bound() {
    // Healthy runs: measured responses (≈ Δ, tens of µs) beat the 1 ms
    // analytic bound, so the live loop cycles at ~think + Δ while the
    // baseline plods at think + bound — the live stream is measurably
    // denser.
    let live = closed_loop_spec(11, true, false).run().unwrap();
    let analytic = closed_loop_spec(11, false, false).run().unwrap();
    let live_n = live.report().groups[0].submitted;
    let analytic_n = analytic.report().groups[0].submitted;
    assert!(
        live_n > analytic_n + analytic_n / 2,
        "measured feedback must outpace the analytic bound: {live_n} vs {analytic_n}"
    );
    // Every request still behaves: same agreement properties either way.
    assert!(live.report().groups[0].order_agreement);
    assert_eq!(live.report().groups[0].duplicate_outputs, 0);
}

#[test]
fn closed_loop_schedule_shifts_under_failover_congestion() {
    // Injected congestion: the gateway crashes at 20 ms. The open-loop
    // analytic baseline is blind to it — the interim gateway makes up
    // every scheduled request, so its total is unchanged. The live loop
    // genuinely stalls (no responses → no new submissions) and ends
    // measurably shorter than its own healthy run.
    let live_healthy = closed_loop_spec(13, true, false).run().unwrap();
    let live_crashed = closed_loop_spec(13, true, true).run().unwrap();
    let analytic_healthy = closed_loop_spec(13, false, false).run().unwrap();
    let analytic_crashed = closed_loop_spec(13, false, true).run().unwrap();

    let n = |run: &ClusterRun| run.report().groups[0].submitted;
    assert_eq!(
        n(&analytic_healthy),
        n(&analytic_crashed),
        "the analytic baseline is congestion-blind (makeup resubmits everything)"
    );
    assert!(
        n(&live_crashed) < n(&live_healthy),
        "the live loop reacted to the failover stall: {} vs healthy {}",
        n(&live_crashed),
        n(&live_healthy)
    );
    // And the loop recovered after the failover rather than dying with
    // the gateway: it still outpaces the analytic baseline overall.
    assert!(n(&live_crashed) > n(&analytic_crashed));
}

#[test]
fn retire_and_admit_cycle_a_running_service() {
    /// Retires the control task service on its 3rd tick, re-admits it on
    /// the 8th — a driver-side mode change.
    #[derive(Debug, Default)]
    struct Cycle {
        ticks: u32,
    }
    impl ScenarioDriver for Cycle {
        fn on_event(&mut self, _now: Time, _event: &ClusterEvent, _ctl: &mut ControlHandle<'_>) {}
        fn on_tick(&mut self, _now: Time, ctl: &mut ControlHandle<'_>) {
            self.ticks += 1;
            if self.ticks == 3 {
                assert!(ctl.retire_service("cycled"));
            } else if self.ticks == 8 {
                assert!(ctl.admit_service("cycled"));
            }
        }
    }
    let spec = ClusterSpec::new(2)
        .horizon(ms(40))
        .seed(1)
        .driver_tick(ms(1))
        .service(ServiceSpec::periodic("cycled", 0, us(200), ms(2)))
        .service(ServiceSpec::periodic("steady", 1, us(200), ms(2)))
        .driver(Box::new(Cycle::default()));
    let run = spec.run().unwrap();
    let kinds = run.kind_sequence();
    let retired = kinds.iter().position(|k| *k == "service-retired");
    let admitted = kinds.iter().position(|k| *k == "service-admitted");
    assert!(retired.is_some() && admitted.is_some());
    assert!(retired < admitted);
    // The cycled service lost the ~5 ms gap (a couple of activations of
    // a 2 ms period); the steady one kept the full run.
    let r = run.report();
    assert!(
        r.node_reports[0].app_instances + 1 < r.node_reports[1].app_instances,
        "the retire window removed activations: {} vs {}",
        r.node_reports[0].app_instances,
        r.node_reports[1].app_instances
    );
    assert_eq!(r.node_reports[0].app_misses, 0, "clean retire/admit edges");
}

#[test]
fn a_shared_service_name_addresses_every_entry_registered_under_it() {
    /// Retires "ctl" — registered once per node, the repo's usual
    /// idiom — on the 3rd tick. Every entry must stop, not just the
    /// first-registered one.
    #[derive(Debug, Default)]
    struct RetireAll {
        ticks: u32,
    }
    impl ScenarioDriver for RetireAll {
        fn on_event(&mut self, _now: Time, _event: &ClusterEvent, _ctl: &mut ControlHandle<'_>) {}
        fn on_tick(&mut self, _now: Time, ctl: &mut ControlHandle<'_>) {
            self.ticks += 1;
            if self.ticks == 3 {
                assert!(ctl.retire_service("ctl"));
            }
        }
    }
    let run = ClusterSpec::new(3)
        .horizon(ms(40))
        .seed(2)
        .driver_tick(ms(1))
        .service(ServiceSpec::periodic("ctl", 0, us(200), ms(2)))
        .service(ServiceSpec::periodic("ctl", 1, us(200), ms(2)))
        .service(ServiceSpec::periodic("steady", 2, us(200), ms(2)))
        .driver(Box::new(RetireAll::default()))
        .run()
        .unwrap();
    let r = run.report();
    // One retirement event per addressed entry.
    assert_eq!(run.events_of_kind("service-retired").count(), 2);
    // BOTH ctl entries stopped at ~3 ms; the steady service ran on.
    let steady = r.node_reports[2].app_instances;
    for node in [0usize, 1] {
        let n = r.node_reports[node].app_instances;
        assert!(
            n <= 3 && n < steady / 3,
            "node {node}: {n} instances vs steady {steady}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// An arbitrary offline `ScenarioPlan` and its canned-driver
    /// lowering produce byte-identical `ClusterRun`s (report AND event
    /// stream): the offline path really is one driver among others.
    #[test]
    fn scenario_plan_equals_its_canned_driver_lowering(
        seed in 0u64..10_000,
        victim in 0u32..4,
        crash_ms in 2u64..20,
        down_ms in 5u64..15,
        with_restart in 0u8..2,
        with_partition in 0u8..2,
    ) {
        let (with_restart, with_partition) = (with_restart == 1, with_partition == 1);
        let mut plan = ScenarioPlan::new().crash(NodeId(victim), t_ms(crash_ms));
        if with_restart {
            plan = plan.restart(NodeId(victim), t_ms(crash_ms + down_ms));
        }
        if with_partition {
            let a = (victim + 1) % 4;
            let b = (victim + 2) % 4;
            plan = plan.partition(NodeId(a), NodeId(b), t_ms(1), t_ms(3));
        }
        let base = |seed: u64| {
            let mut spec = ClusterSpec::new(4).horizon(ms(50)).seed(seed);
            for node in 0..4 {
                spec = spec.service(ServiceSpec::periodic("app", node, us(100), ms(2)));
            }
            spec
        };
        let via_scenario = base(seed).scenario(plan.clone()).run().unwrap();
        let via_driver = base(seed)
            .driver(Box::new(PlanDriver::new(plan)))
            .run()
            .unwrap();
        prop_assert_eq!(via_scenario.report(), via_driver.report());
        prop_assert_eq!(via_scenario.events(), via_driver.events());
    }
}
