//! Telemetry end-to-end: determinism of the metrics snapshot and span
//! JSONL under a fixed seed, zero perturbation of the simulation by an
//! attached (or absent) registry, and the closed-loop abandonment path
//! surfaced through both the report and the counters.

use proptest::prelude::*;

use hades::prelude::*;
use hades_services::ReplicaStyle;
use hades_sim::NodeId;
use hades_telemetry::Registry;

fn us(n: u64) -> Duration {
    Duration::from_micros(n)
}

fn ms(n: u64) -> Duration {
    Duration::from_millis(n)
}

/// A failover + rejoin scenario with a replicated closed-loop service —
/// every span kind (rejoin, failover, takeover, view, request) on the
/// clock.
fn telemetry_scenario(nodes: u32, seed: u64) -> ClusterSpec {
    let mut spec = ClusterSpec::new(nodes)
        .seed(seed)
        .horizon(ms(60))
        .scenario(
            ScenarioPlan::new()
                .crash(NodeId(0), Time::ZERO + ms(15))
                .restart(NodeId(0), Time::ZERO + ms(35)),
        )
        .service(
            ServiceSpec::replicated(
                "store",
                ReplicaStyle::SemiActive,
                vec![0, 1, 2],
                GroupLoad::default(),
            )
            .workload(Box::new(
                ClosedLoop::new(us(500), ms(1), Time::ZERO + ms(2)).with_timeout(ms(4)),
            )),
        );
    for node in 0..nodes {
        spec = spec.service(ServiceSpec::periodic("control", node, us(200), ms(2)));
    }
    spec
}

#[test]
fn enabled_registry_fills_metrics_and_spans() {
    let registry = Registry::enabled();
    let run = telemetry_scenario(4, 11)
        .telemetry(registry.clone())
        .run()
        .expect("valid spec");
    let telemetry = run.telemetry();
    assert!(!telemetry.is_empty());
    assert!(telemetry.metrics.counter("engine.events").unwrap_or(0) > 0);
    assert!(
        telemetry
            .metrics
            .counter("agents.heartbeats_sent")
            .unwrap_or(0)
            > 0
    );
    assert!(
        telemetry
            .metrics
            .gauge("engine.queue_depth_peak")
            .unwrap_or(0)
            > 0
    );
    assert!(telemetry.metrics.histogram("group.response_ns").is_some());
    // Every protocol span kind is present for this scenario.
    for kind in ["rejoin", "failover", "view", "request"] {
        assert!(
            telemetry.spans.of_kind(kind).next().is_some(),
            "missing {kind} spans"
        );
    }
    // The rejoin span carries the protocol's phase decomposition.
    let rejoin = telemetry.spans.of_kind("rejoin").next().unwrap();
    let phases: Vec<&str> = rejoin.phases.iter().map(|p| p.name.as_str()).collect();
    assert_eq!(phases, ["announce", "transfer+replay", "readmit"]);
    // Wall-clock measurements live in the volatile side channel, never
    // in the deterministic snapshot.
    assert!(registry.volatile("engine.wall_ns").unwrap_or(0) > 0);
    assert!(telemetry.metrics.counter("engine.wall_ns").is_none());
}

#[test]
fn disabled_registry_leaves_telemetry_empty() {
    let run = telemetry_scenario(4, 11).run().expect("valid spec");
    assert!(run.telemetry().is_empty());
}

#[test]
fn telemetry_is_pure_observation() {
    // Identical spec + seed, with and without a registry: the report and
    // the event stream must be identical — instrumentation never
    // perturbs the simulation.
    let bare = telemetry_scenario(4, 23).run().expect("valid spec");
    let instrumented = telemetry_scenario(4, 23)
        .telemetry(Registry::enabled())
        .run()
        .expect("valid spec");
    assert_eq!(bare.report(), instrumented.report());
    assert_eq!(bare.events(), instrumented.events());
}

#[test]
fn abandonment_is_counted_in_report_and_telemetry() {
    // Crash the whole group: every in-flight request is lost, the
    // closed loop times out, re-issues, and recovers after the rejoin.
    let mut plan = ScenarioPlan::new();
    for node in 0..3 {
        plan = plan
            .crash(NodeId(node), Time::ZERO + ms(15))
            .restart(NodeId(node), Time::ZERO + ms(25 + node as u64));
    }
    let mut spec = ClusterSpec::new(4)
        .seed(5)
        .horizon(ms(80))
        .scenario(plan)
        .service(
            ServiceSpec::replicated(
                "store",
                ReplicaStyle::SemiActive,
                vec![0, 1, 2],
                GroupLoad::default(),
            )
            .workload(Box::new(
                ClosedLoop::new(us(500), ms(1), Time::ZERO + ms(2)).with_timeout(ms(4)),
            )),
        );
    for node in 0..4 {
        spec = spec.service(ServiceSpec::periodic("control", node, us(200), ms(2)));
    }
    let run = spec
        .telemetry(Registry::enabled())
        .run()
        .expect("valid spec");
    let group = &run.report().groups[0];
    assert!(group.abandoned >= 1, "blackout must abandon a request");
    assert_eq!(
        run.telemetry().metrics.counter("group.requests_abandoned"),
        Some(group.abandoned)
    );
    // The loop resumed after the blackout: requests were submitted well
    // past the restarts.
    let resumed = run.report().groups[0].submitted > group.abandoned;
    assert!(resumed, "closed loop must re-issue after the blackout");
}

#[test]
fn live_spans_match_minted_oracle() {
    // The exported span log is emitted live from the engine-time taps;
    // the record-minted log (the pre-live implementation) is kept as a
    // parity oracle. Same spec + seed ⇒ byte-identical JSONL.
    let run = telemetry_scenario(4, 11)
        .telemetry(Registry::enabled())
        .run()
        .expect("valid spec");
    let minted = run
        .minted_spans()
        .expect("telemetry enabled mints the oracle");
    assert!(!run.telemetry().spans.is_empty());
    assert_eq!(run.telemetry().spans.to_jsonl(), minted.to_jsonl());
}

#[test]
fn span_cap_drops_oldest_trees_and_counts_them() {
    let uncapped = telemetry_scenario(4, 11)
        .telemetry(Registry::enabled())
        .run()
        .expect("valid spec");
    let total = uncapped.telemetry().spans.spans().len();
    assert!(
        total > 8,
        "scenario must mint enough spans to overflow the cap"
    );
    let capped = telemetry_scenario(4, 11)
        .telemetry(Registry::enabled())
        .span_cap(8)
        .run()
        .expect("valid spec");
    let spans = &capped.telemetry().spans;
    assert!(spans.spans().len() <= 8);
    assert!(spans.spans_dropped() > 0);
    // The drop counter reaches the metrics snapshot, and the cap never
    // perturbs the simulation itself.
    assert!(
        capped
            .telemetry()
            .metrics
            .counter("telemetry.spans_dropped")
            .unwrap_or(0)
            > 0
    );
    assert_eq!(uncapped.report(), capped.report());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The live tracker and the record-based oracle mint byte-identical
    /// span logs across cluster sizes and seeds.
    #[test]
    fn live_spans_match_minted_oracle_under_many_seeds(
        nodes in 3u32..6,
        seed in 0u64..1_000,
    ) {
        let run = telemetry_scenario(nodes, seed)
            .telemetry(Registry::enabled())
            .run()
            .expect("valid spec");
        let minted = run.minted_spans().expect("oracle");
        prop_assert_eq!(
            run.telemetry().spans.to_jsonl(),
            minted.to_jsonl()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Same spec + same seed ⇒ byte-identical metrics snapshot JSONL and
    /// span JSONL, across cluster sizes and seeds.
    #[test]
    fn telemetry_is_deterministic_under_fixed_seed(
        nodes in 3u32..6,
        seed in 0u64..1_000,
    ) {
        let a = telemetry_scenario(nodes, seed)
            .telemetry(Registry::enabled())
            .run()
            .expect("valid spec");
        let b = telemetry_scenario(nodes, seed)
            .telemetry(Registry::enabled())
            .run()
            .expect("valid spec");
        prop_assert_eq!(
            a.telemetry().metrics.to_jsonl(),
            b.telemetry().metrics.to_jsonl()
        );
        prop_assert_eq!(
            a.telemetry().spans.to_jsonl(),
            b.telemetry().spans.to_jsonl()
        );
        prop_assert_eq!(a.telemetry(), b.telemetry());
    }
}
