//! E2E: replication groups over Δ-atomic multicast on the integrated
//! cluster runtime, deployed through the spec API — active and
//! semi-active groups sustaining a client request stream across a
//! scripted leader crash + restart (with the group fold caught up at
//! rejoin), custom workloads driving a group without touching the
//! cluster core, style-aware admission, and the order-agreement property
//! under random omission faults.

use proptest::prelude::*;

use hades::prelude::*;

fn us(n: u64) -> Duration {
    Duration::from_micros(n)
}

fn ms(n: u64) -> Duration {
    Duration::from_millis(n)
}

/// The acceptance scenario: a 5-node deployment with one active group
/// ({0, 1, 2}) and one semi-active group ({0, 3, 4}); node 0 — leader
/// and request gateway of both groups, and the cluster's passive
/// primary — crashes at 20 ms and restarts at 40 ms.
fn group_spec(seed: u64) -> ClusterSpec {
    let mut spec = ClusterSpec::new(5)
        .policy(Policy::Edf)
        .costs(CostModel::measured_default())
        .horizon(ms(100))
        .seed(seed)
        .scenario(
            ScenarioPlan::new()
                .crash(NodeId(0), Time::ZERO + ms(20))
                .restart(NodeId(0), Time::ZERO + ms(40)),
        )
        .service(ServiceSpec::replicated(
            "active-store",
            ReplicaStyle::Active,
            vec![0, 1, 2],
            GroupLoad::default(),
        ))
        .service(ServiceSpec::replicated(
            "semi-active-store",
            ReplicaStyle::SemiActive,
            vec![0, 3, 4],
            GroupLoad::default(),
        ));
    for node in 0..5 {
        spec = spec.service(ServiceSpec::periodic("control", node, us(200), ms(2)));
    }
    spec
}

#[test]
fn groups_sustain_requests_across_leader_crash_and_restart() {
    let run = group_spec(42).run().unwrap();
    let report = run.report();
    assert!(report.views_agree, "membership stayed agreed");
    assert_eq!(report.groups.len(), 2);

    for g in &report.groups {
        // Requests flowed throughout the run (~99 scheduled ticks; the
        // detection + takeover gap may swallow a few).
        assert!(
            g.submitted >= 90,
            "group {} ({}): only {} requests submitted",
            g.group,
            g.style_name,
            g.submitted
        );
        assert!(g.outputs >= 90, "group {} outputs: {}", g.group, g.outputs);

        // Every surviving member delivered the identical request
        // sequence; the restarted leader's sequence is a consistent
        // subsequence (it missed the down window).
        assert!(g.order_agreement, "group {} order agreement", g.group);
        assert!(g.order_consistent, "group {} order consistency", g.group);

        // No duplicate client-visible outputs.
        assert_eq!(
            g.duplicate_outputs, 0,
            "group {} emitted duplicates",
            g.group
        );

        // End-to-end latency respects the Δ-multicast bound.
        assert!(
            g.within_delta_bound(),
            "group {}: {} outputs beyond the Δ-bound (worst {:?}, bound {})",
            g.group,
            g.delayed_outputs,
            g.worst_latency,
            g.output_bound
        );
        assert_eq!(g.on_time_outputs, g.outputs);
        assert!(g.worst_latency.unwrap() <= g.output_bound);

        // The crash of the leader was a recorded handoff (leadership
        // returns to node 0 after its rejoin, so there may be two).
        assert!(
            !g.handoffs.is_empty(),
            "group {} recorded no leader handoff",
            g.group
        );
        assert_eq!((g.handoffs[0].from, g.handoffs[0].to > 0), (0, true));
        assert!(g.handoffs[0].at > Time::ZERO + ms(20));

        // Group state transfer: the restarted member pulled the group
        // fold instead of permanently skipping its blackout window.
        assert_eq!(g.catchups, 1, "group {} catch-up adopted", g.group);

        // Group traffic rode the shared network.
        assert!(g.messages > 0);
        assert_eq!(g.vote_mismatches, 0);
    }

    // Style-specific shape: the active group's voter absorbed the
    // redundant member outputs; the semi-active followers executed with
    // outputs withheld.
    let active = &report.groups[0];
    let semi = &report.groups[1];
    assert_eq!(active.style_name, "active");
    assert_eq!(semi.style_name, "semi-active");
    assert!(
        active.duplicates_suppressed >= active.outputs,
        "the voter absorbed at least one redundant copy per request: {}",
        active.duplicates_suppressed
    );
    assert!(semi.duplicates_suppressed > 0, "followers were suppressed");

    // The cluster's own recovery machinery still did its job.
    assert_eq!(report.recoveries.len(), 1);
    assert!(report.rejoin_within_bound());
    // And the group cost tasks appear in every member's feasibility.
    for n in &report.node_reports {
        assert!(n.feasibility.middleware_utilization_permille > 0);
        assert!(n.feasibility.integrated_feasible);
    }

    // The event stream interleaves both groups' handoffs with the
    // cluster-level recovery cycle, in time order.
    let handoffs: Vec<_> = run.events_of_kind("handoff").collect();
    assert!(handoffs.len() >= 2, "both groups handed leadership away");
    let rejoin_at = run
        .events()
        .iter()
        .find_map(|e| match e {
            ClusterEvent::RejoinCompleted { node: 0, at, .. } => Some(*at),
            _ => None,
        })
        .expect("node 0 rejoined");
    assert!(rejoin_at > Time::ZERO + ms(40));
}

#[test]
fn bursty_workload_drives_a_group_without_core_edits() {
    // Scenario diversity through the Workload trait: a bursty open-loop
    // source shapes the request stream; the cluster core is untouched.
    let bursts = Bursty {
        burst: 5,
        spacing: us(200),
        gap: ms(10),
        start: Time::ZERO + ms(1),
    };
    let expected = bursts.request_times(ms(60)).len() as u64;
    let spec = ClusterSpec::new(4).horizon(ms(60)).seed(11).service(
        ServiceSpec::replicated(
            "bursty-store",
            ReplicaStyle::Active,
            vec![0, 1, 2],
            GroupLoad::default(),
        )
        .workload(Box::new(bursts)),
    );
    let report = spec.run().unwrap().into_report();
    let g = &report.groups[0];
    assert_eq!(g.submitted, expected, "every scheduled burst request ran");
    assert_eq!(g.outputs, expected);
    assert!(g.order_agreement && g.order_consistent);
    assert_eq!(g.duplicate_outputs, 0);
    assert!(g.within_delta_bound(), "bursts still meet the Δ-bound");
}

#[test]
fn trace_replay_workload_reproduces_the_recorded_instants() {
    let trace: Vec<Time> = [2_000u64, 2_400, 9_000, 9_100, 22_000]
        .iter()
        .map(|t| Time::ZERO + us(*t))
        .collect();
    let spec = ClusterSpec::new(3).horizon(ms(40)).seed(3).service(
        ServiceSpec::replicated(
            "replayed",
            ReplicaStyle::SemiActive,
            vec![0, 1, 2],
            GroupLoad::default(),
        )
        .workload(Box::new(TraceReplay::new(trace.clone()))),
    );
    let report = spec.run().unwrap().into_report();
    let g = &report.groups[0];
    assert_eq!(g.submitted, trace.len() as u64);
    assert_eq!(g.outputs, trace.len() as u64);
    assert_eq!(g.on_time_outputs, g.outputs);
}

#[test]
fn style_aware_admission_charges_roles_not_members() {
    // A heavy request stream (600 µs WCET per 1 ms request = 60% load).
    // Full-member charging would push every backup to ~60% middleware
    // utilization; the style-aware analysis charges the passive backups
    // nothing and the semi-active followers only their order handling.
    let load = GroupLoad {
        request_wcet: us(600),
        order_wcet: us(30),
        ..GroupLoad::default()
    };
    let spec = ClusterSpec::new(4)
        .horizon(ms(20))
        .seed(9)
        .service(ServiceSpec::replicated(
            "passive-heavy",
            ReplicaStyle::Passive {
                checkpoint_every: 4,
            },
            vec![0, 1],
            load,
        ))
        .service(ServiceSpec::replicated(
            "semi-heavy",
            ReplicaStyle::SemiActive,
            vec![2, 3],
            load,
        ));
    let report = spec.run().unwrap().into_report();
    let mw = |n: usize| {
        report.node_reports[n]
            .feasibility
            .middleware_utilization_permille
    };
    // Passive: primary (node 0) carries the request load, backup (node
    // 1) only the base middleware tasks.
    assert!(
        mw(0) >= 600,
        "primary charged the full request WCET: {}",
        mw(0)
    );
    assert!(
        mw(1) < 100,
        "backup charged nothing for the group: {}",
        mw(1)
    );
    // Semi-active: leader (node 2) full, follower (node 3) order only.
    assert!(mw(2) >= 600, "leader charged in full: {}", mw(2));
    assert!(
        mw(3) < 100,
        "follower charged order handling only: {}",
        mw(3)
    );
    assert!(mw(3) > mw(1), "but more than the uncharged passive backup");
    for n in &report.node_reports {
        assert!(n.feasibility.integrated_feasible);
    }
}

#[test]
fn group_runs_are_deterministic() {
    let a = group_spec(7).run().unwrap();
    let b = group_spec(7).run().unwrap();
    assert_eq!(a, b);
}

#[test]
fn delta_multicast_view_changes_cut_message_complexity() {
    // Same scenario under both transports: identical agreed views,
    // strictly fewer proposal messages over the Δ-multicast discipline.
    let run = |multicast: bool| {
        let mw = MiddlewareConfig {
            delta_multicast_vc: multicast,
            ..MiddlewareConfig::default()
        };
        group_spec(11).middleware(mw).run().unwrap().into_report()
    };
    let dm = run(true);
    let flood = run(false);
    assert_eq!(dm.view_change.transport, "delta-multicast");
    assert_eq!(flood.view_change.transport, "flood");
    assert_eq!(dm.view_history, flood.view_history, "same agreed views");
    assert!(dm.views_agree && flood.views_agree);
    assert!(
        dm.view_change.messages < flood.view_change.messages,
        "multicast {} >= flood {}",
        dm.view_change.messages,
        flood.view_change.messages
    );
    assert!(dm.view_change.multicast_equivalent < dm.view_change.flood_equivalent);
}

#[test]
fn lossy_delta_multicast_vc_agrees_with_an_attempt_budget() {
    // The cheap Δ-multicast view-change transport with a per-copy
    // retransmission budget (the ReplicaGroup retry pattern applied to
    // the transport) survives 8% omission loss: same agreed views on
    // every survivor, no fallback to the flood needed.
    let mw = MiddlewareConfig {
        delta_multicast_vc: true,
        vc_attempts: 4,
        clock_precision_floor: us(4_500),
        ..MiddlewareConfig::default()
    };
    for seed in [1u64, 2, 3] {
        let mut spec = ClusterSpec::new(5)
            .horizon(ms(60))
            .seed(seed)
            .link(LinkConfig::reliable(us(10), us(50)).with_omissions(80))
            .middleware(mw)
            .scenario(ScenarioPlan::new().crash(NodeId(2), Time::ZERO + ms(15)));
        for node in 0..5 {
            spec = spec.service(ServiceSpec::periodic("app", node, us(100), ms(2)));
        }
        let report = spec.run().unwrap().into_report();
        assert!(
            report.views_agree,
            "seed {seed}: survivors agree under loss"
        );
        assert_eq!(
            report.view_history.last().unwrap().1,
            vec![0, 1, 3, 4],
            "seed {seed}: the exclusion view installed"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// All group members deliver the same request order under random
    /// per-link omission faults and one crash window: never-crashed
    /// members are identical, and every member (the restarted one
    /// included) is a consistent subsequence of the agreed order.
    #[test]
    fn group_order_agreement_under_omissions_and_one_crash(
        seed in 0u64..10_000,
        victim in 0u32..8,
        crash_ms in 10u64..20,
        down_ms in 8u64..15,
        omission_permille in 0u32..80,
        nodes in 3u32..6,
    ) {
        let victim = victim % nodes;
        let crash = Time::ZERO + ms(crash_ms);
        let restart = crash + ms(down_ms);
        // A loss-tolerant detector timeout (γ floor ≈ 4.5 ms rides out
        // several consecutive heartbeat losses) and the flood transport
        // keep the membership layer stable under omissions; the group's
        // 8-attempt multicast budget masks per-copy loss.
        let mw = MiddlewareConfig {
            clock_precision_floor: us(4_500),
            delta_multicast_vc: false,
            ..MiddlewareConfig::default()
        };
        let load = GroupLoad {
            attempts: 8,
            ..GroupLoad::default()
        };
        let mut spec = ClusterSpec::new(nodes)
            .horizon(ms(80))
            .seed(seed)
            .link(
                LinkConfig::reliable(us(10), us(50)).with_omissions(omission_permille),
            )
            .middleware(mw)
            .scenario(
                ScenarioPlan::new()
                    .crash(NodeId(victim), crash)
                    .restart(NodeId(victim), restart),
            )
            .service(ServiceSpec::replicated(
                "store",
                ReplicaStyle::Active,
                (0..nodes).collect(),
                load,
            ));
        for node in 0..nodes {
            spec = spec.service(ServiceSpec::periodic("app", node, us(100), ms(2)));
        }
        let report = spec.run().unwrap().into_report();
        let g = &report.groups[0];
        prop_assert!(g.submitted > 0);
        prop_assert!(
            g.order_agreement,
            "members diverged (seed {seed}, victim {victim}, loss {omission_permille}‰)"
        );
        prop_assert!(g.order_consistent, "restarted member inconsistent");
        prop_assert_eq!(g.duplicate_outputs, 0);
        prop_assert_eq!(g.vote_mismatches, 0);
    }
}
