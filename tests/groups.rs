//! E2E: replication groups over Δ-atomic multicast on the integrated
//! cluster runtime — active and semi-active groups sustaining a client
//! request stream across a scripted leader crash + restart, and the
//! order-agreement property under random omission faults.

use proptest::prelude::*;

use hades::prelude::*;

fn us(n: u64) -> Duration {
    Duration::from_micros(n)
}

fn ms(n: u64) -> Duration {
    Duration::from_millis(n)
}

/// The acceptance scenario: a 5-node cluster with one active group
/// ({0, 1, 2}) and one semi-active group ({0, 3, 4}); node 0 — leader
/// and request gateway of both groups, and the cluster's passive
/// primary — crashes at 20 ms and restarts at 40 ms.
fn group_cluster(seed: u64) -> HadesCluster {
    let mut cluster = HadesCluster::new(5)
        .policy(Policy::Edf)
        .costs(CostModel::measured_default())
        .horizon(ms(100))
        .seed(seed)
        .scenario(
            ScenarioPlan::new()
                .crash(NodeId(0), Time::ZERO + ms(20))
                .restart(NodeId(0), Time::ZERO + ms(40)),
        )
        .with_group(ReplicaStyle::Active, vec![0, 1, 2], GroupLoad::default())
        .with_group(
            ReplicaStyle::SemiActive,
            vec![0, 3, 4],
            GroupLoad::default(),
        );
    for node in 0..5 {
        cluster = cluster.periodic_app(node, "control", us(200), ms(2));
    }
    cluster
}

#[test]
fn groups_sustain_requests_across_leader_crash_and_restart() {
    let report = group_cluster(42).run().unwrap();
    assert!(report.views_agree, "membership stayed agreed");
    assert_eq!(report.groups.len(), 2);

    for g in &report.groups {
        // Requests flowed throughout the run (~99 scheduled ticks; the
        // detection + takeover gap may swallow a few).
        assert!(
            g.submitted >= 90,
            "group {} ({}): only {} requests submitted",
            g.group,
            g.style_name,
            g.submitted
        );
        assert!(g.outputs >= 90, "group {} outputs: {}", g.group, g.outputs);

        // Every surviving member delivered the identical request
        // sequence; the restarted leader's sequence is a consistent
        // subsequence (it missed the down window).
        assert!(g.order_agreement, "group {} order agreement", g.group);
        assert!(g.order_consistent, "group {} order consistency", g.group);

        // No duplicate client-visible outputs.
        assert_eq!(
            g.duplicate_outputs, 0,
            "group {} emitted duplicates",
            g.group
        );

        // End-to-end latency respects the Δ-multicast bound.
        assert!(
            g.within_delta_bound(),
            "group {}: {} outputs beyond the Δ-bound (worst {:?}, bound {})",
            g.group,
            g.delayed_outputs,
            g.worst_latency,
            g.output_bound
        );
        assert_eq!(g.on_time_outputs, g.outputs);
        assert!(g.worst_latency.unwrap() <= g.output_bound);

        // The crash of the leader was a recorded handoff (leadership
        // returns to node 0 after its rejoin, so there may be two).
        assert!(
            !g.handoffs.is_empty(),
            "group {} recorded no leader handoff",
            g.group
        );
        assert_eq!((g.handoffs[0].from, g.handoffs[0].to > 0), (0, true));
        assert!(g.handoffs[0].at > Time::ZERO + ms(20));

        // Group traffic rode the shared network.
        assert!(g.messages > 0);
        assert_eq!(g.vote_mismatches, 0);
    }

    // Style-specific shape: the active group's voter absorbed the
    // redundant member outputs; the semi-active followers executed with
    // outputs withheld.
    let active = &report.groups[0];
    let semi = &report.groups[1];
    assert_eq!(active.style_name, "active");
    assert_eq!(semi.style_name, "semi-active");
    assert!(
        active.duplicates_suppressed >= active.outputs,
        "the voter absorbed at least one redundant copy per request: {}",
        active.duplicates_suppressed
    );
    assert!(semi.duplicates_suppressed > 0, "followers were suppressed");

    // The cluster's own recovery machinery still did its job.
    assert_eq!(report.recoveries.len(), 1);
    assert!(report.rejoin_within_bound());
    // And the group cost tasks appear in every member's feasibility.
    for n in &report.node_reports {
        assert!(n.feasibility.middleware_utilization_permille > 0);
        assert!(n.feasibility.integrated_feasible);
    }
}

#[test]
fn short_outage_below_detection_keeps_the_gateway_alive() {
    // A 40 µs crash window is far below the detection bound: survivors
    // never suspect, the agent rejoins on the fast path and *no view
    // change happens at all*. The group's post-restart leadership
    // holdback must clear through the completed rejoin record — if it
    // waited for a view install it would deadlock the gateway and the
    // request stream would die at 20 ms.
    let mut cluster = HadesCluster::new(5)
        .horizon(ms(100))
        .seed(13)
        .scenario(
            ScenarioPlan::new()
                .crash(NodeId(0), Time::ZERO + ms(20))
                .restart(NodeId(0), Time::ZERO + ms(20) + us(40)),
        )
        .with_group(ReplicaStyle::Active, vec![0, 1, 2], GroupLoad::default());
    for node in 0..5 {
        cluster = cluster.periodic_app(node, "control", us(200), ms(2));
    }
    let report = cluster.run().unwrap();
    let g = &report.groups[0];
    assert!(
        g.submitted >= 90,
        "the gateway kept submitting after the blip: {}",
        g.submitted
    );
    assert!(g.outputs >= 90, "outputs kept flowing: {}", g.outputs);
    assert!(g.order_agreement && g.order_consistent);
    assert_eq!(g.duplicate_outputs, 0);
}

#[test]
fn group_runs_are_deterministic() {
    let a = group_cluster(7).run().unwrap();
    let b = group_cluster(7).run().unwrap();
    assert_eq!(a, b);
}

#[test]
fn delta_multicast_view_changes_cut_message_complexity() {
    // Same scenario under both transports: identical agreed views,
    // strictly fewer proposal messages over the Δ-multicast discipline.
    let run = |multicast: bool| {
        let mw = MiddlewareConfig {
            delta_multicast_vc: multicast,
            ..MiddlewareConfig::default()
        };
        group_cluster(11).middleware(mw).run().unwrap()
    };
    let dm = run(true);
    let flood = run(false);
    assert_eq!(dm.view_change.transport, "delta-multicast");
    assert_eq!(flood.view_change.transport, "flood");
    assert_eq!(dm.view_history, flood.view_history, "same agreed views");
    assert!(dm.views_agree && flood.views_agree);
    assert!(
        dm.view_change.messages < flood.view_change.messages,
        "multicast {} >= flood {}",
        dm.view_change.messages,
        flood.view_change.messages
    );
    assert!(dm.view_change.multicast_equivalent < dm.view_change.flood_equivalent);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// All group members deliver the same request order under random
    /// per-link omission faults and one crash window: never-crashed
    /// members are identical, and every member (the restarted one
    /// included) is a consistent subsequence of the agreed order.
    #[test]
    fn group_order_agreement_under_omissions_and_one_crash(
        seed in 0u64..10_000,
        victim in 0u32..8,
        crash_ms in 10u64..20,
        down_ms in 8u64..15,
        omission_permille in 0u32..80,
        nodes in 3u32..6,
    ) {
        let victim = victim % nodes;
        let crash = Time::ZERO + ms(crash_ms);
        let restart = crash + ms(down_ms);
        // A loss-tolerant detector timeout (γ floor ≈ 4.5 ms rides out
        // several consecutive heartbeat losses) and the flood transport
        // keep the membership layer stable under omissions; the group's
        // 8-attempt multicast budget masks per-copy loss.
        let mw = MiddlewareConfig {
            clock_precision_floor: us(4_500),
            delta_multicast_vc: false,
            ..MiddlewareConfig::default()
        };
        let load = GroupLoad {
            attempts: 8,
            ..GroupLoad::default()
        };
        let mut cluster = HadesCluster::new(nodes)
            .horizon(ms(80))
            .seed(seed)
            .link(
                LinkConfig::reliable(us(10), us(50)).with_omissions(omission_permille),
            )
            .middleware(mw)
            .scenario(
                ScenarioPlan::new()
                    .crash(NodeId(victim), crash)
                    .restart(NodeId(victim), restart),
            )
            .with_group(ReplicaStyle::Active, (0..nodes).collect(), load);
        for node in 0..nodes {
            cluster = cluster.periodic_app(node, "app", us(100), ms(2));
        }
        let report = cluster.run().unwrap();
        let g = &report.groups[0];
        prop_assert!(g.submitted > 0);
        prop_assert!(
            g.order_agreement,
            "members diverged (seed {seed}, victim {victim}, loss {omission_permille}‰)"
        );
        prop_assert!(g.order_consistent, "restarted member inconsistent");
        prop_assert_eq!(g.duplicate_outputs, 0);
        prop_assert_eq!(g.vote_mismatches, 0);
    }
}
