//! E2E: the invariant-guided chaos fuzzer. Campaigns are pure functions
//! of their seed (same programs, same violations, byte-identical
//! JSONL); the shrinker's output still reproduces and is locally
//! minimal; the committed corpus replays; and the gray-failure hooks
//! are pure observation — arming them without a matching window leaves
//! the run byte-identical to a chaos-free one.

use proptest::prelude::*;

use hades::prelude::*;
use hades_chaos::standard_spec;
use hades_telemetry::monitor::validate_violations;

fn us(n: u64) -> Duration {
    Duration::from_micros(n)
}

fn ms(n: u64) -> Duration {
    Duration::from_millis(n)
}

fn corpus_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("crates/hades-chaos/corpus/regressions.jsonl")
}

fn committed_scenarios() -> Vec<CorpusScenario> {
    let text = std::fs::read_to_string(corpus_path()).expect("corpus file is committed");
    hades_chaos::parse_corpus(&text).expect("corpus file parses")
}

#[test]
fn the_committed_corpus_replays_its_violations() {
    let scenarios = committed_scenarios();
    assert!(!scenarios.is_empty(), "corpus must not be empty");
    for scenario in &scenarios {
        assert!(
            scenario.reproduces(),
            "{}: expected {:?} no longer fires",
            scenario.name,
            scenario.expect
        );
        // The line format is stable: re-serializing reproduces the
        // scenario exactly.
        let reparsed = CorpusScenario::from_json(&scenario.to_json()).expect("round-trips");
        assert_eq!(&reparsed, scenario);
    }
}

#[test]
fn every_committed_scenario_shrinks_to_a_minimal_deterministic_program() {
    for scenario in &committed_scenarios() {
        let cfg = FuzzConfig {
            nodes: scenario.nodes,
            horizon: scenario.horizon,
            spec_seed: scenario.seed,
            ..FuzzConfig::default()
        };
        let fuzzer = ChaosFuzzer::standard(cfg, 1);

        // Pad the committed program with ops that are irrelevant to
        // its violation; the shrinker must strip them all back out.
        let mut padded = scenario.program.clone();
        padded.ops.push(ChaosOp::Degrade {
            from: 1,
            to: 2,
            at: Time::ZERO + ms(3),
            until: Time::ZERO + ms(9),
            extra_delay: us(80),
            loss_permille: 200,
        });
        padded.ops.push(ChaosOp::Throttle {
            service: "store".into(),
            at: Time::ZERO + ms(5),
            permille: 700,
        });

        let minimized = fuzzer.shrink(&padded, &scenario.expect);
        assert!(fuzzer.reproduces(&minimized, &scenario.expect));
        assert!(
            minimized.ops.len() <= scenario.program.ops.len(),
            "{}: noise ops survived the shrink: {minimized:?}",
            scenario.name
        );
        // Local minimality: removing any single op loses the violation.
        for i in 0..minimized.ops.len() {
            let mut without = minimized.clone();
            without.ops.remove(i);
            assert!(
                !fuzzer.reproduces(&without, &scenario.expect),
                "{}: op {i} of the minimized program is removable",
                scenario.name
            );
        }
        // And the shrink itself is deterministic.
        assert_eq!(minimized, fuzzer.shrink(&padded, &scenario.expect));
    }
}

#[test]
fn an_asymmetric_cut_raises_false_suspicions_end_to_end() {
    // Severing only node 3's outbound links swallows its heartbeats
    // while it keeps receiving everyone else's: the survivors must
    // suspect the perfectly alive node — the classic gray failure.
    let mut ops = Vec::new();
    for to in 0..3 {
        ops.push(ChaosOp::CutOneWay {
            from: 3,
            to,
            at: Time::ZERO + ms(10),
            until: Time::ZERO + ms(30),
        });
    }
    let run = standard_spec(4, ms(60), 11)
        .driver(Box::new(ProgramDriver::new(ChaosProgram { ops })))
        .run()
        .expect("valid spec");
    let report = run.report();
    assert!(
        report
            .detections
            .iter()
            .any(|d| d.suspect == 3 && d.is_false()),
        "one-way silence must look like a crash to the survivors"
    );
    assert!(!report.no_false_suspicions());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// A fuzzing campaign is a pure function of its seed: the same seed
    /// generates the same programs, finds the same counterexamples with
    /// the same violations, shrinks them to the same minimal programs,
    /// and exports byte-identical schema-valid JSONL.
    #[test]
    fn campaigns_are_deterministic_under_a_fixed_seed(seed in 0u64..1_000) {
        let cfg = FuzzConfig {
            horizon: ms(50),
            max_ops: 3,
            ..FuzzConfig::default()
        };
        let mut a = ChaosFuzzer::standard(cfg.clone(), seed);
        let mut b = ChaosFuzzer::standard(cfg, seed);
        let ca = a.campaign(3);
        let cb = b.campaign(3);
        prop_assert_eq!(ca.programs_run, cb.programs_run);
        prop_assert_eq!(ca.duplicates_skipped, cb.duplicates_skipped);
        prop_assert_eq!(ca.counterexamples.len(), cb.counterexamples.len());
        for (x, y) in ca.counterexamples.iter().zip(&cb.counterexamples) {
            prop_assert_eq!(x.index, y.index);
            prop_assert_eq!(&x.program, &y.program);
            prop_assert_eq!(&x.minimized, &y.minimized);
            prop_assert_eq!(&x.key, &y.key);
            prop_assert_eq!(&x.violations, &y.violations);
        }
        let jsonl = ca.violations_jsonl();
        prop_assert_eq!(&jsonl, &cb.violations_jsonl());
        // Exported lines pass the violation schema validator.
        let lines = validate_violations(&jsonl).map_err(|e| {
            TestCaseError::fail(format!("bad violation JSONL: {e}"))
        })?;
        prop_assert_eq!(lines, jsonl.lines().count());
    }

    /// The gray-failure hooks are pure observation when unused: staging
    /// cuts, degradations, slowdowns and skews whose windows all start
    /// beyond the horizon leaves the run — report and event stream —
    /// byte-identical to the same spec with no driver at all.
    #[test]
    fn unused_gray_hooks_are_pure_observation(
        seed in 0u64..500,
        extra_delay_us in 10u64..2_000,
        loss in 1u32..1_000,
        speed in 1u32..1_000,
        drift_magnitude in 100_000i64..20_000_000,
    ) {
        let drift = if drift_magnitude % 2 == 0 { drift_magnitude } else { -drift_magnitude };
        let horizon = ms(40);
        let after = Time::ZERO + horizon + ms(1);
        let baseline = standard_spec(4, horizon, seed).run().expect("valid spec");
        let ops = vec![
            ChaosOp::CutOneWay { from: 0, to: 1, at: after, until: after + ms(2) },
            ChaosOp::Degrade {
                from: 1,
                to: 2,
                at: after,
                until: after + ms(3),
                extra_delay: us(extra_delay_us),
                loss_permille: loss,
            },
            ChaosOp::Slow { node: 2, at: after, until: after + ms(2), speed_permille: speed },
            ChaosOp::Skew { node: 3, at: after, drift_ppb: drift },
        ];
        let armed = standard_spec(4, horizon, seed)
            .driver(Box::new(ProgramDriver::new(ChaosProgram { ops })))
            .run()
            .expect("valid spec");
        prop_assert_eq!(baseline, armed);
    }
}
